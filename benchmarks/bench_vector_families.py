"""Benchmark: the widened vector fast path on formerly-fallback grids.

The first-generation batched kernel priced only plain pinned
near-socket sequential points, so the figure grids built from the
random, remote, unpinned, fsdax, and mixed families — Fig. 4/9
(pinning), Fig. 5/10 (NUMA locality), Fig. 11 (mixed readers/writers),
Fig. 12/13 (random access), and the daxmode study — ran entirely on the
scalar fallback under ``--backend vector``. Now that every family the
scalar evaluator can price is vectorized, each of those grids must beat
per-point evaluation by >= 3x (a lower gate than the dense sequential
axis' 5x: family grids are smaller and the multi-stream family pays a
per-point interaction stage).

Bit-identity is asserted on every run, on every host: the batch's lazy
views must reproduce the scalar results exactly before any clock is
read. Speedup gates skip on hosts with < 4 CPU cores (shared/noisy
small hosts flake on wall-clock ratios); identity never skips.
"""

from __future__ import annotations

import os
import timeit

import pytest

from repro.memsim import DaxMode, DirectoryState, Op, eval_context, evaluate, paper_config
from repro.memsim.kernels import evaluate_grid, evaluate_grid_columns
from repro.memsim.spec import Layout, StreamSpec
from repro.workloads.mixed import mixed_grid
from repro.workloads.random_ import random_sweep
from repro.workloads.sequential import numa_locality_sweep, pinning_sweep

#: Minimum speedup per family grid on capable hosts.
_FAMILY_GATE = 3.0

#: Densified thread axes: the paper grids are small (12-24 points);
#: widening the thread axis keeps the wall-clock ratio stable without
#: changing the point families being exercised.
_DENSE_THREADS = tuple(range(1, 37))


def _cores() -> int:
    return os.cpu_count() or 1


def _fsdax_grid_points():
    """The daxmode study's shape: fsdax reads/writes across thread counts."""
    points = []
    for op in (Op.READ, Op.WRITE):
        for threads in _DENSE_THREADS:
            for prefaulted in (False, True):
                points.append(
                    (
                        StreamSpec(
                            op=op,
                            threads=threads,
                            access_size=4096,
                            layout=Layout.INDIVIDUAL,
                            dax_mode=DaxMode.FSDAX,
                            prefaulted=prefaulted,
                        ),
                    )
                )
    return points


def _family_points():
    return {
        "pinning_fig04": [
            p.streams for p in pinning_sweep(Op.READ, thread_counts=_DENSE_THREADS)
        ],
        "numa_fig05": [
            p.streams
            for p in numa_locality_sweep(Op.READ, thread_counts=_DENSE_THREADS)
        ],
        "mixed_fig11": [
            p.streams
            for p in mixed_grid(
                write_counts=(1, 2, 3, 4, 5, 6),
                read_counts=(1, 2, 4, 6, 8, 10, 12, 16, 18, 22, 26, 30),
            )
        ],
        "random_fig12": [
            p.streams for p in random_sweep(Op.READ, thread_counts=_DENSE_THREADS)
        ],
        "fsdax_daxmode": _fsdax_grid_points(),
    }


FAMILY_GRIDS = _family_points()


@pytest.mark.parametrize("family", sorted(FAMILY_GRIDS))
def test_family_grid_cost(benchmark, family):
    """Batched cost of one formerly-fallback figure grid."""
    context = eval_context(paper_config())
    points = FAMILY_GRIDS[family]
    state = DirectoryState.cold()
    columns = benchmark(lambda: evaluate_grid_columns(context, points, state))
    assert len(columns) == len(points)


@pytest.mark.parametrize("family", sorted(FAMILY_GRIDS))
def test_family_speedup_over_scalar(family):
    """Each formerly-fallback figure grid must beat per-point by >= 3x."""
    config = paper_config()
    context = eval_context(config)
    state = DirectoryState.cold()
    points = FAMILY_GRIDS[family]

    def scalar():
        return [
            evaluate(config, streams, state, context=context) for streams in points
        ]

    def batched():
        return evaluate_grid_columns(context, points, state)

    # Bit-identical before it may be faster.
    expected = scalar()
    assert evaluate_grid(context, points, state) == expected
    assert batched().total_gbps() == [r.total_gbps for r in expected]
    if _cores() < 4:
        pytest.skip(
            f"speedup gate needs >= 4 CPU cores for stable wall-clock "
            f"ratios (have {_cores()}); identity was still asserted"
        )
    scalar_seconds = min(timeit.repeat(scalar, number=1, repeat=5))
    batched_seconds = min(timeit.repeat(batched, number=1, repeat=5))
    speedup = scalar_seconds / batched_seconds
    assert speedup >= _FAMILY_GATE, (
        f"{family}: vector speedup {speedup:.2f}x < {_FAMILY_GATE}x over "
        f"{len(points)} points (scalar {scalar_seconds:.3f}s, "
        f"batched {batched_seconds:.3f}s)"
    )
