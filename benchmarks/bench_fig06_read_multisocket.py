"""Benchmark: regenerate Figure 6 (multi-socket reads, PMEM/DRAM)."""

from benchmarks.conftest import attach
from repro.experiments.fig06 import run


def test_fig06_read_multisocket(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    assert max(result.series_values("a-pmem/2 Near").values()) > 75
    assert max(result.series_values("b-dram/2 Near").values()) > 175
