"""Ablation: DIMM-interleaving granularity sweep.

The platform fixes 4 KB striping; the model lets us ask what a different
granularity would do to the thread-to-DIMM distribution of grouped reads
(the Fig. 3a window-parallelism mechanism).
"""

from repro.memsim.address import InterleaveMap


def _study():
    window = 36 * 256  # 36 threads of 256 B grouped reads
    return {
        f"{granularity // 1024}KiB": InterleaveMap(
            ways=6, granularity=granularity
        ).window_parallelism(window)
        for granularity in (1024, 2048, 4096, 8192, 16384)
    }


def test_interleave_granularity_ablation(benchmark):
    values = benchmark(_study)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    # Finer striping spreads a small grouped window across more DIMMs.
    assert values["1KiB"] > values["4KiB"] > values["16KiB"]
