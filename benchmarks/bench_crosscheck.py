"""Bench: the analytic-vs-DES cross-validation sweep."""

from repro.memsim.crosscheck import cross_check


def test_cross_check(benchmark):
    report = benchmark.pedantic(cross_check, rounds=1, iterations=1)
    for outcome in report.outcomes:
        benchmark.extra_info[outcome.anchor.label] = {
            "analytic_gbps": round(outcome.analytic_gbps, 2),
            "engine_gbps": round(outcome.engine_gbps, 2),
            "agrees": outcome.agrees,
        }
    divergent = [o.anchor.label for o in report.outcomes if not o.agrees]
    assert divergent == ["write 36T 64B grouped"]  # the documented one
