"""Bench: calibration-sensitivity sweep of the 12 insights.

Quantifies how robust the reproduction's conclusions are to the fitted
constants: every insight must survive a ±10% recalibration.
"""

from repro.core.sensitivity import analyze


def test_sensitivity_sweep(benchmark):
    report = benchmark.pedantic(analyze, args=(0.10,), rounds=1, iterations=1)
    benchmark.extra_info["admissible_perturbations"] = len(report.outcomes)
    benchmark.extra_info["robust_insights"] = sorted(report.robust_insights)
    benchmark.extra_info["fragile_insights"] = {
        str(k): [f"{n} x{f:.2f}" for n, f in v]
        for k, v in report.fragile_insights.items()
    }
    assert report.robust_insights == set(range(1, 13))
