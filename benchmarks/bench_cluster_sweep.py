"""Benchmark: the cluster sweep backend.

Two claims back this file:

* **Sharding to local worker processes scales.** On a machine with
  >= 4 CPU cores, sharding a cold dense grid across 4 locally spawned
  cluster workers must beat single-process serial by at least 1.8x
  (``test_cluster_speedup_over_serial``). On 1-2 core hosts the
  comparison is meaningless — worker spawn and wire framing dominate
  and there is no parallelism to win — so the gate skips with an
  explicit reason rather than flaking.
* **Speed never costs identity.** Every run in this file asserts the
  cluster totals equal serial's before any timing is trusted; a faster
  wrong answer fails the bench.

The dense grid mirrors ``bench_procpool_sweep.py`` so the two backends'
trajectories stay directly comparable in the snapshot series.
"""

from __future__ import annotations

import os
import timeit

import pytest

from repro.memsim import Op
from repro.sweep import EvaluationService, SweepRunner
from repro.workloads.sequential import sequential_sweep

#: Same dense axes as the procpool bench: wide enough that worker
#: startup does not drown the signal being measured.
_DENSE_SIZES = tuple(64 << i for i in range(21))
_DENSE_THREADS = tuple(range(1, 37, 3))


def _dense_grid():
    return sequential_sweep(
        Op.READ, access_sizes=_DENSE_SIZES, thread_counts=_DENSE_THREADS
    )


def _cores() -> int:
    return os.cpu_count() or 1


def _serial_totals(grid) -> dict[str, float]:
    return SweepRunner(
        EvaluationService(memoize=False), backend="serial"
    ).totals(grid)


def _cluster_totals(grid, workers: int) -> dict[str, float]:
    return SweepRunner(
        EvaluationService(memoize=False), jobs=workers, backend="cluster"
    ).totals(grid)


def test_cluster_speedup_over_serial():
    """4 local cluster workers must beat serial by >= 1.8x, cold."""
    cores = _cores()
    if cores < 4:
        pytest.skip(
            f"needs >= 4 CPU cores for a meaningful cluster speedup "
            f"(have {cores}); worker spawn dominates on small hosts"
        )
    grid = _dense_grid()

    def serial() -> dict[str, float]:
        return _serial_totals(grid)

    def cluster() -> dict[str, float]:
        return _cluster_totals(grid, workers=4)

    assert cluster() == serial()  # bit-identical before it may be faster
    serial_seconds = min(timeit.repeat(serial, number=1, repeat=3))
    cluster_seconds = min(timeit.repeat(cluster, number=1, repeat=3))
    speedup = serial_seconds / cluster_seconds
    assert speedup >= 1.8, (
        f"cluster backend speedup {speedup:.2f}x < 1.8x "
        f"(serial {serial_seconds:.3f}s, cluster {cluster_seconds:.3f}s)"
    )


def test_cluster_backend_matches_serial(benchmark, fig3_grid):
    """The cluster backend, timed; identical to serial on any host."""
    serial = _serial_totals(fig3_grid)
    workers = max(2, min(4, _cores()))
    totals = benchmark(lambda: _cluster_totals(fig3_grid, workers))
    assert totals == serial
