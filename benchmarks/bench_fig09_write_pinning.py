"""Benchmark: regenerate Figure 9 (write pinning policies)."""

from benchmarks.conftest import attach
from repro.experiments.fig09 import run


def test_fig09_write_pinning(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    ratio = max(result.series_values("cores").values()) / max(
        result.series_values("none").values()
    )
    assert 1.5 < ratio < 2.6
