"""Benchmark: the serving front door, coalesced vs sequential.

The gather window exists to buy batched evaluation: requests that
arrive within one window are answered through a single
``evaluate_grid_columns`` call, which rides the vectorized analytic
kernel instead of 256 scalar ``evaluate()`` calls. These benches
measure that trade on an in-process server (no sockets, so the numbers
isolate dispatch + evaluation, not TCP):

* ``test_coalesced_storm`` — 256 distinct vector-eligible requests
  submitted concurrently against a wide-open window; the whole storm
  resolves in a handful of batches.
* ``test_sequential_requests`` — the same frames awaited one at a time
  against a zero-width window with ``max_batch_points=1``: every
  request pays the scalar path, the way a naive per-request server
  would.
* ``test_coalesced_speedup_over_sequential`` — the gate: coalesced
  throughput must be >= 2x sequential. Responses are asserted identical
  across modes first, so the speedup never comes at the price of
  drift. Skips on hosts with < 4 CPU cores (same policy as the other
  wall-clock gates); the identity assert runs everywhere.
"""

from __future__ import annotations

import asyncio
import os
import timeit

import pytest

from repro.serve import BandwidthServer, ServeConfig
from repro.sweep import EvaluationService

#: Gate enforced on capable hosts (see module docstring).
_SPEEDUP_GATE = 2.0

_THREADS = tuple(range(1, 33))
_ACCESS_SIZES = (64, 256, 4096, 65536)


def _storm_frames():
    """256 distinct vector-eligible single-stream evaluate requests."""
    frames = []
    for op in ("read", "write"):
        for size in _ACCESS_SIZES:
            for threads in _THREADS:
                frames.append({
                    "kind": "evaluate",
                    "id": f"{op}-{size}-{threads}",
                    "streams": [{"op": op, "threads": threads,
                                 "access_size": size}],
                })
    return frames


def _coalesced_config() -> ServeConfig:
    return ServeConfig(
        gather_window_seconds=0.002,
        max_batch_points=64,
        max_queue_depth=4096,
    )


def _sequential_config() -> ServeConfig:
    return ServeConfig(
        gather_window_seconds=0.0,
        max_batch_points=1,
        max_queue_depth=4096,
    )


def _run_coalesced(frames):
    """Submit the whole storm at once; windows batch it."""

    async def scenario():
        server = BandwidthServer(
            EvaluationService(memoize=False), config=_coalesced_config()
        )
        responses = await asyncio.gather(
            *(server.submit(frame) for frame in frames)
        )
        await server.close()
        return server, responses

    return asyncio.run(scenario())


def _run_sequential(frames):
    """Await each request before submitting the next: no coalescing."""

    async def scenario():
        server = BandwidthServer(
            EvaluationService(memoize=False), config=_sequential_config()
        )
        responses = [await server.submit(frame) for frame in frames]
        await server.close()
        return server, responses

    return asyncio.run(scenario())


def _cores() -> int:
    return os.cpu_count() or 1


def test_coalesced_storm(benchmark):
    """256 concurrent requests through the gather window."""
    frames = _storm_frames()
    server, responses = benchmark(lambda: _run_coalesced(frames))
    assert [r["ok"] for r in responses] == [True] * len(frames)
    assert server.stats.completed == len(frames)
    assert server.stats.batches < len(frames)
    seconds = max(server.stats.latencies)
    benchmark.extra_info["requests"] = len(frames)
    benchmark.extra_info["batches"] = server.stats.batches
    benchmark.extra_info["requests_per_second"] = round(
        len(frames) / seconds, 1
    )
    benchmark.extra_info["p50_seconds"] = round(
        server.stats.latency_percentile(0.5), 6
    )
    benchmark.extra_info["p99_seconds"] = round(
        server.stats.latency_percentile(0.99), 6
    )


def test_sequential_requests(benchmark):
    """The same storm, one request at a time on a zero-width window."""
    frames = _storm_frames()
    server, responses = benchmark(lambda: _run_sequential(frames))
    assert [r["ok"] for r in responses] == [True] * len(frames)
    assert server.stats.batches == len(frames)
    assert server.stats.coalesced_points == 0
    benchmark.extra_info["requests"] = len(frames)
    benchmark.extra_info["p50_seconds"] = round(
        server.stats.latency_percentile(0.5), 6
    )
    benchmark.extra_info["p99_seconds"] = round(
        server.stats.latency_percentile(0.99), 6
    )


def test_coalesced_speedup_over_sequential():
    """Coalesced dispatch must beat per-request dispatch by >= 2x."""
    frames = _storm_frames()
    _, coalesced = _run_coalesced(frames)
    _, sequential = _run_sequential(frames)
    # Bit-identical answers before anything may be faster: the window
    # changes scheduling, never results (cache keys are unchanged).
    assert coalesced == sequential
    cores = _cores()
    if cores < 4:
        pytest.skip(
            f"needs >= 4 CPU cores for a meaningful wall-clock gate "
            f"(have {cores}); shared small hosts flake on ratios"
        )
    coalesced_seconds = min(
        timeit.repeat(lambda: _run_coalesced(frames), number=1, repeat=3)
    )
    sequential_seconds = min(
        timeit.repeat(lambda: _run_sequential(frames), number=1, repeat=3)
    )
    speedup = sequential_seconds / coalesced_seconds
    assert speedup >= _SPEEDUP_GATE, (
        f"coalesced serving speedup {speedup:.2f}x < {_SPEEDUP_GATE}x "
        f"(sequential {sequential_seconds:.3f}s, "
        f"coalesced {coalesced_seconds:.3f}s)"
    )
