"""Benchmark: regenerate Figure 3 (read bandwidth sweep)."""

from benchmarks.conftest import attach
from repro.experiments.fig03 import run


def test_fig03_read_access_size(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    grouped = result.series_values("a-grouped/36T")
    assert max(grouped, key=grouped.get) == "4096"
    assert max(grouped.values()) > 35.0
