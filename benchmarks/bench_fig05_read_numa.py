"""Benchmark: regenerate Figure 5 (read NUMA effects)."""

from benchmarks.conftest import attach
from repro.experiments.fig05 import run


def test_fig05_read_numa(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    cold = result.series_values("far (1st run)")
    warm = result.series_values("far (2nd run)")
    assert max(warm.values()) > 3 * max(cold.values())
