"""Benchmark: the process-pool sweep backend and the EvalContext layer.

Two claims back the perf work this file tracks:

* **EvalContext pays for itself.** Deriving a context hoists topology
  tables, interleave maps, calibration products and UPI constants out of
  the per-call path; ``test_context_derivation_cost`` times the one-off
  derivation and ``test_evaluate_hot_context`` times an evaluation that
  reuses it, so the report shows both sides of the trade. These run on
  any machine, including single-core CI.
* **The process backend actually scales.** On a machine with >= 4 CPU
  cores, fanning a cold dense grid out to 4 worker processes must beat
  serial by at least 1.5x (``test_process_speedup_over_serial``). On
  1-2 core hosts the comparison is meaningless — pool startup dominates
  and the GIL is not the bottleneck being removed — so the test skips
  with an explicit reason rather than flaking.

All backends are bit-identical by construction (asserted here too, on
the same grid the speedup is measured on).
"""

from __future__ import annotations

import os
import timeit

import pytest

from repro.memsim import DirectoryState, Op, paper_config
from repro.memsim.context import _build_context, eval_context
from repro.memsim.evaluation import evaluate
from repro.sweep import EvaluationService, SweepRunner
from repro.workloads.sequential import sequential_sweep

#: Dense access-size axis (64 B .. 64 MB) for the scaling measurement:
#: the paper grids are small enough that pool startup would drown the
#: signal, so the speedup is measured on a cold, wider grid.
_DENSE_SIZES = tuple(64 << i for i in range(21))
_DENSE_THREADS = tuple(range(1, 37, 3))


def _dense_grid():
    return sequential_sweep(
        Op.READ, access_sizes=_DENSE_SIZES, thread_counts=_DENSE_THREADS
    )


def _cores() -> int:
    return os.cpu_count() or 1


def test_context_derivation_cost(benchmark):
    """One-off cost of building an EvalContext from a MachineConfig."""
    config = paper_config()
    context = benchmark(lambda: _build_context(config))
    assert context.config is config


def test_evaluate_hot_context(benchmark, fig3_grid):
    """Per-evaluation cost once the per-config context is hot."""
    config = paper_config()
    context = eval_context(config)
    state = DirectoryState.cold()
    streams = next(iter(fig3_grid)).streams
    result = benchmark(lambda: evaluate(config, streams, state, context=context))
    assert result.total_gbps > 0


def test_process_speedup_over_serial():
    """4 worker processes must beat serial by >= 1.5x on a cold grid."""
    cores = _cores()
    if cores < 4:
        pytest.skip(
            f"needs >= 4 CPU cores for a meaningful process-pool speedup "
            f"(have {cores}); pool startup dominates on small hosts"
        )
    grid = _dense_grid()

    def serial() -> dict[str, float]:
        return SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).totals(grid)

    def process() -> dict[str, float]:
        return SweepRunner(
            EvaluationService(memoize=False), jobs=4, backend="process"
        ).totals(grid)

    assert process() == serial()  # bit-identical before it may be faster
    serial_seconds = min(timeit.repeat(serial, number=1, repeat=3))
    process_seconds = min(timeit.repeat(process, number=1, repeat=3))
    speedup = serial_seconds / process_seconds
    assert speedup >= 1.5, (
        f"process backend speedup {speedup:.2f}x < 1.5x "
        f"(serial {serial_seconds:.3f}s, process {process_seconds:.3f}s)"
    )


def test_process_backend_matches_serial(benchmark):
    """The process backend, timed; identical to serial on any host."""
    grid = sequential_sweep(Op.READ)
    serial = SweepRunner(EvaluationService(memoize=False), backend="serial").totals(grid)
    jobs = max(2, min(4, _cores()))
    totals = benchmark(
        lambda: SweepRunner(
            EvaluationService(memoize=False), jobs=jobs, backend="process"
        ).totals(grid)
    )
    assert totals == serial
