"""Benchmark: regenerate Table 1 (Q2.1 optimization ladder + SSD)."""

from benchmarks.conftest import attach
from repro.experiments.table1 import run


def test_table1_q21_ladder(benchmark, ssb_runner):
    result = benchmark.pedantic(
        run, kwargs={"runner": ssb_runner}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    pmem = list(result.series_values("pmem").values())
    dram = list(result.series_values("dram").values())
    benchmark.extra_info["pmem_ladder_seconds"] = pmem
    benchmark.extra_info["dram_ladder_seconds"] = dram
    assert all(a >= b * 0.999 for a, b in zip(pmem, pmem[1:]))
    assert all(a >= b * 0.999 for a, b in zip(dram, dram[1:]))
