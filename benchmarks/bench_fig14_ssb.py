"""Benchmark: regenerate Figure 14 (SSB on PMEM vs DRAM, both engines)."""

from benchmarks.conftest import attach
from repro.experiments.fig14 import run
from repro.ssb.runner import average_slowdown


def test_fig14_ssb(benchmark, ssb_runner):
    result = benchmark.pedantic(
        run, kwargs={"runner": ssb_runner}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    hyrise = result.series_values("a-hyrise/pmem")
    handcrafted = result.series_values("b-handcrafted/pmem")
    benchmark.extra_info["hyrise_pmem_seconds"] = hyrise
    benchmark.extra_info["handcrafted_pmem_seconds"] = handcrafted
    # The aware implementation must beat the unaware one on PMEM.
    fb = ssb_runner.figure14b()
    fa = ssb_runner.figure14a()
    assert average_slowdown(fa["pmem"], fa["dram"]) > 1.7 * average_slowdown(
        fb["pmem"], fb["dram"]
    )
