"""Benchmark: whole-program lint latency over the full repo.

The whole-program layer re-reads every module on every run — that is the
design (``--changed`` still needs the full call graph) — so its wall
time is the tax every pre-commit run pays. Two claims are tracked:

* **A full repo lint stays under 5 seconds.** Past that, linters get
  turned off; ``test_full_repo_lint_under_budget`` runs all file rules
  plus all four interprocedural passes over ``src`` against a wall-clock
  budget. The gate skips on < 4 core hosts, where CI containers are too
  noisy for a wall-clock assertion to mean anything.
* **The summary cache pays for itself.** A warm ``build_program`` must
  serve every summary from the content-hash store (asserted exactly via
  the hit/miss counters) and beat the cold parse by a useful margin.
"""

from __future__ import annotations

import os
import shutil
import timeit
from pathlib import Path

import pytest

from repro.analysis.config import load_config
from repro.analysis.program import build_program
from repro.analysis.runner import run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall-clock budget for one full lint of the repo (seconds).
_LINT_BUDGET_S = 5.0


def _cores() -> int:
    return os.cpu_count() or 1


@pytest.fixture()
def repo_config():
    return load_config(explicit=REPO_ROOT / "pyproject.toml")


def test_full_repo_lint_under_budget(repo_config, tmp_path, monkeypatch):
    """File rules + whole-program passes over src/ in < 5 s, cold cache."""
    cores = _cores()
    if cores < 4:
        pytest.skip(
            f"needs >= 4 CPU cores for a stable wall-clock gate "
            f"(have {cores}); shared small hosts are too noisy"
        )
    elapsed = timeit.default_timer()
    report = run_analysis(None, repo_config, use_cache=False)
    elapsed = timeit.default_timer() - elapsed
    assert report.files > 0
    assert not report.findings, [f.message for f in report.findings]
    assert elapsed < _LINT_BUDGET_S, (
        f"full-repo lint took {elapsed:.2f}s (budget {_LINT_BUDGET_S}s)"
    )


def test_program_build_cold_vs_warm(repo_config, benchmark):
    """A warm build serves every summary from the cache and is faster."""
    paths = [repo_config.root / p for p in repo_config.paths]
    cache_dir = repo_config.root / ".simlint-cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    cold_start = timeit.default_timer()
    cold = build_program(paths, repo_config, use_cache=True)
    cold_s = timeit.default_timer() - cold_start
    assert cold.cache_hits == 0 and cold.cache_misses > 0

    warm = benchmark(lambda: build_program(paths, repo_config, use_cache=True))
    assert warm.cache_misses == 0
    assert warm.cache_hits == cold.cache_misses
    if _cores() >= 4:
        warm_s = timeit.timeit(
            lambda: build_program(paths, repo_config, use_cache=True), number=1
        )
        assert warm_s < cold_s, (
            f"warm build ({warm_s:.3f}s) should beat cold parse ({cold_s:.3f}s)"
        )
