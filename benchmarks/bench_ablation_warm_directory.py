"""Ablation: cold vs. primed coherence directory for far reads (§3.4).

The paper's workaround — priming far memory with a single thread before
the multi-threaded run — is reproduced: one cheap touch removes the 5x
first-run penalty.
"""

from repro.memsim import BandwidthModel


def _study():
    model = BandwidthModel()
    model.reset_directory()
    cold = model.sequential_read(18, 4096, far=True, warm=False)

    model.reset_directory()
    # Single-threaded priming pass, then the measured run.
    model.sequential_read(1, 4096, far=True, warm=False)
    primed = model.sequential_read(18, 4096, far=True, warm=False)
    return {"cold_gbps": cold, "primed_gbps": primed}


def test_warm_directory_ablation(benchmark):
    values = benchmark(_study)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    assert values["primed_gbps"] > 3 * values["cold_gbps"]
