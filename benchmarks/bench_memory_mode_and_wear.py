"""Extension benches: Memory Mode (§2.1) and endurance accounting.

Memory Mode is the operating mode the paper describes but does not
benchmark; the wear model turns the §4.4 write-amplification counters
into lifetime estimates.
"""

from repro.memsim import (
    BandwidthModel,
    MemoryModeModel,
    Op,
    PinningPolicy,
    StreamSpec,
    wear_from_counters,
)
from repro.memsim.spec import Pattern
from repro.units import GIB


def _memory_mode_study():
    mode = MemoryModeModel(BandwidthModel())
    return {
        "cached_10GiB": mode.read_bandwidth(18, 4096, 10 * GIB),
        "streaming_700GiB": mode.read_bandwidth(18, 4096, 700 * GIB),
        "random_186GiB": mode.read_bandwidth(
            36, 256, 186 * GIB, pattern=Pattern.RANDOM
        ),
        "app_direct": mode.model.sequential_read(18, 4096),
    }


def test_memory_mode(benchmark):
    values = benchmark(_memory_mode_study)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    # Within the cache Memory Mode is DRAM; beyond it, worse than App
    # Direct — the reason research uses App Direct for OLAP (§2.1).
    assert values["cached_10GiB"] > values["app_direct"]
    assert values["streaming_700GiB"] < values["app_direct"]


def _wear_study():
    model = BandwidthModel()
    model.warm_directory()
    near = model.evaluate(
        [StreamSpec(op=Op.WRITE, threads=6, pinning=PinningPolicy.NUMA_REGION)]
    )
    far = model.evaluate(
        [
            StreamSpec(
                op=Op.WRITE, threads=18, pinning=PinningPolicy.NUMA_REGION,
                issuing_socket=0, target_socket=1,
            )
        ]
    )
    elapsed = 3600.0
    return {
        "near_lifetime_years": wear_from_counters(near.counters, elapsed).lifetime_years,
        "far_lifetime_years": wear_from_counters(far.counters, elapsed).lifetime_years,
    }


def test_wear(benchmark):
    values = benchmark(_wear_study)
    benchmark.extra_info.update({k: round(v, 1) for k, v in values.items()})
    # §4.4's 10x far-write amplification also burns endurance ~10x faster
    # per byte (partially offset by the lower achievable bandwidth).
    assert values["far_lifetime_years"] < values["near_lifetime_years"]
