"""Ablation: Optane's write-combining buffer on vs. off.

A what-if the real hardware cannot run: without combining, every 64 B
store is a 256 B read-modify-write and even the paper-recommended
configurations collapse. Quantifies how much of PMEM's usable write
bandwidth the buffer is responsible for.
"""

from repro.memsim import BandwidthModel


def _study():
    on = BandwidthModel(write_combining_enabled=True)
    off = BandwidthModel(write_combining_enabled=False)
    return {
        "best_config_on": on.sequential_write(4, 4096),
        "best_config_off": off.sequential_write(4, 4096),
        "log_append_on": on.sequential_write(36, 256),
        "log_append_off": off.sequential_write(36, 256),
    }


def test_write_combining_ablation(benchmark):
    values = benchmark(_study)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    assert values["best_config_off"] < 0.5 * values["best_config_on"]
    assert values["log_append_off"] < 0.5 * values["log_append_on"]
