"""Benchmark: regenerate Figure 10 (multi-socket writes)."""

from benchmarks.conftest import attach
from repro.experiments.fig10 import run


def test_fig10_write_multisocket(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    assert max(result.series_values("2 Near").values()) > 23
    assert max(result.series_values("1 Near 1 Far").values()) < 9
