"""Wall-time benchmarks of the SSB generator and query engine."""

import pytest

from repro.ssb.dbgen import generate
from repro.ssb.engine import SsbExecutor
from repro.ssb.queries import get_query
from repro.ssb.storage import HANDCRAFTED_PMEM, HYRISE_PMEM


def test_dbgen_sf01(benchmark):
    db = benchmark.pedantic(
        generate, kwargs={"scale_factor": 0.1}, rounds=2, iterations=1
    )
    assert db.lineorder.n_rows == 600_000
    benchmark.extra_info["rows_per_table"] = {
        "lineorder": db.lineorder.n_rows,
        "customer": db.customer.n_rows,
        "part": db.part.n_rows,
    }


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.05)


def test_execute_q21_aware(benchmark, db):
    executor = SsbExecutor(db, HANDCRAFTED_PMEM)
    query = get_query("Q2.1")
    executor.execute(query)  # pre-build the persistent indexes
    result = benchmark.pedantic(executor.execute, args=(query,), rounds=2, iterations=1)
    assert result.n_groups > 0


def test_execute_q21_unaware(benchmark, db):
    executor = SsbExecutor(db, HYRISE_PMEM)
    query = get_query("Q2.1")
    result = benchmark.pedantic(executor.execute, args=(query,), rounds=2, iterations=1)
    assert result.n_groups > 0


def test_execute_qf1(benchmark, db):
    executor = SsbExecutor(db, HANDCRAFTED_PMEM)
    query = get_query("Q1.1")
    executor.execute(query)
    result = benchmark.pedantic(executor.execute, args=(query,), rounds=2, iterations=1)
    assert result.scalar > 0
