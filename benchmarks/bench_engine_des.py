"""Wall-time benchmark of the discrete-event engine, plus its agreement
with the analytic model on a calibrated anchor."""

import pytest

from repro.memsim import BandwidthModel
from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.spec import Layout, Op
from repro.units import MIB


def test_des_write_boomerang(benchmark):
    config = EngineConfig(
        op=Op.WRITE, threads=18, access_size=4096, total_bytes=8 * MIB
    )
    result = benchmark.pedantic(simulate, args=(config,), rounds=2, iterations=1)
    benchmark.extra_info["gbps"] = round(result.gbps, 2)
    benchmark.extra_info["amplification"] = round(result.amplification, 2)
    analytic = BandwidthModel().sequential_write(18, 4096)
    assert result.gbps == pytest.approx(analytic, rel=0.45)


def test_des_grouped_small_reads(benchmark):
    config = EngineConfig(
        op=Op.READ, threads=36, access_size=64, layout=Layout.GROUPED,
        total_bytes=2 * MIB,
    )
    result = benchmark.pedantic(simulate, args=(config,), rounds=2, iterations=1)
    benchmark.extra_info["gbps"] = round(result.gbps, 2)
    benchmark.extra_info["amplification"] = round(result.amplification, 2)
    assert result.amplification > 1.5  # shared-line refetches emerge
