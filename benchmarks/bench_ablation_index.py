"""Ablation: Dash vs. chained index under the identical join workload.

Swaps only the index implementation inside the same engine and prices
the same query (Q2.1) on PMEM — isolating how much of the Hyrise gap is
the index itself (dependent 64 B chains vs. single 256 B buckets).
"""

import pytest

from repro.ssb.queries import get_query
from repro.ssb.runner import SsbRunner
from repro.ssb.storage import HANDCRAFTED_PMEM, IndexKind, TupleLayout


@pytest.fixture(scope="module")
def runner():
    return SsbRunner(measured_sf=0.05)


def _study(runner):
    query = (get_query("Q2.1"),)
    dash = runner.run(HANDCRAFTED_PMEM, target_sf=100, queries=query)
    chained_profile = HANDCRAFTED_PMEM.with_(
        name="handcrafted-chained",
        index_kind=IndexKind.CHAINED,
        tuple_layout=TupleLayout.ROW128,
    )
    chained = runner.run(chained_profile, target_sf=100, queries=query)
    return {
        "dash_seconds": dash.breakdowns["Q2.1"].seconds,
        "chained_seconds": chained.breakdowns["Q2.1"].seconds,
    }


def test_index_ablation(benchmark, runner):
    values = benchmark.pedantic(_study, args=(runner,), rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    # §6.2: "the use of a PMEM-optimized hash index is beneficial".
    assert values["dash_seconds"] < values["chained_seconds"]
