"""Benchmark: regenerate Figure 11 (mixed read/write workloads)."""

from benchmarks.conftest import attach
from repro.experiments.fig11 import run


def test_fig11_mixed(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    reads = result.series_values("read")
    assert reads["1/30"] < 30.0  # one writer already dents the pool
    assert reads["6/18"] < reads["1/18"]
