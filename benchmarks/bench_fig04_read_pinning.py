"""Benchmark: regenerate Figure 4 (read pinning policies)."""

from benchmarks.conftest import attach
from repro.experiments.fig04 import run


def test_fig04_read_pinning(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    assert max(result.series_values("cores").values()) > 4 * max(
        result.series_values("none").values()
    ) * 0.8
