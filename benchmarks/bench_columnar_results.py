"""Benchmark: the columnar result path, kernel to cache to consumer.

The SoA refactor's whole claim is that a sweep's results never exist as
per-point objects between the kernel and the consumer. These benches
time the three legs that claim rides on, on the shared Figure 3 grid:

* ``run_columns`` through the vector backend — the end-to-end producer
  path (kernel batch -> service assembly -> runner), totals read
  straight off the batch;
* the v2 disk-cache round trip — one content-addressed block write for
  the whole grid, then per-digest ``get_ref`` lookups resolving into
  the shared in-memory block;
* the pickle boundary — the cost :mod:`repro.sweep.procpool` pays to
  ship a chunk's results back to the parent as one column block.

Each bench asserts the columnar values against the materialized views
(same floats), so the smoke run doubles as an identity check.
"""

from __future__ import annotations

import pickle

from repro.memsim import paper_config
from repro.memsim.kernels import ResultColumns
from repro.sweep import DiskCache, EvaluationService, SweepRunner
from repro.sweep.cache import request_digest


def _columns_for(grid) -> tuple[list[str], ResultColumns]:
    runner = SweepRunner(EvaluationService(memoize=False), backend="vector")
    return runner.run_columns(grid)


def test_run_columns_end_to_end(benchmark, fig3_grid):
    """Columnar sweep of the Figure 3 grid, no per-point objects."""
    labels, columns = benchmark(lambda: _columns_for(fig3_grid))
    assert len(labels) == len(columns)
    totals = columns.total_gbps()
    assert totals == [view.total_gbps for view in columns.views()]
    benchmark.extra_info["points"] = len(labels)
    benchmark.extra_info["peak_gbps"] = round(max(totals), 3)


def test_disk_cache_block_round_trip(benchmark, fig3_grid, tmp_path):
    """One block write + per-digest ref lookups for the whole grid."""
    config = paper_config()
    points = [point.streams for point in fig3_grid]
    service = EvaluationService(disk_cache=DiskCache(tmp_path / "seed"))
    seeded = service.evaluate_grid_columns(config, points)
    digests = [
        request_digest(config, streams, seeded.directory_after[i].restrict(frozenset()))
        for i, streams in enumerate(points)
    ]

    def round_trip() -> int:
        cache = DiskCache(tmp_path / "seed")  # cold in-memory block map
        refs = [cache.get_ref(digest) for digest in digests]
        assert all(ref is not None for ref in refs)
        return len({id(columns) for columns, _ in refs})

    blocks = benchmark(round_trip)
    # Every ref resolves into the same shared block, loaded once.
    assert blocks == 1
    benchmark.extra_info["points"] = len(points)


def test_column_block_pickle_boundary(benchmark, fig3_grid):
    """Ship a grid's results across the procpool boundary and back."""
    _, columns = _columns_for(fig3_grid)

    def ship() -> ResultColumns:
        return pickle.loads(pickle.dumps(columns))

    shipped = benchmark(ship)
    assert shipped == columns
    assert shipped.total_gbps() == columns.total_gbps()
    benchmark.extra_info["block_bytes"] = len(pickle.dumps(columns))
