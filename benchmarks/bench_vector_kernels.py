"""Benchmark: the vectorized evaluation kernels against their oracles.

Two speedup gates back the vector backend:

* **Columnar analytic grid >= 5x per-point.** ``evaluate_grid_columns``
  amortizes the Python interpretation of the evaluation chain across a
  whole sweep axis *and* keeps the results structure-of-arrays: no
  per-point ``BandwidthResult`` is constructed anywhere on the batch
  path. The old object-list contract capped the win near 3.5-4.5x —
  just building the three result objects per point (counters dict,
  frozen stream, slotted result) cost ~4.7 us even via the ``__new__``
  fast path, an irreducible floor under a ~25-30 us scalar baseline.
  The columnar batch removes that floor, so the gate moved from 3x to
  5x. Bit-identity is still asserted on every host: materializing the
  batch's lazy views reproduces the scalar results exactly.
* **Epoch engine >= 3x scalar DES.** The epoch-stepped replay of the
  anchor set runs ~8-17x faster than the op-at-a-time ``heapq`` engine;
  3x is the regression floor, far under the measured headroom.

A third, unconditional check demos the widened eligibility: on a grid
mixing every point family, the fallback fraction — observable via the
``sweep.vector.fallback_count`` counter — is zero, and poisoning the
grid with an unpriceable point moves it to exactly that point.

Speedup gates skip on hosts with < 4 CPU cores (shared/noisy small
hosts flake on wall-clock ratios); the identity and tolerance asserts
run everywhere, so correctness is never skipped.
"""

from __future__ import annotations

import os
import timeit

import pytest

from repro.errors import TopologyError
from repro.memsim import (
    DaxMode,
    DirectoryState,
    Op,
    PinningPolicy,
    StreamSpec,
    eval_context,
    evaluate,
    paper_config,
)
from repro.memsim.crosscheck import DEFAULT_ANCHORS
from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.kernels import (
    classify_point,
    evaluate_grid,
    evaluate_grid_columns,
    run_epochs,
)
from repro.memsim.spec import Pattern
from repro.obs import CountersRecorder
from repro.units import MIB
from repro.workloads.sequential import sequential_sweep

#: Dense access-size x thread-count axis; all points are vector-eligible.
_DENSE_SIZES = tuple(64 << i for i in range(14))
_DENSE_THREADS = tuple(range(1, 37, 3))

#: Minimum speedups enforced on capable hosts (see module docstring).
_GRID_GATE = 5.0
_EPOCH_GATE = 3.0


def _cores() -> int:
    return os.cpu_count() or 1


def _dense_points():
    grid = sequential_sweep(
        Op.READ, access_sizes=_DENSE_SIZES, thread_counts=_DENSE_THREADS
    )
    return [point.streams for point in grid]


def _anchor_configs():
    configs = []
    for anchor in DEFAULT_ANCHORS:
        total = max(2 * MIB, anchor.threads * anchor.access_size * 16)
        configs.append(
            EngineConfig(
                op=anchor.op,
                threads=anchor.threads,
                access_size=anchor.access_size,
                layout=anchor.layout,
                pattern=anchor.pattern,
                total_bytes=total,
                region_bytes=(
                    256 * MIB if anchor.pattern is Pattern.RANDOM else None
                ),
            )
        )
    return configs


def test_evaluate_grid_cost(benchmark):
    """Batched cost of a dense all-eligible grid (compare to hot scalar)."""
    context = eval_context(paper_config())
    points = _dense_points()
    results = benchmark(lambda: evaluate_grid(context, points))
    assert len(results) == len(points)


def test_epoch_engine_anchor_set_cost(benchmark):
    """Epoch replay of the full cross-check anchor set."""
    context = eval_context(paper_config())
    configs = _anchor_configs()
    gbps = benchmark(
        lambda: [run_epochs(config, context=context).gbps for config in configs]
    )
    assert all(value > 0 for value in gbps)


def test_grid_speedup_over_scalar():
    """Columnar batched evaluation must beat per-point by >= 5x."""
    config = paper_config()
    context = eval_context(config)
    state = DirectoryState.cold()
    points = _dense_points()

    def scalar():
        return [
            evaluate(config, streams, state, context=context) for streams in points
        ]

    def batched():
        return evaluate_grid_columns(context, points, state)

    expected = scalar()
    # Bit-identical before it may be faster: the batch's lazy views are
    # the scalar results, float for float.
    assert evaluate_grid(context, points, state) == expected
    columns = batched()
    assert columns.total_gbps() == [r.total_gbps for r in expected]
    if _cores() < 4:
        pytest.skip(
            f"speedup gate needs >= 4 CPU cores for stable wall-clock "
            f"ratios (have {_cores()}); identity was still asserted"
        )
    scalar_seconds = min(timeit.repeat(scalar, number=1, repeat=5))
    batched_seconds = min(timeit.repeat(batched, number=1, repeat=5))
    speedup = scalar_seconds / batched_seconds
    assert speedup >= _GRID_GATE, (
        f"evaluate_grid_columns speedup {speedup:.2f}x < {_GRID_GATE}x over "
        f"{len(points)} points (scalar {scalar_seconds:.3f}s, "
        f"batched {batched_seconds:.3f}s)"
    )


def test_epoch_speedup_over_scalar_engine():
    """The epoch engine must beat the scalar DES by >= 3x on the anchors."""
    context = eval_context(paper_config())
    configs = _anchor_configs()

    def scalar():
        return [simulate(config, context=context).gbps for config in configs]

    def epoch():
        return [run_epochs(config, context=context).gbps for config in configs]

    # Tolerance is asserted on every host; only the clock ratio is gated.
    for anchor, s, e in zip(DEFAULT_ANCHORS, scalar(), epoch()):
        assert abs(e - s) / s <= anchor.tolerance, anchor.label
    if _cores() < 4:
        pytest.skip(
            f"speedup gate needs >= 4 CPU cores for stable wall-clock "
            f"ratios (have {_cores()}); tolerance was still asserted"
        )
    scalar_seconds = min(timeit.repeat(scalar, number=1, repeat=3))
    epoch_seconds = min(timeit.repeat(epoch, number=1, repeat=3))
    speedup = scalar_seconds / epoch_seconds
    assert speedup >= _EPOCH_GATE, (
        f"epoch engine speedup {speedup:.2f}x < {_EPOCH_GATE}x "
        f"(scalar {scalar_seconds:.3f}s, epoch {epoch_seconds:.3f}s)"
    )


def _mixed_eligibility_points():
    """One grid spanning every family the kernel prices."""
    points = []
    for threads in (1, 4, 8, 18, 36):
        base = StreamSpec(op=Op.READ, threads=threads)
        points.append((base,))
        points.append((base.with_(pattern=Pattern.RANDOM, access_size=256),))
        points.append((base.with_(issuing_socket=0, target_socket=1),))
        points.append((base.with_(pinning=PinningPolicy.NONE),))
        points.append((base.with_(dax_mode=DaxMode.FSDAX),))
        points.append((base, StreamSpec(op=Op.WRITE, threads=threads)))
    return points


def test_mixed_eligibility_fallback_fraction():
    """Fallback shrinks to exactly the genuinely unpriceable points.

    The first-generation kernel would have sent 5/6 of this grid —
    random, remote, unpinned, fsdax, and multi-stream points — down the
    scalar fallback. Now the fallback fraction, observable through the
    ``sweep.vector.fallback_count`` counter family, is zero on the
    family-diverse grid and moves to exactly the poisoned point when one
    is added.
    """
    context = eval_context(paper_config())
    points = _mixed_eligibility_points()
    assert sum(1 for p in points if classify_point(context, p) is None) == len(points)

    recorder = CountersRecorder()
    results = evaluate_grid(context, points, recorder=recorder)
    assert len(results) == len(points)
    counters = recorder.snapshot()["counters"]
    assert "sweep.vector.fallback_count" not in counters

    # Poison the grid: one point no topology can price. The fallback
    # counter fires (with its reason) before the scalar path raises.
    poisoned = points + [(StreamSpec(op=Op.READ, threads=4, target_socket=9),)]
    assert sum(1 for p in poisoned if classify_point(context, p) is not None) == 1
    recorder = CountersRecorder()
    with pytest.raises(TopologyError):
        evaluate_grid(context, poisoned, recorder=recorder)
    counters = recorder.snapshot()["counters"]
    assert counters["sweep.vector.fallback_count"] == 1
    assert counters["sweep.vector.fallback.socket_count"] == 1


def test_vector_backend_grid_cost(benchmark, fig3_grid):
    """The Figure 3 sweep through ``backend="vector"``, end to end."""
    from repro.sweep import EvaluationService, SweepRunner

    serial = SweepRunner(
        EvaluationService(memoize=False), backend="serial"
    ).totals(fig3_grid)
    totals = benchmark(
        lambda: SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).totals(fig3_grid)
    )
    assert totals == serial
