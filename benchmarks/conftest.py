"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper; the
wall time pytest-benchmark reports is the cost of regenerating it, and
the reproduced values are attached as ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` doubles as the results run.
"""

from __future__ import annotations

import pytest

from repro.memsim import BandwidthModel, Op
from repro.ssb.runner import SsbRunner
from repro.workloads.sequential import sequential_sweep


@pytest.fixture(scope="session")
def model() -> BandwidthModel:
    return BandwidthModel()


@pytest.fixture(scope="session")
def fig3_grid():
    # The Figure 3 read sweep: the shared workload for the sweep-service
    # and observability-overhead benches, so their numbers are comparable.
    return sequential_sweep(Op.READ)


@pytest.fixture(scope="session")
def ssb_runner() -> SsbRunner:
    # One generated database and one traffic recording serve every SSB
    # bench; sf 0.05 keeps the execution under a few seconds.
    return SsbRunner(measured_sf=0.05)


def attach(benchmark, result) -> None:
    """Record an experiment's paper-vs-measured checks on the benchmark."""
    for comparison in result.comparisons:
        benchmark.extra_info[comparison.metric] = {
            "paper": round(comparison.paper, 3),
            "reproduction": round(comparison.measured, 3),
            "ratio": round(comparison.ratio, 3),
        }
