"""Ablation: dimension-table replication across sockets on vs. off.

The handcrafted SSB replicates the small dimension tables per socket "to
avoid far random access, which would drastically decrease the bandwidth
utilization" (§6.2). Turning replication off sends half the probes over
the UPI.
"""

import pytest

from repro.ssb.queries import get_query
from repro.ssb.runner import SsbRunner
from repro.ssb.storage import HANDCRAFTED_PMEM


@pytest.fixture(scope="module")
def runner():
    return SsbRunner(measured_sf=0.05)


def _study(runner):
    query = (get_query("Q3.1"),)
    replicated = runner.run(HANDCRAFTED_PMEM, target_sf=100, queries=query)
    remote = runner.run(
        HANDCRAFTED_PMEM.with_(
            name="handcrafted-noreplication", replicate_dimensions=False
        ),
        target_sf=100,
        queries=query,
    )
    return {
        "replicated_seconds": replicated.breakdowns["Q3.1"].seconds,
        "remote_seconds": remote.breakdowns["Q3.1"].seconds,
    }


def test_replication_ablation(benchmark, runner):
    values = benchmark.pedantic(_study, args=(runner,), rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    assert values["replicated_seconds"] < values["remote_seconds"]
