"""Ablation: L2 hardware prefetcher on vs. off (§3.1-§3.2).

The paper tested this on real hardware: disabling the prefetcher removes
the 1-2 KB grouped-read dip, hurts low thread counts, and lets 36
hyperthreaded readers reach the 40 GB/s peak. The same switch exists on
the model.
"""

from repro.memsim import BandwidthModel, Layout


def _study():
    on = BandwidthModel(prefetcher_enabled=True)
    off = BandwidthModel(prefetcher_enabled=False)
    return {
        "dip_1k_on": on.sequential_read(36, 1024, layout=Layout.GROUPED),
        "dip_1k_off": off.sequential_read(36, 1024, layout=Layout.GROUPED),
        "low_threads_on": on.sequential_read(4, 4096),
        "low_threads_off": off.sequential_read(4, 4096),
        "ht_36_on": on.sequential_read(36, 4096),
        "ht_36_off": off.sequential_read(36, 4096),
    }


def test_prefetcher_ablation(benchmark):
    values = benchmark(_study)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})
    # Disabling removes the dip...
    assert values["dip_1k_off"] > values["dip_1k_on"]
    # ...hurts low thread counts...
    assert values["low_threads_off"] < values["low_threads_on"]
    # ...and restores the 36-thread peak (§3.2).
    assert values["ht_36_off"] >= values["ht_36_on"]
