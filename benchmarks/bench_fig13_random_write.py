"""Benchmark: regenerate Figure 13 (random writes, PMEM/DRAM)."""

from benchmarks.conftest import attach
from repro.experiments.fig13 import run


def test_fig13_random_write(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    assert max(result.series_values("a-pmem/6T").values()) > max(
        result.series_values("a-pmem/36T").values()
    )
