"""Extension bench: hybrid PMEM-DRAM deployment (the paper's future work).

Compares three placements of the same SSB workload — PMEM-only (the
paper's design space), DRAM-only (the expensive baseline), and the
hybrid the paper motivates in §5.2/§9 (base tables on PMEM, hash indexes
and intermediates in DRAM) — and prices each per §7.
"""

import pytest

from repro.core import economics
from repro.ssb.runner import SsbRunner, average_slowdown
from repro.ssb.storage import HANDCRAFTED_DRAM, HANDCRAFTED_PMEM, HYBRID_PMEM_DRAM
from repro.units import GIB


@pytest.fixture(scope="module")
def runner():
    return SsbRunner(measured_sf=0.05)


def _study(runner):
    pmem = runner.run(HANDCRAFTED_PMEM, target_sf=100)
    hybrid = runner.run(HYBRID_PMEM_DRAM, target_sf=100)
    dram = runner.run(HANDCRAFTED_DRAM, target_sf=100)
    return {
        "pmem_avg_seconds": pmem.average_seconds,
        "hybrid_avg_seconds": hybrid.average_seconds,
        "dram_avg_seconds": dram.average_seconds,
    }


def test_hybrid_design(benchmark, runner):
    values = benchmark.pedantic(_study, args=(runner,), rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in values.items()})

    # The hybrid sits between PMEM-only and DRAM-only, close to DRAM.
    assert values["dram_avg_seconds"] < values["hybrid_avg_seconds"]
    assert values["hybrid_avg_seconds"] < values["pmem_avg_seconds"]
    hybrid_slowdown = values["hybrid_avg_seconds"] / values["dram_avg_seconds"]
    pmem_slowdown = values["pmem_avg_seconds"] / values["dram_avg_seconds"]
    assert hybrid_slowdown < 0.75 * pmem_slowdown

    # Price/performance: the hybrid needs DRAM only for the indexes, so
    # it inherits most of PMEM's §7 cost advantage at near-DRAM speed.
    comparison = economics.compare(
        capacity=12 * 128 * GIB, slowdown=hybrid_slowdown
    )
    benchmark.extra_info["hybrid_slowdown"] = round(hybrid_slowdown, 2)
    benchmark.extra_info["price_ratio"] = round(comparison.price_ratio, 2)
    assert comparison.pmem_wins
