"""Wall-time benchmarks of the hash-index implementations themselves.

These measure the *Python* implementations (not the modeled PMEM), which
matters for users of the library: bulk probes are the hot path of every
SSB execution.
"""

import numpy as np
import pytest

from repro.ssb.hashindex import ChainedIndex, DashIndex

N_KEYS = 20_000
N_PROBES = 200_000


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    keys = rng.choice(10 * N_KEYS, size=N_KEYS, replace=False).astype(np.int64)
    probes = rng.choice(keys, size=N_PROBES).astype(np.int64)
    return keys, probes


@pytest.fixture(scope="module")
def dash(data):
    keys, _ = data
    index = DashIndex()
    index.bulk_insert(keys, keys * 2)
    return index


@pytest.fixture(scope="module")
def chained(data):
    keys, _ = data
    index = ChainedIndex(expected_size=N_KEYS)
    index.bulk_insert(keys, keys * 2)
    return index


def test_dash_bulk_probe(benchmark, dash, data):
    _, probes = data
    out = benchmark(dash.bulk_probe, probes)
    assert (out == probes * 2).all()
    benchmark.extra_info["probes"] = N_PROBES
    benchmark.extra_info["reads_per_probe"] = round(dash.stats.reads_per_probe, 2)


def test_chained_bulk_probe(benchmark, chained, data):
    _, probes = data
    out = benchmark(chained.bulk_probe, probes)
    assert (out == probes * 2).all()
    benchmark.extra_info["probes"] = N_PROBES
    benchmark.extra_info["reads_per_probe"] = round(
        chained.stats.reads_per_probe, 2
    )


def test_dash_bulk_build(benchmark, data):
    keys, _ = data
    small = keys[:2000]

    def build():
        index = DashIndex()
        index.bulk_insert(small, small)
        return index

    index = benchmark(build)
    assert len(index) == len(small)


def test_chained_bulk_build(benchmark, data):
    keys, _ = data

    def build():
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys)
        return index

    index = benchmark(build)
    assert len(index) == len(keys)
