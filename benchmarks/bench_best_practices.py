"""Benchmark: verify the 7 best practices and 12 insights (§7)."""

from benchmarks.conftest import attach
from repro.experiments.bestpractices import run


def test_best_practices(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    assert all(v == 1.0 for v in result.series_values("practices hold").values())
    assert all(v == 1.0 for v in result.series_values("insights hold").values())
