"""Benchmark: the observability layer's cost, disabled and enabled.

The contract of :class:`repro.obs.NullRecorder` is that the default
(disabled) path costs one attribute load and one branch per emission
site — cheap enough that instrumenting the hot paths was free. Two
measurements back that up on the Figure 3 sweep (the same workload as
``bench_sweep_service.py``):

* ``test_null_recorder_overhead_budget`` bounds the *disabled* cost:
  the measured per-evaluation guard cost, multiplied by the number of
  evaluations in a cold sweep, must stay under 2% of the sweep's wall
  time. This is asserted, not just reported.
* ``test_sweep_cold_with_counters`` times the *enabled* path under a
  :class:`CountersRecorder`, so the report shows what turning metrics
  on actually costs.
"""

from __future__ import annotations

import os
import timeit

import pytest

from repro.memsim import BandwidthModel
from repro.obs import NULL_RECORDER, CountersRecorder, default_recorder, using_recorder
from repro.sweep import EvaluationService, SweepRunner


def _cold_runner() -> SweepRunner:
    return SweepRunner(EvaluationService(memoize=False))


def _guard_seconds_per_evaluation() -> float:
    """Measured cost of the recorder guards one evaluation pays.

    Each evaluation routed through the service performs a
    ``default_recorder()`` lookup plus a handful of ``enabled`` checks
    (service, core, runner); eight iterations per timeit pass
    over-approximates the real count.
    """
    rec = NULL_RECORDER

    def guards() -> None:
        resolved = default_recorder()
        for _ in range(8):
            if resolved is not None and resolved.enabled:
                raise AssertionError("NULL_RECORDER must stay disabled")
        if rec.enabled:
            raise AssertionError("unreachable")

    iterations = 20_000
    return min(timeit.repeat(guards, number=iterations, repeat=5)) / iterations


def test_null_recorder_overhead_budget(fig3_grid):
    """Disabled-recorder guards must cost < 2% of a cold Figure 3 sweep."""
    runner = _cold_runner()
    sweep_seconds = min(
        timeit.repeat(lambda: runner.run(fig3_grid), number=1, repeat=3)
    )
    evaluations = len(list(fig3_grid))
    guard_seconds = _guard_seconds_per_evaluation() * evaluations
    overhead = guard_seconds / sweep_seconds
    if (os.cpu_count() or 1) < 4:
        # Same policy as bench_vector_kernels: wall-clock ratio gates
        # flake on shared small hosts, where this budget hovers right
        # at the 2% line (~0.5 us guards against a ~20 us evaluation).
        pytest.skip(
            f"overhead budget needs >= 4 CPU cores for a stable ratio "
            f"(have {os.cpu_count() or 1}); measured {overhead:.2%}"
        )
    assert overhead < 0.02, (
        f"NullRecorder guards cost {overhead:.2%} of the cold sweep "
        f"({guard_seconds * 1e6:.1f} us over {sweep_seconds * 1e3:.1f} ms)"
    )


def test_sweep_cold_null_recorder(benchmark, fig3_grid):
    """Cold sweep on the shipped default (NullRecorder) path."""
    totals = benchmark(lambda: _cold_runner().run(fig3_grid))
    assert len(totals) == len(list(fig3_grid))


def test_sweep_cold_with_counters(benchmark, fig3_grid):
    """Cold sweep with metrics enabled: the price of a CountersRecorder."""

    def observed():
        rec = CountersRecorder()
        with using_recorder(rec):
            _cold_runner().run(fig3_grid)
        return rec

    rec = benchmark(observed)
    assert rec.counter("sweep.points_count") == len(list(fig3_grid))


def test_model_facade_unaffected(benchmark, model: BandwidthModel):
    """The deprecated façade still answers point queries at full speed."""
    gbps = benchmark(lambda: model.sequential_read(36, 4096))
    assert gbps > 0.0
