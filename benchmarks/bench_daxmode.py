"""Benchmark: regenerate the devdax/fsdax comparison (§2.3)."""

from benchmarks.conftest import attach
from repro.experiments.daxmode import run


def test_daxmode(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    devdax = result.series_values("devdax")["18"]
    fsdax = result.series_values("fsdax")["18"]
    assert 1.04 < devdax / fsdax < 1.11
