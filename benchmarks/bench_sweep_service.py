"""Benchmark: the sweep service's memo cache and thread fan-out.

Regenerates Figure 3 (the largest grid sweep: access size x thread count
x media) three ways — uncached, warm-cache, and with a 4-thread
``SweepRunner`` — so the report quantifies what the pure-core refactor
buys: a warm second regeneration should be far cheaper than a cold one,
and the parallel run must stay bit-identical to the serial one.
"""

from __future__ import annotations

from repro.experiments.fig03 import run
from repro.memsim import BandwidthModel, Op
from repro.sweep import EvaluationService, SweepRunner
from repro.workloads.sequential import sequential_sweep


def _fresh_model() -> BandwidthModel:
    return BandwidthModel(service=EvaluationService(memoize=False))


def test_sweep_cold(benchmark):
    """Full Figure 3 regeneration with caching disabled: the baseline."""
    result = benchmark(lambda: run(_fresh_model()))
    assert result.comparisons


def test_sweep_warm_cache(benchmark):
    """Regeneration against an already-populated memo cache."""
    model = BandwidthModel(service=EvaluationService())
    run(model)  # populate
    result = benchmark(run, model)
    benchmark.extra_info["hit_rate"] = round(model.service.stats.hit_rate, 3)
    assert model.service.stats.hit_rate > 0.5
    assert result.comparisons


def test_sweep_parallel(benchmark):
    """The raw grid fanned out on 4 threads, checked against serial."""
    grid = sequential_sweep(Op.READ)
    serial = SweepRunner(EvaluationService(memoize=False), jobs=1).totals(grid)
    totals = benchmark(
        lambda: SweepRunner(EvaluationService(memoize=False), jobs=4).totals(grid)
    )
    assert totals == serial
