"""Benchmark: regenerate Figure 7 (write bandwidth sweep)."""

from benchmarks.conftest import attach
from repro.experiments.fig07 import run


def test_fig07_write_access_size(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    grouped_36 = result.series_values("a-grouped/36T")
    individual_36 = result.series_values("b-individual/36T")
    assert individual_36["64"] > 3 * grouped_36["64"]
