"""Benchmark: regenerate Figure 12 (random reads, PMEM/DRAM)."""

from benchmarks.conftest import attach
from repro.experiments.fig12 import run


def test_fig12_random_read(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    pmem = result.series_values("a-pmem/36T")
    assert pmem["4096"] > pmem["256"] > pmem["64"]
