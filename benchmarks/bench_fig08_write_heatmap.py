"""Benchmark: regenerate Figure 8 (the write boomerang heatmap)."""

from benchmarks.conftest import attach
from repro.experiments.fig08 import run


def test_fig08_write_heatmap(benchmark, model):
    result = benchmark(run, model)
    attach(benchmark, result)
    # The boomerang: both-axes-large is cold, each edge stays hot.
    assert result.series_values("b-individual/6T")["4096"] > 10
    assert result.series_values("b-individual/36T")["65536"] < 7
