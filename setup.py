"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-use-pep517`` (legacy editable install);
all project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
