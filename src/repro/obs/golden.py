"""Golden-snapshot helpers: canonical serialisation and exact diffing.

A *golden* is a :meth:`~repro.obs.recorder.CountersRecorder.snapshot`
serialised as sorted, indented JSON. Because the whole pipeline is
deterministic pure-float arithmetic and Python's JSON encoder emits
``repr(float)`` (the shortest round-tripping form), a golden read back
from disk equals a freshly recorded snapshot *bit for bit* — so the
regression tests compare with exact equality and report every differing
counter by name.

Updating a golden (``pytest --update-goldens``) is legitimate exactly
when the model intentionally changed — a recalibration, a new mechanism,
a new counter — and the diff in the golden file is part of reviewing
that change. It is never the fix for an unexplained diff.
"""

from __future__ import annotations

import json
from pathlib import Path


def canonical_json(snapshot: dict[str, object]) -> str:
    """Serialise a snapshot as sorted, indented JSON (trailing newline)."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def write_golden(path: Path | str, snapshot: dict[str, object]) -> None:
    """Write ``snapshot`` to ``path`` in canonical form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(snapshot), encoding="utf-8")


def load_golden(path: Path | str) -> dict[str, object]:
    """Read a golden snapshot back (floats round-trip exactly)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _diff_section(
    section: str,
    expected: dict[str, object],
    actual: dict[str, object],
) -> list[str]:
    lines: list[str] = []
    for name in sorted(set(expected) | set(actual)):
        if name not in actual:
            lines.append(f"{section}: {name} missing (expected {expected[name]!r})")
        elif name not in expected:
            lines.append(f"{section}: {name} unexpected (got {actual[name]!r})")
        elif expected[name] != actual[name]:
            lines.append(
                f"{section}: {name} expected {expected[name]!r}, "
                f"got {actual[name]!r}"
            )
    return lines


def diff_snapshots(
    expected: dict[str, object], actual: dict[str, object]
) -> list[str]:
    """Named differences between two snapshots (empty list = identical).

    Every line names the counter/histogram/event that differs, so a
    failing golden test says *which mechanism* moved, not just that
    something did.
    """
    lines: list[str] = []
    for section in ("counters", "histograms", "events", "spans"):
        lines.extend(
            _diff_section(
                section,
                dict(expected.get(section, {})),  # type: ignore[arg-type]
                dict(actual.get(section, {})),  # type: ignore[arg-type]
            )
        )
    return lines
