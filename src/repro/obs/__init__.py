"""Zero-dependency observability layer: tracing, counters, profiling hooks.

Public surface:

* :class:`~repro.obs.recorder.Recorder` — the sink protocol, with
  :class:`~repro.obs.recorder.NullRecorder` (default; zero overhead),
  :class:`~repro.obs.recorder.CountersRecorder` (named counters +
  histograms), and :class:`~repro.obs.recorder.TraceRecorder`
  (span/event stream with a JSONL exporter);
* :func:`default_recorder` / :func:`set_default_recorder` /
  :func:`using_recorder` — the process-wide sink consumers fall back to
  when no explicit ``recorder=`` is passed (mirrors
  :func:`repro.sweep.default_service`);
* :mod:`~repro.obs.catalog` — the counter-name convention and registry;
* :mod:`~repro.obs.report` — the ``--metrics`` pretty-printer;
* :mod:`~repro.obs.golden` — canonical snapshots and exact diffing for
  the golden regression tests.

Recorders are write-only sinks: they never influence a result and are
excluded from every cache key, which preserves the purity contract of
:func:`repro.memsim.evaluation.evaluate`.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.obs.recorder import (
    NULL_RECORDER,
    CountersRecorder,
    HistogramSummary,
    NullRecorder,
    Recorder,
    TraceRecorder,
    merge_snapshot,
)

_DEFAULT_RECORDER: Recorder | None = None


def default_recorder() -> Recorder:
    """The process-wide sink (the shared :data:`NULL_RECORDER` by default)."""
    if _DEFAULT_RECORDER is None:
        return NULL_RECORDER
    return _DEFAULT_RECORDER


def set_default_recorder(recorder: Recorder | None) -> Recorder | None:
    """Replace the process-wide sink; returns the previous override.

    Pass ``None`` to reset to the null recorder. Used by the CLI
    (``repro run --metrics``, ``repro trace``) and by tests; library code
    should prefer the explicit ``recorder=`` parameters.
    """
    global _DEFAULT_RECORDER
    previous = _DEFAULT_RECORDER
    _DEFAULT_RECORDER = recorder
    return previous


@contextlib.contextmanager
def using_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the process default for a ``with`` block."""
    previous = set_default_recorder(recorder)
    try:
        yield recorder
    finally:
        set_default_recorder(previous)


__all__ = [
    "NULL_RECORDER",
    "CountersRecorder",
    "HistogramSummary",
    "NullRecorder",
    "Recorder",
    "TraceRecorder",
    "default_recorder",
    "merge_snapshot",
    "set_default_recorder",
    "using_recorder",
]
