"""Pretty-printer for counter snapshots (``repro run --metrics``).

Renders a :meth:`~repro.obs.recorder.CountersRecorder.snapshot` as
aligned text sections, resolving each name's unit and meaning from the
:mod:`~repro.obs.catalog` so the reader never has to guess whether a
number is bytes, a tally, or a ratio.
"""

from __future__ import annotations

from repro.obs.catalog import describe
from repro.obs.recorder import CountersRecorder
from repro.units import GB, MIB


def _format_value(name: str, value: float) -> str:
    """Human form of one counter value, scaled by its unit suffix."""
    if name.endswith("_bytes"):
        if value >= GB:
            return f"{value / GB:,.2f} GB"
        if value >= MIB:
            return f"{value / MIB:,.1f} MiB"
        return f"{value:,.0f} B"
    if name.endswith("_ratio"):
        return f"{value * 100.0:.1f}%"
    if name.endswith("_seconds"):
        return f"{value:,.4f} s"
    if name.endswith("_gbps"):
        return f"{value:,.2f} GB/s"
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.2f}"


def _annotate(name: str) -> str:
    spec = describe(name)
    return f"  # {spec.description}" if spec is not None else ""


def render_snapshot(snapshot: dict[str, object]) -> str:
    """Aligned multi-section text form of a counter snapshot."""
    lines: list[str] = []
    counters: dict[str, float] = dict(snapshot.get("counters", {}))  # type: ignore[arg-type]
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(
                f"  {name:<{width}}  {_format_value(name, counters[name]):>14}"
                f"{_annotate(name)}"
            )
    histograms: dict[str, dict[str, float]] = dict(snapshot.get("histograms", {}))  # type: ignore[arg-type]
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            count = int(h.get("count", 0))
            mean = h.get("total", 0.0) / count if count else 0.0
            lines.append(
                f"  {name:<{width}}  n={count:<6} "
                f"min={_format_value(name, h.get('min', 0.0))} "
                f"mean={_format_value(name, mean)} "
                f"max={_format_value(name, h.get('max', 0.0))}"
                f"{_annotate(name)}"
            )
    for section in ("events", "spans"):
        tallies: dict[str, int] = dict(snapshot.get(section, {}))  # type: ignore[arg-type]
        if tallies:
            lines.append(f"{section}:")
            width = max(len(name) for name in tallies)
            for name in sorted(tallies):
                lines.append(f"  {name:<{width}}  x{tallies[name]}")
    if not lines:
        return "no observations recorded"
    return "\n".join(lines)


def render_recorder(recorder: CountersRecorder) -> str:
    """Convenience: render a live recorder's snapshot."""
    return render_snapshot(recorder.snapshot())
