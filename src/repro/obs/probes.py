"""Emission helpers: translate simulator internals into catalogue counters.

The analytic core and the DES engine call these helpers — behind an
``if recorder.enabled`` guard — instead of scattering counter names
through model code. Keeping every name in one module (and every name in
:mod:`repro.obs.catalog`) is what lets the golden tests assert that the
emitted vocabulary is complete and simlint-clean.

Byte-accounting identity
------------------------
Per PMEM DIMM the probes maintain, exactly and by construction::

    issued_bytes == served_bytes + dropped_bytes

``issued`` is the line-granular request volume the DIMM controller sees
(sub-line accesses request whole 256 B lines; uncombined 64 B stores are
full-line read-modify-writes), ``served`` is what the 3D-XPoint media
actually moved (application volume x the model's amplification), and
``dropped`` is the requested volume the controller's buffers absorbed —
the read buffer answering consecutive sub-line reads (§3.1) and the
write-combining buffer assembling full lines (§4.1). A negative saving
cannot occur: when amplification exceeds the naive request volume (far
writes, §4.4), ``issued`` is raised to ``served`` and ``dropped`` is 0.
"""

from __future__ import annotations

from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.constants import CACHE_LINE, OPTANE_LINE
from repro.memsim.counters import PerfCounters
from repro.memsim.prefetcher import PrefetcherModel
from repro.memsim.spec import Layout, Pattern, StreamSpec
from repro.memsim.topology import MediaKind
from repro.obs.recorder import Recorder

#: Metadata share a far payload adds to the UPI (requests, directory
#: lookups); mirrors the reverse-request fraction the evaluation core
#: uses for its utilization counter.
COHERENCE_METADATA_FRACTION: float = 0.28

#: Extra coherence traffic of a far read against a *cold* directory:
#: mapping reassignments travel the link on top of the metadata share
#: (§3.4). Warming the directory removes this term, never adds one —
#: the metamorphic suite holds the probes to that monotonicity.
COLD_REMAP_FRACTION: float = 0.10


def _pmem_line_accounting(spec: StreamSpec, read_amp: float, write_amp: float) -> tuple[float, float]:
    """Return ``(issued, served)`` line-request and media bytes for a stream."""
    volume = float(spec.total_bytes)
    if spec.is_read:
        sub_line = min(spec.access_size, OPTANE_LINE)
        naive = volume * (OPTANE_LINE / sub_line)
        served = volume * read_amp
    else:
        # Without combining, every cache-line store becomes a full-line RMW.
        naive = volume * (OPTANE_LINE / CACHE_LINE)
        served = volume * write_amp
    return max(naive, served), served


def emit_evaluation(
    recorder: Recorder,
    config: MachineConfig,
    solos: list[tuple[StreamSpec, float, float, float]],
    counters: PerfCounters,
    before: DirectoryState,
    after: DirectoryState,
) -> None:
    """Emit one analytic evaluation: per-stream, per-DIMM, and totals.

    ``solos`` carries ``(spec, achieved_gbps, read_amp, write_amp)`` per
    stream — the intermediate amplification factors the final
    :class:`~repro.memsim.counters.PerfCounters` already aggregated away.
    """
    recorder.incr("memsim.eval.calls_count")
    recorder.incr("memsim.app.read_bytes", counters.app_bytes_read)
    recorder.incr("memsim.app.write_bytes", counters.app_bytes_written)
    recorder.incr("memsim.media.read_bytes", counters.media_bytes_read)
    recorder.incr("memsim.media.write_bytes", counters.media_bytes_written)
    recorder.incr("memsim.upi.payload_bytes", counters.upi_bytes)
    recorder.incr("memsim.fault.pages_count", float(counters.page_faults))
    recorder.incr("memsim.fault.wait_seconds", counters.page_fault_seconds)
    recorder.incr(
        "memsim.directory.transitions_count",
        float(len(after.warm_pairs - before.warm_pairs)),
    )
    recorder.observe("memsim.imc.rpq_occupancy_ratio", counters.rpq_occupancy)
    recorder.observe("memsim.imc.wpq_occupancy_ratio", counters.wpq_occupancy)
    recorder.observe("memsim.upi.utilization_ratio", counters.upi_utilization)

    prefetcher = PrefetcherModel(
        config.calibration.cpu, enabled=config.prefetcher_enabled
    )
    for spec, gbps, read_amp, write_amp in solos:
        volume = float(spec.total_bytes)
        recorder.incr("memsim.eval.requests_count", volume / spec.access_size)
        recorder.observe("memsim.stream.achieved_gbps", gbps)
        if spec.far:
            coherence = volume * COHERENCE_METADATA_FRACTION
            if spec.is_read and not before.is_warm(
                spec.issuing_socket, spec.target_socket
            ):
                coherence += volume * COLD_REMAP_FRACTION
            recorder.incr("memsim.upi.coherence_bytes", coherence)
        if spec.is_read and spec.pattern is Pattern.SEQUENTIAL:
            lines = volume / CACHE_LINE
            issued_lines = lines if config.prefetcher_enabled else 0.0
            if spec.layout is Layout.GROUPED:
                useful = issued_lines * prefetcher.grouped_sequential_factor(
                    spec.access_size
                )
            else:
                useful = issued_lines
            recorder.incr("memsim.prefetch.issued_count", issued_lines)
            recorder.incr("memsim.prefetch.useful_count", useful)
        if spec.media is not MediaKind.PMEM:
            continue
        issued, served = _pmem_line_accounting(spec, read_amp, write_amp)
        dropped = issued - served
        if spec.is_read:
            recorder.incr("memsim.read_buffer.hit_bytes", dropped)
            recorder.incr("memsim.read_buffer.miss_bytes", served)
        else:
            recorder.incr("memsim.wc.hit_count", dropped / OPTANE_LINE)
            recorder.incr("memsim.wc.miss_count", served / OPTANE_LINE)
        ways = config.topology.interleave_ways(spec.target_socket, MediaKind.PMEM)
        per_issued = issued / ways
        per_served = served / ways
        per_dropped = per_issued - per_served
        for dimm in range(ways):
            prefix = f"memsim.dimm.s{spec.target_socket}.d{dimm}"
            recorder.incr(f"{prefix}.issued_bytes", per_issued)
            recorder.incr(f"{prefix}.served_bytes", per_served)
            recorder.incr(f"{prefix}.dropped_bytes", per_dropped)


def emit_vector_fallback(recorder: Recorder, reason: str) -> None:
    """Emit one grid point's fall-back from the batched kernel.

    ``reason`` is a :data:`repro.memsim.kernels.FALLBACK_REASONS` label
    (the :func:`~repro.memsim.kernels.classify_point` verdict). The
    aggregate counter tracks the residual scalar fraction of a sweep;
    the per-reason family says why each point was unpriceable.
    """
    if not recorder.enabled:
        return
    recorder.incr("sweep.vector.fallback_count")
    recorder.incr(f"sweep.vector.fallback.{reason}_count")


def emit_engine(
    recorder: Recorder,
    per_dimm: list[tuple[int, int, int, int, int, int, int]],
    ops: int,
    bytes_moved: int,
    media_bytes: float,
) -> None:
    """Emit one DES-engine replay.

    ``per_dimm`` rows are ``(issued_bytes, served_bytes, dropped_bytes,
    buffer_hit_lines, buffer_miss_lines, wc_hit_ops, wc_miss_ops)`` —
    integer tallies the engine accumulates on its DIMM servers. Here
    ``served`` is the application volume that went through the media
    queue and ``dropped`` the volume the line buffer answered, so the
    ``issued == served + dropped`` identity is exact integer arithmetic;
    media-side amplification is reported via ``engine.media.moved_bytes``.
    """
    recorder.incr("engine.requests_count", float(ops))
    recorder.incr("engine.app.moved_bytes", float(bytes_moved))
    recorder.incr("engine.media.moved_bytes", media_bytes)
    for index, row in enumerate(per_dimm):
        issued, served, dropped, buf_hits, buf_misses, wc_hits, wc_misses = row
        prefix = f"engine.dimm.d{index}"
        recorder.incr(f"{prefix}.issued_bytes", float(issued))
        recorder.incr(f"{prefix}.served_bytes", float(served))
        recorder.incr(f"{prefix}.dropped_bytes", float(dropped))
        recorder.incr("engine.read_buffer.hits_count", float(buf_hits))
        recorder.incr("engine.read_buffer.misses_count", float(buf_misses))
        recorder.incr("engine.wc.hits_count", float(wc_hits))
        recorder.incr("engine.wc.misses_count", float(wc_misses))
