"""Counter catalogue: the naming convention and the known-name registry.

Every counter and histogram name in the repository follows one
convention, enforced statically by simlint rule SIM104 and dynamically
by :func:`validate_name`:

* dotted ``lower_snake`` segments (``memsim.wc.hit_count``), at least
  two segments;
* the last segment carries a unit suffix from :data:`UNIT_SUFFIXES` —
  ``_bytes``, ``_count``, ``_seconds``, ``_ratio`` (0..1), ``_gbps``
  (decimal GB/s).

The catalogue maps each name — or a pattern with ``*`` placeholder
segments for per-DIMM families — to its unit and meaning, so reports
can label values and tests can assert that everything the probes emit
is documented.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Allowed unit suffixes for the final name segment. ``ratio`` values
#: are fractions in 0..1; ``gbps`` is decimal GB/s; ``seconds``/``bytes``
#: are SI seconds and bytes; ``count`` is a plain tally.
UNIT_SUFFIXES: tuple[str, ...] = ("bytes", "count", "seconds", "ratio", "gbps")

_SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def validate_name(name: str) -> str | None:
    """Check ``name`` against the convention; return a reason or ``None``.

    A ``None`` return means the name is valid. The same logic backs the
    SIM104 static rule, so runtime-constructed names (per-DIMM families)
    get the identical check in tests.
    """
    segments = name.split(".")
    if len(segments) < 2:
        return "needs at least two dotted segments (subsystem.metric)"
    for segment in segments:
        if not _SEGMENT_RE.match(segment):
            return f"segment {segment!r} is not lower_snake"
    last = segments[-1]
    if not any(last == suffix or last.endswith(f"_{suffix}") for suffix in UNIT_SUFFIXES):
        return (
            f"last segment {last!r} lacks a unit suffix "
            f"({', '.join(UNIT_SUFFIXES)})"
        )
    return None


@dataclass(frozen=True)
class CounterSpec:
    """One catalogue entry: a name (or ``*``-pattern) with unit and meaning."""

    pattern: str
    unit: str
    description: str

    def matches(self, name: str) -> bool:
        own = self.pattern.split(".")
        other = name.split(".")
        if len(own) != len(other):
            return False
        return all(p in ("*", s) for p, s in zip(own, other))


#: Every counter/histogram name the probes emit. ``*`` segments stand for
#: runtime indices (socket and DIMM numbers).
CATALOG: tuple[CounterSpec, ...] = (
    # -- analytic evaluation core (repro.memsim.evaluation) -------------
    CounterSpec("memsim.eval.calls_count", "count", "evaluate() invocations"),
    CounterSpec("memsim.eval.requests_count", "count", "application-level accesses issued"),
    CounterSpec("memsim.app.read_bytes", "bytes", "application read volume"),
    CounterSpec("memsim.app.write_bytes", "bytes", "application write volume"),
    CounterSpec("memsim.media.read_bytes", "bytes", "media-internal read volume (incl. amplification)"),
    CounterSpec("memsim.media.write_bytes", "bytes", "media-internal write volume (incl. amplification)"),
    CounterSpec("memsim.upi.payload_bytes", "bytes", "payload crossing the UPI"),
    CounterSpec("memsim.upi.coherence_bytes", "bytes", "directory/metadata traffic on the UPI"),
    CounterSpec("memsim.directory.transitions_count", "count", "cold->warm pair transitions this evaluation"),
    CounterSpec("memsim.fault.pages_count", "count", "first-touch page faults (fsdax)"),
    CounterSpec("memsim.fault.wait_seconds", "seconds", "time spent fault handling"),
    CounterSpec("memsim.prefetch.issued_count", "count", "cache lines the L2 prefetcher requested"),
    CounterSpec("memsim.prefetch.useful_count", "count", "prefetched lines the stream consumed"),
    CounterSpec("memsim.wc.hit_count", "count", "media lines assembled fully in the combining buffer"),
    CounterSpec("memsim.wc.miss_count", "count", "media lines written via partial-line RMW"),
    CounterSpec("memsim.read_buffer.hit_bytes", "bytes", "read bytes served from the 256 B buffer"),
    CounterSpec("memsim.read_buffer.miss_bytes", "bytes", "read bytes that reached the 3D-XPoint media"),
    CounterSpec("memsim.dimm.*.*.issued_bytes", "bytes", "line-granular bytes requested of one DIMM"),
    CounterSpec("memsim.dimm.*.*.served_bytes", "bytes", "bytes the DIMM's media actually moved"),
    CounterSpec("memsim.dimm.*.*.dropped_bytes", "bytes", "requested bytes absorbed by DIMM buffers"),
    CounterSpec("memsim.imc.rpq_occupancy_ratio", "ratio", "read pending queue occupancy"),
    CounterSpec("memsim.imc.wpq_occupancy_ratio", "ratio", "write pending queue occupancy"),
    CounterSpec("memsim.upi.utilization_ratio", "ratio", "most-loaded UPI direction utilization"),
    CounterSpec("memsim.stream.achieved_gbps", "gbps", "per-stream achieved bandwidth"),
    # -- discrete-event engine (repro.memsim.engine) ---------------------
    CounterSpec("engine.requests_count", "count", "trace operations replayed"),
    CounterSpec("engine.app.moved_bytes", "bytes", "application bytes the replay completed"),
    CounterSpec("engine.media.moved_bytes", "bytes", "media bytes the replay caused"),
    CounterSpec("engine.read_buffer.hits_count", "count", "media lines served from a DIMM line buffer"),
    CounterSpec("engine.read_buffer.misses_count", "count", "media lines fetched from media"),
    CounterSpec("engine.wc.hits_count", "count", "write fragments combined at full efficiency"),
    CounterSpec("engine.wc.misses_count", "count", "write fragments that paid combining pressure"),
    CounterSpec("engine.dimm.*.issued_bytes", "bytes", "bytes requested of one DIMM server"),
    CounterSpec("engine.dimm.*.served_bytes", "bytes", "bytes served through the DIMM's media queue"),
    CounterSpec("engine.dimm.*.dropped_bytes", "bytes", "bytes answered by the line buffer"),
    # -- sweep service / runner (repro.sweep) ----------------------------
    CounterSpec("sweep.cache.hits_count", "count", "evaluations served from a cache"),
    CounterSpec("sweep.cache.misses_count", "count", "evaluations actually computed"),
    CounterSpec("sweep.cache.disk_hits_count", "count", "cache hits served from disk"),
    CounterSpec("sweep.points_count", "count", "sweep points evaluated"),
    CounterSpec("sweep.point.wall_seconds", "seconds", "wall time per sweep point"),
    CounterSpec("sweep.vector.fallback_count", "count", "grid points that fell back to the scalar evaluator"),
    CounterSpec("sweep.vector.fallback.empty_count", "count", "fallbacks because the point had no streams"),
    CounterSpec("sweep.vector.fallback.socket_count", "count", "fallbacks because a stream named an unknown or core-less socket"),
    CounterSpec("sweep.vector.fallback.media_count", "count", "fallbacks because the target socket lacks the stream's media"),
    # -- cluster sweep backend (repro.sweep.cluster) ---------------------
    CounterSpec("cluster.workers_count", "count", "workers that joined the sweep"),
    CounterSpec("cluster.chunks.shipped_count", "count", "point chunks shipped to workers"),
    CounterSpec("cluster.chunks.stolen_count", "count", "chunks re-formed from stolen work"),
    CounterSpec("cluster.chunks.requeued_count", "count", "chunks requeued from dead workers"),
    CounterSpec("cluster.heartbeats_count", "count", "worker heartbeat frames received"),
    CounterSpec("cluster.shared_cache.hits_count", "count", "points served by the coordinator's shared cache"),
    CounterSpec("cluster.shared_cache.misses_count", "count", "shared-cache lookups that missed"),
    CounterSpec("cluster.worker.wall_seconds", "seconds", "wall time per worker result frame"),
    # -- serving layer (repro.serve) -------------------------------------
    CounterSpec("serve.requests_count", "count", "request frames dispatched"),
    CounterSpec("serve.shed_count", "count", "requests rejected by admission control"),
    CounterSpec("serve.deadline.expired_count", "count", "requests expired while queued"),
    CounterSpec("serve.errors_count", "count", "requests whose evaluation failed"),
    CounterSpec("serve.dedup.joined_count", "count", "duplicate requests collapsed in a window"),
    CounterSpec("serve.coalesce.batches_count", "count", "coalesced batches dispatched"),
    CounterSpec("serve.coalesce.batch_size_count", "count", "points per coalesced batch"),
    CounterSpec("serve.queue.depth_count", "count", "gather-queue depth at admission"),
    CounterSpec("serve.latency.wall_seconds", "seconds", "request wall time, admission to answer"),
    CounterSpec("serve.protocol.drops_count", "count", "connections dropped for protocol violations"),
    # -- SSB cost model / executor (repro.ssb) ---------------------------
    CounterSpec("ssb.scan.read_bytes", "bytes", "sequential scan volume priced"),
    CounterSpec("ssb.probe.requests_count", "count", "random index probes priced"),
    CounterSpec("ssb.probe.read_bytes", "bytes", "bytes fetched by random probes"),
    CounterSpec("ssb.intermediate.write_bytes", "bytes", "materialised intermediate volume"),
    CounterSpec("ssb.cpu.tuples_count", "count", "weighted tuples of CPU work priced"),
    CounterSpec("ssb.query.predicted_seconds", "seconds", "predicted query runtime"),
    CounterSpec("ssb.exec.queries_count", "count", "queries executed for real"),
    CounterSpec("ssb.exec.seq_read_bytes", "bytes", "recorded sequential read traffic"),
    CounterSpec("ssb.exec.random_requests_count", "count", "recorded random reads"),
    CounterSpec("ssb.exec.write_bytes", "bytes", "recorded write traffic"),
)


def describe(name: str) -> CounterSpec | None:
    """The catalogue entry covering ``name``, or ``None`` if uncatalogued."""
    for spec in CATALOG:
        if spec.matches(name):
            return spec
    return None
