"""Recorder protocol and its three implementations.

The observability layer mirrors the event-counter methodology the paper
borrows from VTune: instead of only reporting final bandwidth, every
subsystem *emits* what its mechanisms did — media line requests per
DIMM, write-combining hits, UPI payload and coherence traffic, cache
hits in the sweep service — into a write-only sink.

Three sinks implement the :class:`Recorder` protocol:

* :class:`NullRecorder` — the default everywhere. ``enabled`` is False
  and all emission sites guard on it, so the hot path pays a single
  attribute check and nothing else.
* :class:`CountersRecorder` — named monotonic counters, min/max/mean
  histograms, and event/span tallies; :meth:`CountersRecorder.snapshot`
  is the canonical form the golden tests compare.
* :class:`TraceRecorder` — an ordered span/event stream with a JSONL
  exporter. Records are sequence-numbered, not timestamped, unless a
  clock is injected — the default trace of a deterministic evaluation
  is itself deterministic.

Recorders are deliberately *not* part of any cache key: they are sinks,
never inputs, which keeps :func:`repro.memsim.evaluation.evaluate` pure
(see DESIGN.md §5).
"""

from __future__ import annotations

import contextlib
import json
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol


class Recorder(Protocol):
    """Write-only sink for counters, histogram samples, events and spans.

    ``enabled`` exists so emission sites can skip building their payload
    entirely: the contract is ``if recorder.enabled: recorder.incr(...)``.
    Counter and histogram names follow the catalogue convention enforced
    by simlint rule SIM104 — ``dotted.lower_snake`` with a unit suffix
    (``_bytes``, ``_count``, ``_seconds``, ``_ratio``, ``_gbps``).
    """

    enabled: bool

    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the monotonic counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the distribution ``name``."""

    def event(self, name: str, **fields: object) -> None:
        """Record one structured event."""

    def span(self, name: str, **fields: object) -> contextlib.AbstractContextManager[None]:
        """Context manager bracketing a named unit of work."""


_NULL_SPAN = contextlib.nullcontext()


class NullRecorder:
    """The no-op sink: ``enabled`` is False and every method does nothing.

    Emission sites check ``enabled`` before assembling any payload, so
    the default-recorder hot path costs one attribute load and one
    branch (benchmarks/bench_obs_overhead.py keeps it under 2%).
    """

    enabled: bool = False

    def incr(self, name: str, value: float = 1.0) -> None:
        """Discard the counter increment (``value`` in the counter's unit)."""

    def observe(self, name: str, value: float) -> None:
        """Discard the sample."""

    def event(self, name: str, **fields: object) -> None:
        """Discard the event."""

    def span(self, name: str, **fields: object) -> contextlib.AbstractContextManager[None]:
        """Return a shared no-op context manager."""
        return _NULL_SPAN


#: Shared process-wide instance; NullRecorder carries no state, so one
#: object serves every call site.
NULL_RECORDER = NullRecorder()


@dataclass
class HistogramSummary:
    """Streaming summary of one observed distribution.

    Stores count/total/min/max rather than raw samples: enough for the
    reports and the golden comparisons while staying O(1) per sample.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_json(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge(self, count: int, total: float, minimum: float, maximum: float) -> None:
        """Fold another summary's state into this one, exactly.

        Count/total/min/max form a commutative monoid: merging the
        summaries of two disjoint sample streams equals summarising the
        concatenated stream (up to float addition order on ``total``).
        This is what lets worker processes ship snapshots instead of
        individual samples.
        """
        if count <= 0:
            return
        if self.count == 0:
            self.minimum = minimum
            self.maximum = maximum
        else:
            self.minimum = min(self.minimum, minimum)
            self.maximum = max(self.maximum, maximum)
        self.count += int(count)
        self.total += float(total)


class CountersRecorder:
    """Accumulates named monotonic counters, histograms, and event tallies.

    The canonical output is :meth:`snapshot` — plain dicts of floats and
    ints, JSON-serialisable with exact float round-trips (Python's JSON
    encoder emits ``repr(float)``), which is what makes exact-equality
    golden tests possible.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}
        self.event_counts: dict[str, int] = {}
        self.span_counts: dict[str, int] = {}

    def incr(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (in the counter's own unit) to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one sample into the histogram ``name``."""
        summary = self.histograms.get(name)
        if summary is None:
            summary = HistogramSummary()
            self.histograms[name] = summary
        summary.add(value)

    def event(self, name: str, **fields: object) -> None:
        """Count the event; field payloads are not retained here."""
        self.event_counts[name] = self.event_counts.get(name, 0) + 1

    @contextlib.contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        """Count the span on entry; no timing (snapshots stay deterministic)."""
        self.span_counts[name] = self.span_counts.get(name, 0) + 1
        yield

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def snapshot(self) -> dict[str, object]:
        """Canonical JSON-ready state: sorted dicts of exact values."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histograms[name].to_json()
                for name in sorted(self.histograms)
            },
            "events": {name: self.event_counts[name] for name in sorted(self.event_counts)},
            "spans": {name: self.span_counts[name] for name in sorted(self.span_counts)},
        }

    def merge_snapshot(self, snapshot: dict[str, object]) -> None:
        """Fold a :meth:`snapshot` produced elsewhere into this recorder.

        Exact for everything a snapshot carries: counters and event/span
        tallies add; histograms merge their count/total/min/max monoids
        (:meth:`HistogramSummary.merge`). The process-pool sweep backend
        uses this to account worker-side emissions in the parent — the
        merged state equals what a single shared recorder would have
        accumulated, up to float addition order across workers.
        """
        counters = snapshot.get("counters") or {}
        for name, value in counters.items():
            self.incr(name, float(value))
        histograms = snapshot.get("histograms") or {}
        for name, payload in histograms.items():
            summary = self.histograms.get(name)
            if summary is None:
                summary = HistogramSummary()
                self.histograms[name] = summary
            summary.merge(
                int(payload["count"]),
                float(payload["total"]),
                float(payload["min"]),
                float(payload["max"]),
            )
        events = snapshot.get("events") or {}
        for name, count in events.items():
            self.event_counts[name] = self.event_counts.get(name, 0) + int(count)
        spans = snapshot.get("spans") or {}
        for name, count in spans.items():
            self.span_counts[name] = self.span_counts.get(name, 0) + int(count)


class TraceRecorder:
    """Ordered span/event stream with a JSONL exporter.

    Records are dicts with a monotonically increasing ``seq``. By default
    no wall-clock timestamps are taken — tracing a deterministic
    evaluation yields a deterministic trace — but callers may inject a
    ``clock`` callable (e.g. ``time.perf_counter``) to add a ``t`` field
    in seconds to every record.
    """

    enabled: bool = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        record_observations: bool = False,
    ) -> None:
        self.records: list[dict[str, object]] = []
        self._clock = clock
        self._next_seq = 0
        self._next_span = 0
        self._depth = 0
        #: Histogram observations carry wall-time samples (e.g.
        #: ``sweep.point.wall_seconds``); dropping them by default keeps
        #: the trace of a deterministic run deterministic.
        self.record_observations = record_observations

    def __len__(self) -> int:
        return len(self.records)

    def _append(self, record: dict[str, object]) -> None:
        record["seq"] = self._next_seq
        self._next_seq += 1
        if self._clock is not None:
            record["t"] = float(self._clock())
        self.records.append(record)

    def incr(self, name: str, value: float = 1.0) -> None:
        """Record the counter increment (``value`` in the counter's unit)."""
        self._append({"type": "counter", "name": name, "value": float(value)})

    def observe(self, name: str, value: float) -> None:
        """Record the sample (dropped unless ``record_observations``)."""
        if self.record_observations:
            self._append({"type": "observe", "name": name, "value": float(value)})

    def event(self, name: str, **fields: object) -> None:
        """Record a structured event with its fields."""
        self._append({"type": "event", "name": name, "depth": self._depth,
                      "fields": fields})

    @contextlib.contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        """Bracket a unit of work with span_begin/span_end records."""
        span_id = self._next_span
        self._next_span += 1
        self._append({"type": "span_begin", "name": name, "span": span_id,
                      "depth": self._depth, "fields": fields})
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self._append({"type": "span_end", "name": name, "span": span_id,
                          "depth": self._depth})

    def export_jsonl(self, path: Path | str | None = None) -> str:
        """Serialise the trace as JSON Lines; write to ``path`` if given."""
        text = "\n".join(json.dumps(r, sort_keys=True, default=str) for r in self.records)
        if text:
            text += "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


def merge_snapshot(recorder: Recorder, snapshot: dict[str, object]) -> None:
    """Fold a :meth:`CountersRecorder.snapshot` into any recorder.

    :class:`CountersRecorder` merges exactly (see
    :meth:`CountersRecorder.merge_snapshot`). Other sinks get a
    best-effort replay: counters as single increments, events and spans
    repeated by tally, and each histogram as its min and max samples plus
    ``count - 2`` mean-valued samples — the replayed summary has the same
    count/min/max and a total equal up to float rounding. Disabled
    recorders are left untouched.
    """
    if not recorder.enabled:
        return
    if isinstance(recorder, CountersRecorder):
        recorder.merge_snapshot(snapshot)
        return
    counters = snapshot.get("counters") or {}
    for name, value in counters.items():
        recorder.incr(name, float(value))
    histograms = snapshot.get("histograms") or {}
    for name, payload in histograms.items():
        count = int(payload["count"])
        if count <= 0:
            continue
        minimum = float(payload["min"])
        maximum = float(payload["max"])
        recorder.observe(name, minimum)
        if count >= 2:
            recorder.observe(name, maximum)
        remaining = count - 2
        if remaining > 0:
            filler = (float(payload["total"]) - minimum - maximum) / remaining
            for _ in range(remaining):
                recorder.observe(name, filler)
    events = snapshot.get("events") or {}
    for name, count in events.items():
        for _ in range(int(count)):
            recorder.event(name)
    spans = snapshot.get("spans") or {}
    for name, count in spans.items():
        for _ in range(int(count)):
            with recorder.span(name):
                pass
