"""System profiles: how an SSB deployment places data and threads.

A :class:`SystemProfile` bundles everything the paper varies between its
SSB experiments — storage medium, PMEM-awareness, socket/thread usage,
pinning, hash-index implementation, tuple layout, dimension replication,
dax mode. Profiles for every configuration the paper reports (Hyrise on
PMEM/DRAM, the handcrafted implementation on PMEM/DRAM, the Table 1
optimization ladder, and the traditional SSD setup) are predefined.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.memsim.address import DaxMode
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.topology import MediaKind


class IndexKind(enum.Enum):
    """Hash-index implementation used for joins."""

    DASH = "dash"          # PMEM-optimized, 256 B buckets (handcrafted SSB)
    CHAINED = "chained"    # PMEM-unaware chains of 64 B nodes (Hyrise)


class TupleLayout(enum.Enum):
    """Physical fact-table layout."""

    #: Handcrafted row format: fields aligned to 128 B per tuple, whole
    #: rows scanned regardless of the touched columns (§6.2).
    ROW128 = "row128"
    #: Columnar: scans touch only the referenced columns (Hyrise).
    COLUMNAR = "columnar"


@dataclass(frozen=True)
class SystemProfile:
    """One SSB deployment configuration."""

    name: str
    media: MediaKind
    sockets: int = 1
    threads_per_socket: int = 18
    pinning: PinningPolicy = PinningPolicy.NUMA_REGION
    index_kind: IndexKind = IndexKind.DASH
    tuple_layout: TupleLayout = TupleLayout.ROW128
    #: NUMA-aware data placement: fact striped per socket, each socket's
    #: threads touching only near data. False models the naive 2-socket
    #: step of Table 1 (threads read both sockets' memory).
    numa_aware: bool = True
    #: Dimension tables replicated per socket (avoids far random access).
    replicate_dimensions: bool = True
    dax_mode: DaxMode = DaxMode.DEVDAX
    #: Base tables live on the NVMe SSD; indexes and intermediates in
    #: DRAM (the "traditional OLAP system" of §6.2).
    tables_on_ssd: bool = False
    #: Medium holding the hash indexes and intermediates. ``None`` means
    #: the same as ``media``; setting ``MediaKind.DRAM`` with PMEM base
    #: tables models the hybrid design the paper names as future work
    #: (§9; §5.2: "hybrid designs are essential in future OLAP designs").
    index_media: MediaKind | None = None

    def __post_init__(self) -> None:
        if self.sockets not in (1, 2):
            raise ConfigurationError("profiles model 1- or 2-socket deployments")
        if self.threads_per_socket < 1:
            raise ConfigurationError("need at least one thread per socket")
        if self.tables_on_ssd and self.media is not MediaKind.DRAM:
            raise ConfigurationError(
                "the SSD profile keeps indexes/intermediates in DRAM"
            )
        if self.index_media is MediaKind.SSD:
            raise ConfigurationError("indexes cannot live on the SSD")

    @property
    def effective_index_media(self) -> MediaKind:
        """Medium serving index probes and intermediate writes."""
        if self.tables_on_ssd:
            return MediaKind.DRAM
        if self.index_media is not None:
            return self.index_media
        return self.media

    @property
    def total_threads(self) -> int:
        return self.sockets * self.threads_per_socket

    @property
    def pmem_aware(self) -> bool:
        """PMEM-aware per the paper: Dash index + row-aligned layout."""
        return self.index_kind is IndexKind.DASH

    def with_(self, **changes: object) -> "SystemProfile":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# the paper's configurations
# ---------------------------------------------------------------------------

#: Hyrise (§6.1): columnar, PMEM-unaware chained hash operators, single
#: socket ("Hyrise does not support NUMA-aware allocation ... we run
#: Hyrise on a single socket"), fsdax file storage.
HYRISE_PMEM = SystemProfile(
    name="hyrise-pmem",
    media=MediaKind.PMEM,
    sockets=1,
    threads_per_socket=36,
    pinning=PinningPolicy.NUMA_REGION,
    index_kind=IndexKind.CHAINED,
    tuple_layout=TupleLayout.COLUMNAR,
    replicate_dimensions=False,
    dax_mode=DaxMode.FSDAX,
)

HYRISE_DRAM = HYRISE_PMEM.with_(name="hyrise-dram", media=MediaKind.DRAM)

#: Handcrafted SSB (§6.2): 36 threads pinned to all physical cores of
#: both sockets, fact table shuffled and striped across both sockets'
#: PMEM, dimensions replicated, Dash index, fsdax (Dash needs a
#: filesystem interface), 128 B-aligned row tuples.
HANDCRAFTED_PMEM = SystemProfile(
    name="handcrafted-pmem",
    media=MediaKind.PMEM,
    sockets=2,
    threads_per_socket=18,
    pinning=PinningPolicy.CORES,
    index_kind=IndexKind.DASH,
    tuple_layout=TupleLayout.ROW128,
    numa_aware=True,
    replicate_dimensions=True,
    dax_mode=DaxMode.FSDAX,
)

HANDCRAFTED_DRAM = HANDCRAFTED_PMEM.with_(
    name="handcrafted-dram", media=MediaKind.DRAM
)

#: Hybrid design (the paper's future work, §9): base tables scanned from
#: PMEM (capacity), hash indexes and intermediates in DRAM (random
#: access) — the placement §5.2 motivates ("DRAM scales significantly
#: better when in full use ... hybrid designs are essential").
HYBRID_PMEM_DRAM = HANDCRAFTED_PMEM.with_(
    name="hybrid-pmem-dram", index_media=MediaKind.DRAM
)

#: "Traditional" OLAP (§6.2): tables scanned from the NVMe SSD, hash
#: indexes and intermediates in DRAM.
TRADITIONAL_SSD = SystemProfile(
    name="traditional-ssd",
    media=MediaKind.DRAM,
    sockets=2,
    threads_per_socket=18,
    pinning=PinningPolicy.CORES,
    index_kind=IndexKind.DASH,
    tuple_layout=TupleLayout.ROW128,
    tables_on_ssd=True,
)


def table1_ladder(media: MediaKind) -> tuple[SystemProfile, ...]:
    """The five optimization steps of Table 1 for Q2.1.

    1 Thr -> 18 Thr -> 2-Socket (no NUMA awareness) -> NUMA (aware
    placement, region pinning) -> Pinning (explicit core pinning).
    """
    base = HANDCRAFTED_PMEM if media is MediaKind.PMEM else HANDCRAFTED_DRAM
    return (
        base.with_(name=f"{base.name}-1thr", sockets=1, threads_per_socket=1,
                   pinning=PinningPolicy.NUMA_REGION),
        base.with_(name=f"{base.name}-18thr", sockets=1, threads_per_socket=18,
                   pinning=PinningPolicy.NUMA_REGION),
        base.with_(name=f"{base.name}-2socket", sockets=2, threads_per_socket=18,
                   numa_aware=False, replicate_dimensions=False,
                   pinning=PinningPolicy.NUMA_REGION),
        base.with_(name=f"{base.name}-numa", sockets=2, threads_per_socket=18,
                   numa_aware=True, replicate_dimensions=True,
                   pinning=PinningPolicy.NUMA_REGION),
        base.with_(name=f"{base.name}-pinning", sockets=2, threads_per_socket=18,
                   numa_aware=True, replicate_dimensions=True,
                   pinning=PinningPolicy.CORES),
    )
