"""Query executor: runs SSB queries for real and records their traffic.

Execution strategy (matching the paper's handcrafted implementation):

1. scan the fact table once, applying any flight-1 predicates;
2. for each dimension join, in plan order: probe the dimension's
   persistent hash index with the surviving fact rows' foreign keys,
   unpack/gather the needed dimension attributes, and apply the join's
   dimension predicates on them;
3. group-aggregate, materialising the (keys, measure) intermediate.

Profiles differ in the index implementation (Dash with packed attribute
values vs. a chained index requiring positional gathers), the tuple
layout, and — for the PMEM-unaware profile — per-operator position-list
materialisation. Dash indexes are persistent: they are built once per
executor and their build traffic is reported separately (``build_traffic``),
like the load phase of a real deployment. Chained indexes model Hyrise's
per-query join hash tables, so their build cost lands in the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.obs import Recorder, default_recorder
from repro.ssb.dbgen import SsbDatabase
from repro.ssb.engine import operators
from repro.ssb.engine.operators import JoinIndex
from repro.ssb.engine.traffic import QueryTraffic
from repro.ssb.queries import DimensionJoin, QueryDef
from repro.ssb.storage import IndexKind, SystemProfile


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    query: str
    #: Group key tuples -> summed measure; flight-1 queries have the
    #: single empty key ``()``.
    groups: dict[tuple[int, ...], int]
    #: Fact rows surviving all filters and joins.
    qualifying_rows: int
    traffic: QueryTraffic = field(default_factory=lambda: QueryTraffic(query=""))

    @property
    def scalar(self) -> int:
        """The single aggregate of a flight-1 query."""
        if self.groups and list(self.groups.keys()) != [()]:
            raise QueryError(f"{self.query} is a grouped query")
        return self.groups.get((), 0)

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def _join_attrs(join: DimensionJoin) -> tuple[str, ...]:
    """Dimension attributes a join needs: predicate columns + payload."""
    seen: list[str] = []
    for predicate in join.filters:
        if predicate.column not in seen:
            seen.append(predicate.column)
    for column in join.payload:
        if column not in seen:
            seen.append(column)
    return tuple(seen)


class SsbExecutor:
    """Executes SSB queries over a generated database for one profile."""

    def __init__(self, db: SsbDatabase, profile: SystemProfile) -> None:
        self.db = db
        self.profile = profile
        #: Persistent Dash indexes, keyed by (table, packed attrs).
        self._index_cache: dict[tuple[str, tuple[str, ...]], JoinIndex] = {}
        #: Build traffic of the persistent indexes (the "load phase").
        self.build_traffic = QueryTraffic(query="index-build")

    # ------------------------------------------------------------------

    def _fact_columns_used(self, query: QueryDef) -> list[str]:
        """Fact columns the initial sequential scan must read.

        A pipelined (PMEM-aware) engine carries all needed columns
        through the pipeline, so the scan covers everything. An
        operator-at-a-time engine materialises row-id lists and later
        re-fetches columns by position (charged as gathers), so its scan
        reads only what the first operator chain needs.
        """
        if self.profile.index_kind is IndexKind.CHAINED:
            columns = {p.column for p in query.fact_filters}
            if query.joins:
                columns.add(query.joins[0].fact_key)
            else:
                columns.update(query.aggregate.fact_columns)
            return sorted(columns)
        columns = {p.column for p in query.fact_filters}
        columns.update(join.fact_key for join in query.joins)
        columns.update(query.aggregate.fact_columns)
        return sorted(columns)

    def _dimension_index(
        self, join: DimensionJoin, traffic: QueryTraffic
    ) -> JoinIndex:
        dim = self.db.table(join.table)
        attrs = _join_attrs(join)
        if self.profile.index_kind is IndexKind.DASH:
            key = (join.table, attrs)
            if key not in self._index_cache:
                built = operators.build_dimension_index(
                    dim, join.dim_key, attrs, self.profile
                )
                self._index_cache[key] = built
                self.build_traffic.add(built.build_traffic)
            return self._index_cache[key]
        # Chained (Hyrise): join hash tables are per-query operator state.
        built = operators.build_dimension_index(dim, join.dim_key, (), self.profile)
        traffic.add(built.build_traffic)
        return built

    def execute(
        self, query: QueryDef, *, recorder: Recorder | None = None
    ) -> QueryResult:
        """Run ``query``; returns correct results plus traffic.

        ``recorder`` (default: the process-wide
        :func:`repro.obs.default_recorder`) receives per-operator traffic
        events and the executed byte totals; it never affects the result.
        """
        fact = self.db.lineorder
        traffic = QueryTraffic(query=query.name)
        unaware = self.profile.index_kind is IndexKind.CHAINED

        traffic.add(
            operators.fact_scan_traffic(
                fact, self._fact_columns_used(query), self.profile
            )
        )
        candidate_mask = operators.filter_mask(fact, query.fact_filters)
        candidates = np.nonzero(candidate_mask)[0]
        if unaware and query.fact_filters:
            traffic.add(operators.materialize_positions(len(candidates), "fact-filter"))

        # Payload columns gathered along the join pipeline.
        payload_values: dict[str, np.ndarray] = {}

        for position, join in enumerate(query.joins):
            dim = self.db.table(join.table)
            attrs = _join_attrs(join)
            join_index = self._dimension_index(join, traffic)

            if unaware and position > 0:
                # Operator-at-a-time: the next join's key column is
                # re-fetched by row id from the materialised intermediate.
                traffic.add(
                    operators.fact_gather(
                        len(candidates),
                        float(fact[join.fact_key].nbytes),
                        join.fact_key,
                    )
                )
            fact_keys = fact[join.fact_key][candidates]
            hit, attr_values, probe_records = operators.probe_dimension(
                join_index, fact_keys, dim, attrs
            )
            for record in probe_records:
                traffic.add(record)

            keep_mask, filter_traffic = operators.apply_attr_filters(
                attr_values, join.filters
            )
            if filter_traffic is not None:
                traffic.add(filter_traffic)

            candidates = candidates[hit][keep_mask]
            for name in payload_values:
                payload_values[name] = payload_values[name][hit][keep_mask]
            for column in join.payload:
                payload_values[column] = attr_values[column][keep_mask]
            if unaware:
                traffic.add(
                    operators.materialize_positions(len(candidates), join.table)
                )

        group_columns = []
        for column in query.group_by:
            if column not in payload_values:
                raise QueryError(
                    f"{query.name}: group-by column {column!r} was not "
                    "carried as a join payload"
                )
            group_columns.append(payload_values[column])

        if unaware and query.joins:
            # The measure columns are fetched by row id at the end.
            for column in query.aggregate.fact_columns:
                traffic.add(
                    operators.fact_gather(
                        len(candidates), float(fact[column].nbytes), column
                    )
                )
        measure = query.aggregate.compute(fact.take(candidates))
        intermediate_width = 8 + 4 * len(group_columns)
        grouped, agg_traffic = operators.group_aggregate(
            group_columns, measure, intermediate_width
        )
        traffic.add(agg_traffic)

        rec = recorder if recorder is not None else default_recorder()
        if rec.enabled:
            self._emit(rec, query.name, traffic)

        return QueryResult(
            query=query.name,
            groups=grouped.as_dict(),
            qualifying_rows=int(len(candidates)),
            traffic=traffic,
        )

    @staticmethod
    def _emit(rec: Recorder, query_name: str, traffic: QueryTraffic) -> None:
        """Emit one execution: per-operator events plus byte totals."""
        with rec.span("ssb.exec", query=query_name):
            for operator in traffic.operators:
                rec.event(
                    "ssb.exec.operator",
                    query=query_name,
                    operator=operator.name,
                    seq_read_bytes=operator.seq_read_bytes,
                    random_reads=operator.random_reads,
                    random_read_size=operator.random_read_size,
                    write_bytes=operator.seq_write_bytes
                    + operator.random_write_bytes,
                    cpu_tuples=operator.cpu_tuples,
                )
        rec.incr("ssb.exec.queries_count")
        rec.incr("ssb.exec.seq_read_bytes", traffic.seq_read_bytes)
        rec.incr("ssb.exec.random_requests_count", traffic.random_reads)
        rec.incr("ssb.exec.write_bytes", traffic.write_bytes)
