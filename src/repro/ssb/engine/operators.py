"""Relational operators over numpy columns, with traffic accounting.

Each operator both *does the work* (produces correct numpy results) and
*charges* an :class:`~repro.ssb.engine.traffic.OperatorTraffic` record
describing the memory traffic the operation causes on the modeled
server. CPU weights are relative per-tuple costs (a hash probe costs
more cycles than a predicate compare); the absolute scale is a single
calibrated constant in the cost model.

Join strategy (following the paper's handcrafted implementation, which
uses Dash as *the* index): every dimension carries one persistent hash
index mapping its primary key to the row position, with up to two small
dimension attributes packed into the 64-bit value so that selective
predicates and group keys need no second lookup. A join is then a probe
per candidate fact row followed by a predicate on the unpacked
attributes. The PMEM-unaware profile (Hyrise) instead stores only the
row position and must gather dimension attributes by position — extra
random reads — and materialises a position list between operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.ssb.dbgen import Table
from repro.ssb.engine.traffic import OperatorTraffic
from repro.ssb.hashindex import ChainedIndex, DashIndex
from repro.ssb.queries import Predicate
from repro.ssb.storage import IndexKind, SystemProfile, TupleLayout

#: Relative CPU cost weights per tuple, in units of the cost model's
#: calibrated base (25 ns). Vectorised predicate compares are nearly
#: free; hash probes pay hashing, a fingerprint scan, and (for chains)
#: pointer chasing.
CPU_COMPARE: float = 0.2
CPU_HASH_BUILD: float = 12.0
CPU_HASH_PROBE: float = 12.0
CPU_CHAIN_PROBE: float = 6.0
CPU_AGGREGATE: float = 2.0

#: Packed-value layout: 24-bit row position + two 20-bit attributes.
POSITION_BITS: int = 24
ATTR_BITS: int = 20
MAX_PACKED_ATTRS: int = 2


def fact_scan_traffic(
    fact: Table, columns_used: list[str], profile: SystemProfile
) -> OperatorTraffic:
    """Traffic of the full fact-table scan feeding the query pipeline."""
    if profile.tuple_layout is TupleLayout.ROW128:
        # §6.2: fields aligned to 128 B per tuple; the scan moves whole
        # tuples regardless of which columns the query touches.
        seq_bytes = fact.n_rows * 128
    else:
        seq_bytes = fact.column_bytes(columns_used)
    return OperatorTraffic(
        name="fact-scan",
        seq_read_bytes=float(seq_bytes),
        cpu_tuples=float(fact.n_rows),
        cpu_weight=CPU_COMPARE,
    )


def filter_mask(table: Table, predicates: tuple[Predicate, ...]) -> np.ndarray:
    """Conjunction of predicates as a boolean mask."""
    if not predicates:
        return np.ones(table.n_rows, dtype=bool)
    mask = predicates[0].evaluate(table[predicates[0].column])
    for predicate in predicates[1:]:
        mask &= predicate.evaluate(table[predicate.column])
    return mask


def pack_values(positions: np.ndarray, attrs: list[np.ndarray]) -> np.ndarray:
    """Pack a row position plus up to two small attributes into int64."""
    if len(attrs) > MAX_PACKED_ATTRS:
        raise QueryError(f"cannot pack {len(attrs)} attributes (max {MAX_PACKED_ATTRS})")
    if positions.size and int(positions.max()) >= (1 << POSITION_BITS):
        raise QueryError("row position exceeds the 24-bit packed range")
    packed = positions.astype(np.int64)
    shift = POSITION_BITS
    for attr in attrs:
        values = attr.astype(np.int64)
        if values.size and (int(values.min()) < 0 or int(values.max()) >= (1 << ATTR_BITS)):
            raise QueryError("attribute exceeds the 20-bit packed range")
        packed |= values << shift
        shift += ATTR_BITS
    return packed


def unpack_values(packed: np.ndarray, n_attrs: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Inverse of :func:`pack_values`."""
    if n_attrs > MAX_PACKED_ATTRS:
        raise QueryError(f"cannot unpack {n_attrs} attributes")
    positions = packed & ((1 << POSITION_BITS) - 1)
    attrs = []
    shift = POSITION_BITS
    for _ in range(n_attrs):
        attrs.append((packed >> shift) & ((1 << ATTR_BITS) - 1))
        shift += ATTR_BITS
    return positions, attrs


@dataclass
class JoinIndex:
    """A persistent dimension index plus its packing metadata."""

    table: str
    index: DashIndex | ChainedIndex
    packed_attrs: tuple[str, ...]
    build_traffic: OperatorTraffic

    @property
    def memory_bytes(self) -> int:
        """Footprint of the dimension index in bytes."""
        return self.index.memory_bytes


def build_dimension_index(
    dim: Table,
    key_column: str,
    attrs: tuple[str, ...],
    profile: SystemProfile,
) -> JoinIndex:
    """Build the per-dimension hash index over *all* rows.

    DASH packs the given attributes into the value (probe-then-filter
    needs no second access); CHAINED stores only the position, modeling
    an index that must be followed by positional gathers.
    """
    keys = dim[key_column].astype(np.int64)
    positions = np.arange(len(keys), dtype=np.int64)
    if profile.index_kind is IndexKind.DASH:
        values = pack_values(positions, [dim[a] for a in attrs])
        index: DashIndex | ChainedIndex = DashIndex()
        index.bulk_insert(keys, values, assume_unique=True)
        write_bytes = float(index.stats.write_bytes)
        read_bytes = float(index.stats.build_read_bytes)
        access = index.stats.access_size
        packed: tuple[str, ...] = attrs
    elif profile.index_kind is IndexKind.CHAINED:
        index = ChainedIndex(expected_size=max(len(keys), 1))
        index.bulk_insert(keys, positions)
        write_bytes = float(index.stats.write_bytes)
        read_bytes = 0.0
        access = index.stats.access_size
        packed = ()
    else:
        raise QueryError(f"unknown index kind {profile.index_kind}")
    traffic = OperatorTraffic(
        name=f"build-index({dim.spec.name})",
        random_reads=read_bytes / access,
        random_read_size=access,
        random_write_bytes=write_bytes,
        cpu_tuples=float(len(keys)),
        cpu_weight=CPU_HASH_BUILD,
    )
    traffic.random_region_bytes = float(index.memory_bytes)
    traffic.region_table = dim.spec.name
    return JoinIndex(
        table=dim.spec.name, index=index, packed_attrs=packed, build_traffic=traffic
    )


def probe_dimension(
    join_index: JoinIndex,
    fact_keys: np.ndarray,
    dim: Table,
    needed_attrs: tuple[str, ...],
) -> tuple[np.ndarray, dict[str, np.ndarray], list[OperatorTraffic]]:
    """Probe the index and produce the needed dimension attributes.

    Returns ``(hit_mask, {attr: values for hits}, traffic records)``.
    With packed attributes (DASH) the probe alone suffices; otherwise the
    attributes are gathered by row position — random reads into the
    dimension's column storage.
    """
    index = join_index.index
    before_probes = index.stats.probes
    before_bytes = index.stats.read_bytes
    raw = index.bulk_probe(fact_keys.astype(np.int64), missing=-1)
    hit = raw >= 0
    reads = (index.stats.read_bytes - before_bytes) / index.stats.access_size
    probe_weight = (
        CPU_HASH_PROBE if isinstance(index, DashIndex) else CPU_CHAIN_PROBE
    )
    records = [
        OperatorTraffic(
            name=f"probe({join_index.table})",
            random_reads=float(reads),
            random_read_size=index.stats.access_size,
            cpu_tuples=float(index.stats.probes - before_probes),
            cpu_weight=probe_weight,
            random_region_bytes=float(join_index.memory_bytes),
            region_table=join_index.table,
        )
    ]

    attrs: dict[str, np.ndarray] = {}
    hits = raw[hit]
    if join_index.packed_attrs:
        _, unpacked = unpack_values(hits, len(join_index.packed_attrs))
        for name, values in zip(join_index.packed_attrs, unpacked):
            attrs[name] = values
        missing = [a for a in needed_attrs if a not in attrs]
        if missing:
            raise QueryError(
                f"index on {join_index.table} lacks packed attrs {missing}"
            )
    elif needed_attrs:
        positions = hits
        for name in needed_attrs:
            attrs[name] = dim[name][positions].astype(np.int64)
        records.append(
            OperatorTraffic(
                name=f"gather({join_index.table})",
                random_reads=float(len(positions) * len(needed_attrs)),
                random_read_size=64,
                cpu_tuples=float(len(positions)),
                cpu_weight=CPU_COMPARE,
                random_region_bytes=float(dim.column_bytes()),
                region_table=join_index.table,
            )
        )
    return hit, attrs, records


def apply_attr_filters(
    attrs: dict[str, np.ndarray], predicates: tuple[Predicate, ...]
) -> tuple[np.ndarray, OperatorTraffic | None]:
    """Apply the join's dimension predicates on the fetched attributes."""
    if not predicates:
        return (
            np.ones(len(next(iter(attrs.values()))) if attrs else 0, dtype=bool),
            None,
        )
    mask = predicates[0].evaluate(attrs[predicates[0].column])
    for predicate in predicates[1:]:
        mask &= predicate.evaluate(attrs[predicate.column])
    traffic = OperatorTraffic(
        name="dim-filter",
        cpu_tuples=float(len(mask)) * len(predicates),
        cpu_weight=CPU_COMPARE,
    )
    return mask, traffic


def fact_gather(rows: int, column_bytes: float, label: str) -> OperatorTraffic:
    """Positional gather of a fact column (PMEM-unaware engines only).

    Operator-at-a-time engines re-fetch fact columns by row id after each
    materialised intermediate, producing random 64 B reads into the huge
    fact region — the paper's explanation for Hyrise's PMEM penalty.
    """
    return OperatorTraffic(
        name=f"fact-gather({label})",
        random_reads=float(rows),
        random_read_size=64,
        cpu_tuples=float(rows),
        cpu_weight=CPU_COMPARE,
        random_region_bytes=float(column_bytes),
        region_table="lineorder",
    )


def materialize_positions(rows: int, label: str) -> OperatorTraffic:
    """Charge a per-operator position-list materialisation (Hyrise-style).

    PMEM-unaware engines write every operator's output row-id list to the
    storage medium and re-read it in the next operator (§6.1: "all tables
    and intermediates are stored either completely in PMEM or in DRAM").
    """
    bytes_ = float(rows * 8)
    return OperatorTraffic(
        name=f"materialize({label})",
        seq_write_bytes=bytes_,
        seq_read_bytes=bytes_,
        cpu_tuples=float(rows),
        cpu_weight=CPU_COMPARE,
    )


@dataclass
class GroupedResult:
    """Materialised group-by result: key tuples -> summed measure."""

    keys: list[tuple[int, ...]]
    sums: np.ndarray

    def as_dict(self) -> dict[tuple[int, ...], int]:
        return {k: int(v) for k, v in zip(self.keys, self.sums)}

    @property
    def n_groups(self) -> int:
        return len(self.keys)


def group_aggregate(
    group_columns: list[np.ndarray],
    measure: np.ndarray,
    intermediate_width: int,
) -> tuple[GroupedResult, OperatorTraffic]:
    """SUM ``measure`` grouped by the key columns.

    Charges the materialisation the paper describes for QF2-4: the
    (key, measure) intermediate is written out once and read back by the
    aggregation.
    """
    n = len(measure)
    if any(len(col) != n for col in group_columns):
        raise QueryError("group columns must align with the measure")
    if n == 0:
        empty = GroupedResult(keys=[], sums=np.empty(0, dtype=np.int64))
        return empty, OperatorTraffic(name="aggregate", cpu_tuples=0.0)
    if group_columns:
        stacked = np.stack([c.astype(np.int64) for c in group_columns], axis=1)
        uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
        sums = np.zeros(len(uniques), dtype=np.int64)
        np.add.at(sums, inverse, measure.astype(np.int64))
        result = GroupedResult(
            keys=[tuple(int(x) for x in row) for row in uniques], sums=sums
        )
    else:
        result = GroupedResult(
            keys=[()], sums=np.asarray([measure.astype(np.int64).sum()])
        )
    intermediate_bytes = float(n * intermediate_width)
    traffic = OperatorTraffic(
        name="aggregate",
        seq_read_bytes=intermediate_bytes,
        seq_write_bytes=intermediate_bytes,
        cpu_tuples=float(n),
        cpu_weight=CPU_AGGREGATE,
    )
    return result, traffic
