"""Operator-level memory-traffic accounting.

The executor runs each query for real (on numpy columns) and records,
per operator, the memory traffic that execution would cause on the
modeled server: sequential scan bytes, random index probes (count and
granularity), intermediate writes, and per-tuple CPU work. The cost
model then prices this traffic with :mod:`repro.memsim` for a given
system profile — which is how one execution yields PMEM, DRAM, and SSD
runtimes at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError


@dataclass
class OperatorTraffic:
    """Traffic of one operator instance (one scan, one join, ...)."""

    name: str
    #: Sequentially scanned bytes (table columns / row chunks).
    seq_read_bytes: float = 0.0
    #: Number of random reads (hash probes, chain hops, ...).
    random_reads: float = 0.0
    #: Granularity of those random reads, bytes.
    random_read_size: int = 64
    #: Sequentially written bytes (materialised intermediates).
    seq_write_bytes: float = 0.0
    #: Randomly written bytes (hash-table build traffic).
    random_write_bytes: float = 0.0
    #: Tuples processed (drives the CPU-time term).
    cpu_tuples: float = 0.0
    #: Relative CPU weight per tuple (hashing is pricier than comparing).
    cpu_weight: float = 1.0
    #: Size of the region the random reads land in (e.g. the hash-table
    #: footprint) — DRAM random bandwidth and LLC residency depend on it.
    random_region_bytes: float = 0.0
    #: Table backing the random-read region, for scale extrapolation
    #: (dimension tables do not all grow linearly with the scale factor).
    region_table: str | None = None

    @property
    def random_read_bytes(self) -> float:
        """Bytes fetched by this operator's random reads."""
        return self.random_reads * self.random_read_size

    def scaled(
        self, factor: float, region_factors: dict[str, float] | None = None
    ) -> "OperatorTraffic":
        """Linearly scaled copy (extrapolating to a larger scale factor).

        ``region_factors`` maps table names to the growth of *their*
        cardinality between the measured and target scale factors — the
        part table grows logarithmically and the date table not at all,
        so their index regions must not be scaled by the fact ratio.
        """
        if factor <= 0:
            raise QueryError("scale factor ratio must be positive")
        region_factor = factor
        if region_factors is not None and self.region_table is not None:
            region_factor = region_factors.get(self.region_table, factor)
        return OperatorTraffic(
            name=self.name,
            seq_read_bytes=self.seq_read_bytes * factor,
            random_reads=self.random_reads * factor,
            random_read_size=self.random_read_size,
            seq_write_bytes=self.seq_write_bytes * factor,
            random_write_bytes=self.random_write_bytes * factor,
            cpu_tuples=self.cpu_tuples * factor,
            cpu_weight=self.cpu_weight,
            random_region_bytes=self.random_region_bytes * region_factor,
            region_table=self.region_table,
        )


@dataclass
class QueryTraffic:
    """All operator traffic of one query execution."""

    query: str
    operators: list[OperatorTraffic] = field(default_factory=list)

    def add(self, operator: OperatorTraffic) -> None:
        self.operators.append(operator)

    @property
    def seq_read_bytes(self) -> float:
        """Bytes read sequentially across all operators."""
        return sum(op.seq_read_bytes for op in self.operators)

    @property
    def random_reads(self) -> float:
        return sum(op.random_reads for op in self.operators)

    @property
    def random_read_bytes(self) -> float:
        """Bytes fetched by random reads across all operators."""
        return sum(op.random_read_bytes for op in self.operators)

    @property
    def write_bytes(self) -> float:
        """Bytes written (sequential + random) across all operators."""
        return sum(op.seq_write_bytes + op.random_write_bytes for op in self.operators)

    @property
    def cpu_tuples(self) -> float:
        return sum(op.cpu_tuples * op.cpu_weight for op in self.operators)

    @property
    def total_bytes(self) -> float:
        """All bytes the query moves to or from memory."""
        return self.seq_read_bytes + self.random_read_bytes + self.write_bytes

    def scaled(
        self, factor: float, region_factors: dict[str, float] | None = None
    ) -> "QueryTraffic":
        """Extrapolate every operator linearly (selectivities are scale-
        invariant in SSB, so traffic grows linearly with the fact table);
        random-read regions grow with their own table's cardinality."""
        scaled = QueryTraffic(query=self.query)
        scaled.operators = [op.scaled(factor, region_factors) for op in self.operators]
        return scaled

    def describe(self) -> str:
        lines = [f"traffic of {self.query}:"]
        for op in self.operators:
            lines.append(
                f"  {op.name:<24} seq_read={op.seq_read_bytes / 1e6:9.1f}MB "
                f"rand={op.random_reads / 1e3:8.1f}k x {op.random_read_size}B "
                f"write={(op.seq_write_bytes + op.random_write_bytes) / 1e6:7.1f}MB "
                f"cpu={op.cpu_tuples / 1e3:9.1f}k tuples"
            )
        return "\n".join(lines)
