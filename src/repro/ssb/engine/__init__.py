"""Columnar SSB query engine with traffic instrumentation."""

from repro.ssb.engine.executor import QueryResult, SsbExecutor
from repro.ssb.engine.traffic import OperatorTraffic, QueryTraffic

__all__ = ["OperatorTraffic", "QueryResult", "QueryTraffic", "SsbExecutor"]
