"""Hash indexes: the PMEM-optimized Dash and the PMEM-unaware baseline."""

from repro.ssb.hashindex.chained import ChainedIndex, ChainStats
from repro.ssb.hashindex.dash import BUCKET_SLOTS, DashIndex, ProbeStats

__all__ = [
    "BUCKET_SLOTS",
    "ChainStats",
    "ChainedIndex",
    "DashIndex",
    "ProbeStats",
]
