"""PMEM-unaware chained hash index (the Hyrise stand-in baseline).

A textbook separate-chaining hash table: an array of bucket heads and a
node pool, every node one 64 B cache line holding (key, value, next).
Probes walk a pointer chain of *dependent* 64 B random reads — exactly
the access pattern the paper identifies as the reason Hyrise loses 5.3x
on PMEM ("hash-operations take over 90% of the execution time ...
Hyrise's PMEM-unaware hash index implementation performs worse in PMEM
than in DRAM", §6.1).

Like :class:`~repro.ssb.hashindex.dash.DashIndex`, every operation is
instrumented with the traffic it would cause; the cost model prices the
two indexes with the same memsim random-access curves, so the Dash
advantage on PMEM *emerges* from access sizes and dependent-read counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memsim.constants import CACHE_LINE

_EMPTY: int = -1


@dataclass
class ChainStats:
    """Accumulated traffic caused by chained-hash operations."""

    probes: int = 0
    node_reads: int = 0
    node_writes: int = 0

    @property
    def read_bytes(self) -> int:
        """Bytes read while probing (one 64-byte line per node visit)."""
        return self.node_reads * CACHE_LINE

    @property
    def write_bytes(self) -> int:
        """Bytes written while building (one 64-byte line per node)."""
        return self.node_writes * CACHE_LINE

    @property
    def reads_per_probe(self) -> float:
        if self.probes == 0:
            return 0.0
        return self.node_reads / self.probes

    @property
    def access_size(self) -> int:
        """Granularity of one index access — a 64 B node."""
        return CACHE_LINE


class ChainedIndex:
    """Separate-chaining hash table over a contiguous node pool."""

    def __init__(self, expected_size: int = 16) -> None:
        if expected_size < 1:
            raise ConfigurationError("expected size must be >= 1")
        self._n_buckets = max(8, 1 << (expected_size - 1).bit_length())
        self._heads = np.full(self._n_buckets, _EMPTY, dtype=np.int64)
        capacity = max(expected_size, 8)
        self._keys = np.empty(capacity, dtype=np.int64)
        self._values = np.empty(capacity, dtype=np.int64)
        self._next = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self.stats = ChainStats()

    def __len__(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        return self._n_buckets

    @property
    def memory_bytes(self) -> int:
        """Footprint in bytes: head array plus one 64-byte line per node."""
        return self._n_buckets * 8 + self._size * CACHE_LINE

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        h = keys.astype(np.uint64, copy=True)
        h = (h * np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        h ^= h >> np.uint64(29)
        return (h % np.uint64(self._n_buckets)).astype(np.int64)

    def _grow_pool(self, needed: int) -> None:
        capacity = len(self._keys)
        if self._size + needed <= capacity:
            return
        new_capacity = max(capacity * 2, self._size + needed)
        for name in ("_keys", "_values", "_next"):
            old = getattr(self, name)
            grown = np.empty(new_capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    # -- operations ------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Prepend a node to the key's chain (no dedup, like a join build)."""
        self._grow_pool(1)
        bucket = int(self._bucket_of(np.asarray([key], dtype=np.int64))[0])
        idx = self._size
        self._keys[idx] = key
        self._values[idx] = value
        self._next[idx] = self._heads[bucket]
        self._heads[bucket] = idx
        self._size += 1
        self.stats.node_writes += 1

    def bulk_insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Vectorised chain prepend of many records."""
        if len(keys) != len(values):
            raise ConfigurationError("keys and values must align")
        n = len(keys)
        if n == 0:
            return
        self._grow_pool(n)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        buckets = self._bucket_of(keys)
        start = self._size
        idx = np.arange(start, start + n, dtype=np.int64)
        self._keys[start : start + n] = keys
        self._values[start : start + n] = values
        # Prepend preserving per-bucket order: later records become heads.
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_idx = idx[order]
        boundaries = np.nonzero(np.diff(sorted_buckets))[0]
        group_starts = np.concatenate(([0], boundaries + 1))
        group_ends = np.concatenate((boundaries, [n - 1]))
        for gs, ge in zip(group_starts, group_ends):
            bucket = int(sorted_buckets[gs])
            chain = sorted_idx[gs : ge + 1]
            prev = self._heads[bucket]
            for node in chain:
                self._next[node] = prev
                prev = node
            self._heads[bucket] = prev
        self._size += n
        self.stats.node_writes += n

    def get(self, key: int, default: int | None = None) -> int:
        """Walk the chain; each hop is one dependent 64 B read."""
        self.stats.probes += 1
        bucket = int(self._bucket_of(np.asarray([key], dtype=np.int64))[0])
        node = int(self._heads[bucket])
        while node != _EMPTY:
            self.stats.node_reads += 1
            if self._keys[node] == key:
                return int(self._values[node])
            node = int(self._next[node])
        if default is not None:
            return default
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        return self.get(key, default=_EMPTY - 1) != _EMPTY - 1

    def bulk_probe(self, keys: np.ndarray, missing: int = -1) -> np.ndarray:
        """Vectorised chain walking: one round per chain hop."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = len(keys)
        out = np.full(n, missing, dtype=np.int64)
        if n == 0:
            return out
        self.stats.probes += n
        node = self._heads[self._bucket_of(keys)]
        active = node != _EMPTY
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = node[idx]
            self.stats.node_reads += int(idx.size)
            hit = self._keys[current] == keys[idx]
            if np.any(hit):
                out[idx[hit]] = self._values[current[hit]]
            advance = ~hit
            node[idx[hit]] = _EMPTY
            node[idx[advance]] = self._next[current[advance]]
            active = node != _EMPTY
        return out

    @property
    def average_chain_length(self) -> float:
        """Mean nodes per non-empty bucket (diagnostics for tests)."""
        occupied = int(np.count_nonzero(self._heads != _EMPTY))
        if occupied == 0:
            return 0.0
        return self._size / occupied
