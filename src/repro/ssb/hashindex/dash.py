"""Dash-like PMEM-optimized hash index (Lu et al., VLDB 2020).

The paper's handcrafted SSB uses Dash, a segmented extendible hash table
designed around Optane's 256 B access granularity: every probe touches
one (rarely two) 256 B buckets, fingerprints avoid key comparisons, and
a small per-segment stash absorbs overflow without chains.

This implementation keeps Dash's structure — a directory of segments,
each segment an array of 256 B buckets plus stash buckets, fingerprint-
filtered probing of a target bucket and its neighbour, balanced
insertion, and segment splits with directory doubling — and instruments
every operation with the PMEM line traffic it would cause, which the SSB
cost model prices via :mod:`repro.memsim`.

Single-key ``insert``/``get`` follow the structure literally; the bulk
paths used by the query engine vectorise the same probe sequence with
numpy (grouped by segment) and report identical traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.memsim.constants import OPTANE_LINE

#: Slots per 256 B bucket: 14 records of (fingerprint + key/value refs),
#: matching Dash's bucket layout.
BUCKET_SLOTS: int = 14

#: Regular buckets per segment.
BUCKETS_PER_SEGMENT: int = 64

#: Stash buckets per segment.
STASH_BUCKETS: int = 4

_EMPTY: int = -(2**62)


def _mix(keys: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser over int64 keys (vectorised)."""
    h = keys.astype(np.uint64, copy=True)
    h = (h + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(30)
    h = (h * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(27)
    h = (h * np.uint64(0x94D049BB133111EB)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    h ^= h >> np.uint64(31)
    return h


@dataclass
class ProbeStats:
    """Accumulated PMEM traffic caused by index operations.

    Build-phase traffic (``build_reads``/``bucket_writes``) is kept
    separate from probe-phase traffic so the cost model can price index
    construction and join probing independently.
    """

    probes: int = 0
    bucket_reads: int = 0
    stash_reads: int = 0
    build_reads: int = 0
    bucket_writes: int = 0

    @property
    def read_bytes(self) -> int:
        """Bytes read while probing (one 256-byte XPLine per bucket)."""
        return (self.bucket_reads + self.stash_reads) * OPTANE_LINE

    @property
    def build_read_bytes(self) -> int:
        """Bytes read while building, in 256-byte XPLines."""
        return self.build_reads * OPTANE_LINE

    @property
    def write_bytes(self) -> int:
        """Bytes written, in 256-byte XPLines."""
        return self.bucket_writes * OPTANE_LINE

    @property
    def reads_per_probe(self) -> float:
        if self.probes == 0:
            return 0.0
        return (self.bucket_reads + self.stash_reads) / self.probes

    @property
    def access_size(self) -> int:
        """Granularity of one index access — a 256 B bucket."""
        return OPTANE_LINE


class _Segment:
    """One Dash segment: 64 regular buckets + 4 stash buckets."""

    __slots__ = ("local_depth", "keys", "values", "fps", "stash_keys", "stash_values")

    def __init__(self, local_depth: int) -> None:
        self.local_depth = local_depth
        shape = (BUCKETS_PER_SEGMENT, BUCKET_SLOTS)
        self.keys = np.full(shape, _EMPTY, dtype=np.int64)
        self.values = np.zeros(shape, dtype=np.int64)
        self.fps = np.zeros(shape, dtype=np.uint8)
        stash = STASH_BUCKETS * BUCKET_SLOTS
        self.stash_keys = np.full(stash, _EMPTY, dtype=np.int64)
        self.stash_values = np.zeros(stash, dtype=np.int64)

    def records(self) -> list[tuple[int, int]]:
        """All (key, value) pairs stored in the segment."""
        out: list[tuple[int, int]] = []
        mask = self.keys != _EMPTY
        for k, v in zip(self.keys[mask], self.values[mask]):
            out.append((int(k), int(v)))
        mask = self.stash_keys != _EMPTY
        for k, v in zip(self.stash_keys[mask], self.stash_values[mask]):
            out.append((int(k), int(v)))
        return out

    @property
    def load(self) -> int:
        return int(np.count_nonzero(self.keys != _EMPTY)) + int(
            np.count_nonzero(self.stash_keys != _EMPTY)
        )


class DashIndex:
    """Segmented extendible hash with 256 B buckets and stash overflow."""

    def __init__(self, initial_depth: int = 1) -> None:
        if initial_depth < 0:
            raise ConfigurationError("initial depth must be >= 0")
        self.global_depth = initial_depth
        segments = [_Segment(initial_depth) for _ in range(2**initial_depth)]
        self._directory: list[_Segment] = segments
        self.stats = ProbeStats()
        self._size = 0

    # -- hashing -------------------------------------------------------

    def _hash(self, key: int) -> int:
        return int(_mix(np.asarray([key], dtype=np.int64))[0])

    def _segment_index(self, h: int) -> int:
        if self.global_depth == 0:
            return 0
        return h >> (64 - self.global_depth)

    @staticmethod
    def _bucket_index(h: int) -> int:
        return (h >> 8) % BUCKETS_PER_SEGMENT

    @staticmethod
    def _fingerprint(h: int) -> int:
        return (h & 0xFF) or 1  # fingerprint 0 is reserved for "empty"

    # -- public size/metadata ------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def segment_count(self) -> int:
        return len(set(id(s) for s in self._directory))

    @property
    def memory_bytes(self) -> int:
        """Approximate PMEM footprint in bytes: buckets are 256-byte lines."""
        return self.segment_count * (BUCKETS_PER_SEGMENT + STASH_BUCKETS) * OPTANE_LINE

    # -- single-key operations ------------------------------------------

    def insert(self, key: int, value: int, assume_new: bool = False) -> None:
        """Insert or overwrite ``key``.

        Probe order mirrors Dash: target bucket, neighbour bucket
        (balanced insertion into the less-loaded of the two), then the
        stash; a full stash splits the segment. ``assume_new`` skips the
        overwrite lookup (safe when keys are known unique, e.g. building
        a join table over dimension primary keys).
        """
        for _ in range(64):  # split attempts are bounded
            if self._try_insert(key, value, assume_new):
                return
            self._split(self._segment_index(self._hash(key)))
        raise SimulationError("DashIndex: unbounded split loop")

    def _try_insert(self, key: int, value: int, assume_new: bool = False) -> bool:
        h = self._hash(key)
        segment = self._directory[self._segment_index(h)]
        b = self._bucket_index(h)
        nb = (b + 1) % BUCKETS_PER_SEGMENT
        fp = self._fingerprint(h)
        # Overwrite if present; Dash filters by fingerprint before the
        # key comparison, still costing one bucket read per hop.
        if not assume_new:
            for bucket in (b, nb):
                self.stats.build_reads += 1
                slot = np.nonzero(segment.keys[bucket] == key)[0]
                if slot.size:
                    segment.values[bucket, slot[0]] = value
                    self.stats.bucket_writes += 1
                    return True
            stash_hit = np.nonzero(segment.stash_keys == key)[0]
            if stash_hit.size:
                self.stats.build_reads += 1
                segment.stash_values[stash_hit[0]] = value
                self.stats.bucket_writes += 1
                return True
        # Balanced insertion: less-loaded of target/neighbour bucket.
        free_b = np.nonzero(segment.keys[b] == _EMPTY)[0]
        free_nb = np.nonzero(segment.keys[nb] == _EMPTY)[0]
        self.stats.build_reads += 1
        if free_b.size or free_nb.size:
            if free_b.size >= free_nb.size:
                bucket, slot = b, free_b[0]
            else:
                bucket, slot = nb, free_nb[0]
            segment.keys[bucket, slot] = key
            segment.values[bucket, slot] = value
            segment.fps[bucket, slot] = fp
            self.stats.bucket_writes += 1
            self._size += 1
            return True
        stash_free = np.nonzero(segment.stash_keys == _EMPTY)[0]
        if stash_free.size:
            segment.stash_keys[stash_free[0]] = key
            segment.stash_values[stash_free[0]] = value
            self.stats.build_reads += 1
            self.stats.bucket_writes += 1
            self._size += 1
            return True
        return False

    def _split(self, directory_slot: int) -> None:
        """Split the segment behind ``directory_slot`` (Dash-style)."""
        old = self._directory[directory_slot]
        if old.local_depth == self.global_depth:
            self._directory = [s for s in self._directory for _ in range(2)]
            self.global_depth += 1
        depth = old.local_depth + 1
        left = _Segment(depth)
        right = _Segment(depth)
        # Rewire every directory slot that pointed at the old segment.
        for i, seg in enumerate(self._directory):
            if seg is old:
                prefix_bit = (i >> (self.global_depth - depth)) & 1
                self._directory[i] = right if prefix_bit else left
        self._size -= old.load
        for key, value in old.records():
            self._reinsert(key, value)

    def _reinsert(self, key: int, value: int) -> None:
        if not self._try_insert(key, value, assume_new=True):
            # Exceedingly unlikely right after a split; recurse safely.
            self._split(self._segment_index(self._hash(key)))
            self._reinsert(key, value)

    def get(self, key: int, default: int | None = None) -> int:
        """Look up ``key``; raise ``KeyError`` when absent and no default."""
        h = self._hash(key)
        segment = self._directory[self._segment_index(h)]
        b = self._bucket_index(h)
        fp = self._fingerprint(h)
        self.stats.probes += 1
        for bucket in (b, (b + 1) % BUCKETS_PER_SEGMENT):
            self.stats.bucket_reads += 1
            candidates = np.nonzero(
                (segment.fps[bucket] == fp) & (segment.keys[bucket] == key)
            )[0]
            if candidates.size:
                return int(segment.values[bucket, candidates[0]])
        self.stats.stash_reads += 1
        hit = np.nonzero(segment.stash_keys == key)[0]
        if hit.size:
            return int(segment.stash_values[hit[0]])
        if default is not None:
            return default
        raise KeyError(key)

    def __contains__(self, key: int) -> bool:
        return self.get(key, default=_EMPTY) != _EMPTY

    # -- bulk operations (used by the query engine) ----------------------

    def bulk_insert(
        self, keys: np.ndarray, values: np.ndarray, assume_unique: bool = True
    ) -> None:
        """Insert many records (loops the single-key path; splits work).

        ``assume_unique`` (the default) skips per-key overwrite lookups —
        correct for join builds over dimension primary keys.
        """
        if len(keys) != len(values):
            raise ConfigurationError("keys and values must align")
        for key, value in zip(keys.tolist(), values.tolist()):
            self.insert(int(key), int(value), assume_new=assume_unique)

    def bulk_probe(self, keys: np.ndarray, missing: int = -1) -> np.ndarray:
        """Vectorised probe of many keys; traffic charged like singles.

        Returns the value per key, ``missing`` where absent. Grouped by
        segment so each group's buckets are gathered with one fancy
        index; the probe sequence (bucket, neighbour, stash) and the
        charged line reads match the scalar path.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = len(keys)
        out = np.full(n, missing, dtype=np.int64)
        if n == 0:
            return out
        h = _mix(keys)
        if self.global_depth == 0:
            seg_idx = np.zeros(n, dtype=np.int64)
        else:
            seg_idx = (h >> np.uint64(64 - self.global_depth)).astype(np.int64)
        bucket_idx = ((h >> np.uint64(8)) % np.uint64(BUCKETS_PER_SEGMENT)).astype(
            np.int64
        )
        fp = (h & np.uint64(0xFF)).astype(np.uint8)
        fp = np.where(fp == 0, np.uint8(1), fp)

        self.stats.probes += n
        for s in np.unique(seg_idx):
            segment = self._directory[int(s)]
            in_seg = np.nonzero(seg_idx == s)[0]
            seg_keys = keys[in_seg]
            seg_buckets = bucket_idx[in_seg]
            found = np.zeros(len(in_seg), dtype=bool)
            for hop in (0, 1):
                buckets = (seg_buckets + hop) % BUCKETS_PER_SEGMENT
                # First bucket read is charged for everyone still probing;
                # the neighbour read only for unresolved keys.
                pending = ~found
                self.stats.bucket_reads += int(np.count_nonzero(pending))
                rows_keys = segment.keys[buckets]           # (m, SLOTS)
                match = (rows_keys == seg_keys[:, None]) & pending[:, None]
                hit_rows, hit_slots = np.nonzero(match)
                if hit_rows.size:
                    out[in_seg[hit_rows]] = segment.values[
                        buckets[hit_rows], hit_slots
                    ]
                    found[hit_rows] = True
                if found.all():
                    break
            pending = np.nonzero(~found)[0]
            if pending.size:
                self.stats.stash_reads += int(pending.size)
                stash_match = segment.stash_keys[None, :] == seg_keys[pending][:, None]
                rows, slots = np.nonzero(stash_match)
                if rows.size:
                    out[in_seg[pending[rows]]] = segment.stash_values[slots]
        return out
