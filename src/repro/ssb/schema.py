"""Star Schema Benchmark table schemas (O'Neil et al., TPCTC 2009).

One fact table (``lineorder``) and four dimension tables (``date``,
``customer``, ``supplier``, ``part``). String-valued attributes with
small vocabularies (region, nation, city, brand, ...) are dictionary-
encoded as integer codes — both because the engine is columnar/numpy and
because that is what real column stores (including Hyrise) do.

Cardinalities follow the SSB specification:

* lineorder: ``sf * 6,000,000`` rows;
* customer: ``sf * 30,000``; supplier: ``sf * 2,000``;
* part: ``200,000 * (1 + floor(log2(sf)))`` for sf >= 1, scaled down
  proportionally below sf 1;
* date: 2,556 rows (7 years, 1992-01-01 .. 1998-12-31).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError

#: Dictionary vocabularies shared by the generator and the queries.
REGIONS: tuple[str, ...] = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: 25 nations, 5 per region (SSB inherits TPC-H's nation list).
NATIONS: tuple[str, ...] = (
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",          # AFRICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",          # AMERICA
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",                 # ASIA
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",        # EUROPE
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",                 # MIDDLE EAST
)

#: Cities: ten per nation, "<nation prefix><digit>" per the SSB spec.
CITIES_PER_NATION: int = 10

#: Manufacturers MFGR#1 .. MFGR#5.
MFGR_COUNT: int = 5
#: Categories MFGR#11 .. MFGR#55 (5 per manufacturer).
CATEGORIES_PER_MFGR: int = 5
#: Brands: 40 per category, MFGR#<cat><1..40>.
BRANDS_PER_CATEGORY: int = 40

DATE_ROWS: int = 2556
FIRST_YEAR: int = 1992
LAST_YEAR: int = 1998


def nation_of_region(region_code: int) -> list[int]:
    """Nation codes belonging to a region code."""
    if not 0 <= region_code < len(REGIONS):
        raise SchemaError(f"invalid region code {region_code}")
    return list(range(region_code * 5, region_code * 5 + 5))


def region_of_nation(nation_code: int) -> int:
    if not 0 <= nation_code < len(NATIONS):
        raise SchemaError(f"invalid nation code {nation_code}")
    return nation_code // 5


def city_code(nation_code: int, city_index: int) -> int:
    """City codes are dense: nation * 10 + index."""
    if not 0 <= city_index < CITIES_PER_NATION:
        raise SchemaError(f"invalid city index {city_index}")
    return nation_code * CITIES_PER_NATION + city_index


def city_name(code: int) -> str:
    """Human-readable city label, e.g. 'UNITED KI5'."""
    nation = NATIONS[code // CITIES_PER_NATION]
    return f"{nation[:9]:9s}{code % CITIES_PER_NATION}".replace(" ", " ")


def brand_code(mfgr: int, category: int, brand: int) -> int:
    """Dense brand1 code from 1-based mfgr/category/brand indices."""
    if not (1 <= mfgr <= MFGR_COUNT and 1 <= category <= CATEGORIES_PER_MFGR
            and 1 <= brand <= BRANDS_PER_CATEGORY):
        raise SchemaError(f"invalid brand triple ({mfgr},{category},{brand})")
    category_code = (mfgr - 1) * CATEGORIES_PER_MFGR + (category - 1)
    return category_code * BRANDS_PER_CATEGORY + (brand - 1)


def brand_name(code: int) -> str:
    """Render a brand code as the spec's 'MFGR#<cat><brand>' label."""
    category_code, brand = divmod(code, BRANDS_PER_CATEGORY)
    mfgr, category = divmod(category_code, CATEGORIES_PER_MFGR)
    return f"MFGR#{mfgr + 1}{category + 1}{brand + 1}"


def category_name(code: int) -> str:
    mfgr, category = divmod(code, CATEGORIES_PER_MFGR)
    return f"MFGR#{mfgr + 1}{category + 1}"


@dataclass(frozen=True)
class ColumnSpec:
    """One column: a name, a numpy dtype, and its width in bytes."""

    name: str
    dtype: str

    @property
    def width(self) -> int:
        return np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class TableSpec:
    """Schema of one SSB table."""

    name: str
    columns: tuple[ColumnSpec, ...]

    def column(self, name: str) -> ColumnSpec:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def row_width(self) -> int:
        """Packed row width in bytes (columnar widths summed)."""
        return sum(c.width for c in self.columns)


LINEORDER = TableSpec(
    "lineorder",
    (
        ColumnSpec("lo_orderkey", "int64"),
        ColumnSpec("lo_linenumber", "int8"),
        ColumnSpec("lo_custkey", "int32"),
        ColumnSpec("lo_partkey", "int32"),
        ColumnSpec("lo_suppkey", "int32"),
        ColumnSpec("lo_orderdate", "int32"),       # yyyymmdd date key
        ColumnSpec("lo_orderpriority", "int8"),
        ColumnSpec("lo_shippriority", "int8"),
        ColumnSpec("lo_quantity", "int8"),
        ColumnSpec("lo_extendedprice", "int32"),
        ColumnSpec("lo_ordtotalprice", "int32"),
        ColumnSpec("lo_discount", "int8"),
        ColumnSpec("lo_revenue", "int32"),
        ColumnSpec("lo_supplycost", "int32"),
        ColumnSpec("lo_tax", "int8"),
        ColumnSpec("lo_commitdate", "int32"),
        ColumnSpec("lo_shipmode", "int8"),
    ),
)

DATE = TableSpec(
    "date",
    (
        ColumnSpec("d_datekey", "int32"),          # yyyymmdd
        ColumnSpec("d_dayofweek", "int8"),
        ColumnSpec("d_month", "int8"),
        ColumnSpec("d_year", "int16"),
        ColumnSpec("d_yearmonthnum", "int32"),     # yyyymm
        ColumnSpec("d_daynuminweek", "int8"),
        ColumnSpec("d_daynuminmonth", "int8"),
        ColumnSpec("d_daynuminyear", "int16"),
        ColumnSpec("d_monthnuminyear", "int8"),
        ColumnSpec("d_weeknuminyear", "int8"),
        ColumnSpec("d_sellingseason", "int8"),
        ColumnSpec("d_lastdayinweekfl", "int8"),
        ColumnSpec("d_holidayfl", "int8"),
        ColumnSpec("d_weekdayfl", "int8"),
    ),
)

CUSTOMER = TableSpec(
    "customer",
    (
        ColumnSpec("c_custkey", "int32"),
        ColumnSpec("c_city", "int16"),
        ColumnSpec("c_nation", "int8"),
        ColumnSpec("c_region", "int8"),
        ColumnSpec("c_mktsegment", "int8"),
    ),
)

SUPPLIER = TableSpec(
    "supplier",
    (
        ColumnSpec("s_suppkey", "int32"),
        ColumnSpec("s_city", "int16"),
        ColumnSpec("s_nation", "int8"),
        ColumnSpec("s_region", "int8"),
    ),
)

PART = TableSpec(
    "part",
    (
        ColumnSpec("p_partkey", "int32"),
        ColumnSpec("p_mfgr", "int8"),
        ColumnSpec("p_category", "int8"),
        ColumnSpec("p_brand1", "int16"),
        ColumnSpec("p_color", "int8"),
        ColumnSpec("p_size", "int8"),
    ),
)

ALL_TABLES: tuple[TableSpec, ...] = (LINEORDER, DATE, CUSTOMER, SUPPLIER, PART)


def table_spec(name: str) -> TableSpec:
    for spec in ALL_TABLES:
        if spec.name == name:
            return spec
    raise SchemaError(f"unknown SSB table: {name!r}")


def lineorder_rows(scale_factor: float) -> int:
    """Fact-table cardinality for a scale factor (sf 1 = 6M rows)."""
    if scale_factor <= 0:
        raise SchemaError("scale factor must be positive")
    return int(round(scale_factor * 6_000_000))


def customer_rows(scale_factor: float) -> int:
    if scale_factor <= 0:
        raise SchemaError("scale factor must be positive")
    return max(1, int(round(scale_factor * 30_000)))


def supplier_rows(scale_factor: float) -> int:
    if scale_factor <= 0:
        raise SchemaError("scale factor must be positive")
    return max(1, int(round(scale_factor * 2_000)))


def part_rows(scale_factor: float) -> int:
    """Part grows logarithmically per the SSB spec."""
    if scale_factor <= 0:
        raise SchemaError("scale factor must be positive")
    if scale_factor < 1:
        return max(1, int(round(200_000 * scale_factor)))
    return int(200_000 * (1 + math.floor(math.log2(scale_factor))))
