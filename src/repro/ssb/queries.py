"""The thirteen SSB queries (O'Neil et al.), as declarative plans.

Queries are grouped into four flights. Flight 1 filters the fact table
directly (discount/quantity bands) and restricts by date; flights 2-4
join the fact table with two or three dimensions and group-aggregate.
String constants from the SQL text are translated to the dictionary
codes of :mod:`repro.ssb.schema`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.ssb import schema


class PredicateOp(enum.Enum):
    EQ = "eq"
    BETWEEN = "between"
    IN = "in"
    LT = "lt"
    LE = "le"


@dataclass(frozen=True)
class Predicate:
    """One column predicate with dictionary-coded operands."""

    column: str
    op: PredicateOp
    value: object

    def evaluate(self, column_values):
        """Boolean mask over a numpy column."""
        import numpy as np

        if self.op is PredicateOp.EQ:
            return column_values == self.value
        if self.op is PredicateOp.BETWEEN:
            lo, hi = self.value  # type: ignore[misc]
            return (column_values >= lo) & (column_values <= hi)
        if self.op is PredicateOp.IN:
            return np.isin(column_values, list(self.value))  # type: ignore[arg-type]
        if self.op is PredicateOp.LT:
            return column_values < self.value
        if self.op is PredicateOp.LE:
            return column_values <= self.value
        raise QueryError(f"unsupported predicate op: {self.op}")


@dataclass(frozen=True)
class DimensionJoin:
    """Join of the fact table with one (filtered) dimension."""

    table: str
    fact_key: str
    dim_key: str
    filters: tuple[Predicate, ...] = ()
    #: Dimension columns carried into grouping.
    payload: tuple[str, ...] = ()


@dataclass(frozen=True)
class Aggregate:
    """The aggregate expression of a query (always a SUM in SSB)."""

    expression: str  # "extendedprice*discount" | "revenue" | "revenue-supplycost"

    def compute(self, fact):
        """Evaluate over a (filtered) lineorder table; returns int64 array."""
        import numpy as np

        if self.expression == "extendedprice*discount":
            return fact["lo_extendedprice"].astype(np.int64) * fact[
                "lo_discount"
            ].astype(np.int64)
        if self.expression == "revenue":
            return fact["lo_revenue"].astype(np.int64)
        if self.expression == "revenue-supplycost":
            return fact["lo_revenue"].astype(np.int64) - fact["lo_supplycost"].astype(
                np.int64
            )
        raise QueryError(f"unsupported aggregate: {self.expression}")

    @property
    def fact_columns(self) -> tuple[str, ...]:
        if self.expression == "extendedprice*discount":
            return ("lo_extendedprice", "lo_discount")
        if self.expression == "revenue":
            return ("lo_revenue",)
        if self.expression == "revenue-supplycost":
            return ("lo_revenue", "lo_supplycost")
        raise QueryError(f"unsupported aggregate: {self.expression}")


@dataclass(frozen=True)
class QueryDef:
    """One SSB query: fact filters, ordered joins, grouping, aggregate."""

    name: str
    flight: int
    aggregate: Aggregate
    fact_filters: tuple[Predicate, ...] = ()
    joins: tuple[DimensionJoin, ...] = ()
    group_by: tuple[str, ...] = ()
    description: str = ""
    #: The query's original SQL (O'Neil et al.), kept as reference so the
    #: declarative plan can be audited against the benchmark definition.
    sql: str = ""

    def join_for(self, table: str) -> DimensionJoin:
        for join in self.joins:
            if join.table == table:
                return join
        raise QueryError(f"{self.name} does not join {table!r}")


# ---------------------------------------------------------------------------
# constant translation helpers
# ---------------------------------------------------------------------------

def region(name: str) -> int:
    try:
        return schema.REGIONS.index(name)
    except ValueError:
        raise QueryError(f"unknown region {name!r}") from None


def nation(name: str) -> int:
    try:
        return schema.NATIONS.index(name)
    except ValueError:
        raise QueryError(f"unknown nation {name!r}") from None


def city(label: str) -> int:
    """'UNITED KI1' -> city code (nation prefix + trailing digit)."""
    prefix, digit = label[:-1].rstrip(), label[-1]
    if not digit.isdigit():
        raise QueryError(f"city label {label!r} must end in a digit")
    for code, name in enumerate(schema.NATIONS):
        if name[:9].rstrip() == prefix:
            return schema.city_code(code, int(digit))
    raise QueryError(f"no nation matches city prefix {prefix!r}")


def brand(label: str) -> int:
    """'MFGR#2239' -> brand1 code."""
    if not label.startswith("MFGR#") or len(label) < 8:
        raise QueryError(f"malformed brand label {label!r}")
    digits = label[5:]
    mfgr, category, brand_num = int(digits[0]), int(digits[1]), int(digits[2:])
    return schema.brand_code(mfgr, category, brand_num)


def category(label: str) -> int:
    """'MFGR#12' -> category code."""
    if not label.startswith("MFGR#") or len(label) != 7:
        raise QueryError(f"malformed category label {label!r}")
    mfgr, cat = int(label[5]), int(label[6])
    if not (1 <= mfgr <= schema.MFGR_COUNT and 1 <= cat <= schema.CATEGORIES_PER_MFGR):
        raise QueryError(f"category label {label!r} out of range")
    return (mfgr - 1) * schema.CATEGORIES_PER_MFGR + (cat - 1)


def mfgr(label: str) -> int:
    """'MFGR#2' -> manufacturer number (1-based, as stored)."""
    if not label.startswith("MFGR#") or len(label) != 6:
        raise QueryError(f"malformed mfgr label {label!r}")
    return int(label[5])


# ---------------------------------------------------------------------------
# the thirteen queries
# ---------------------------------------------------------------------------

def _date_join(*filters: Predicate, payload: tuple[str, ...] = ()) -> DimensionJoin:
    return DimensionJoin(
        table="date",
        fact_key="lo_orderdate",
        dim_key="d_datekey",
        filters=tuple(filters),
        payload=payload,
    )


_Q1_AGG = Aggregate("extendedprice*discount")
_REV = Aggregate("revenue")
_PROFIT = Aggregate("revenue-supplycost")

ALL_QUERIES: tuple[QueryDef, ...] = (
    QueryDef(
        name="Q1.1", flight=1, aggregate=_Q1_AGG,
        fact_filters=(
            Predicate("lo_discount", PredicateOp.BETWEEN, (1, 3)),
            Predicate("lo_quantity", PredicateOp.LT, 25),
        ),
        joins=(_date_join(Predicate("d_year", PredicateOp.EQ, 1993)),),
        description="revenue delta of 1993 discount band",
        sql="""\
select sum(lo_extendedprice*lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_year = 1993
  and lo_discount between 1 and 3 and lo_quantity < 25;""",
    ),
    QueryDef(
        name="Q1.2", flight=1, aggregate=_Q1_AGG,
        fact_filters=(
            Predicate("lo_discount", PredicateOp.BETWEEN, (4, 6)),
            Predicate("lo_quantity", PredicateOp.BETWEEN, (26, 35)),
        ),
        joins=(_date_join(Predicate("d_yearmonthnum", PredicateOp.EQ, 199401)),),
        description="revenue delta of January 1994",
        sql="""\
select sum(lo_extendedprice*lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_yearmonthnum = 199401
  and lo_discount between 4 and 6 and lo_quantity between 26 and 35;""",
    ),
    QueryDef(
        name="Q1.3", flight=1, aggregate=_Q1_AGG,
        fact_filters=(
            Predicate("lo_discount", PredicateOp.BETWEEN, (5, 7)),
            Predicate("lo_quantity", PredicateOp.BETWEEN, (26, 35)),
        ),
        joins=(
            _date_join(
                Predicate("d_weeknuminyear", PredicateOp.EQ, 6),
                Predicate("d_year", PredicateOp.EQ, 1994),
            ),
        ),
        description="revenue delta of week 6 of 1994",
        sql="""\
select sum(lo_extendedprice*lo_discount) as revenue
from lineorder, date
where lo_orderdate = d_datekey and d_weeknuminyear = 6 and d_year = 1994
  and lo_discount between 5 and 7 and lo_quantity between 26 and 35;""",
    ),
    QueryDef(
        name="Q2.1", flight=2, aggregate=_REV,
        joins=(
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(Predicate("p_category", PredicateOp.EQ, category("MFGR#12")),),
                payload=("p_brand1",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("AMERICA")),),
            ),
            _date_join(payload=("d_year",)),
        ),
        group_by=("d_year", "p_brand1"),
        description="revenue by year and brand for category MFGR#12 / AMERICA",
        sql="""\
select sum(lo_revenue), d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey and p_category = 'MFGR#12'
  and s_region = 'AMERICA'
group by d_year, p_brand1 order by d_year, p_brand1;""",
    ),
    QueryDef(
        name="Q2.2", flight=2, aggregate=_REV,
        joins=(
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(
                    Predicate(
                        "p_brand1", PredicateOp.BETWEEN,
                        (brand("MFGR#2221"), brand("MFGR#2228")),
                    ),
                ),
                payload=("p_brand1",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("ASIA")),),
            ),
            _date_join(payload=("d_year",)),
        ),
        group_by=("d_year", "p_brand1"),
        description="revenue for brand band MFGR#2221-2228 / ASIA",
        sql="""\
select sum(lo_revenue), d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey
  and p_brand1 between 'MFGR#2221' and 'MFGR#2228'
  and s_region = 'ASIA'
group by d_year, p_brand1 order by d_year, p_brand1;""",
    ),
    QueryDef(
        name="Q2.3", flight=2, aggregate=_REV,
        joins=(
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(Predicate("p_brand1", PredicateOp.EQ, brand("MFGR#2239")),),
                payload=("p_brand1",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("EUROPE")),),
            ),
            _date_join(payload=("d_year",)),
        ),
        group_by=("d_year", "p_brand1"),
        description="revenue for brand MFGR#2239 / EUROPE",
        sql="""\
select sum(lo_revenue), d_year, p_brand1
from lineorder, date, part, supplier
where lo_orderdate = d_datekey and lo_partkey = p_partkey
  and lo_suppkey = s_suppkey and p_brand1 = 'MFGR#2239'
  and s_region = 'EUROPE'
group by d_year, p_brand1 order by d_year, p_brand1;""",
    ),
    QueryDef(
        name="Q3.1", flight=3, aggregate=_REV,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(Predicate("c_region", PredicateOp.EQ, region("ASIA")),),
                payload=("c_nation",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("ASIA")),),
                payload=("s_nation",),
            ),
            _date_join(
                Predicate("d_year", PredicateOp.BETWEEN, (1992, 1997)),
                payload=("d_year",),
            ),
        ),
        group_by=("c_nation", "s_nation", "d_year"),
        description="intra-ASIA revenue by nation pair and year",
        sql="""\
select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey and c_region = 'ASIA'
  and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997
group by c_nation, s_nation, d_year
order by d_year asc, revenue desc;""",
    ),
    QueryDef(
        name="Q3.2", flight=3, aggregate=_REV,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(
                    Predicate("c_nation", PredicateOp.EQ, nation("UNITED STATES")),
                ),
                payload=("c_city",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(
                    Predicate("s_nation", PredicateOp.EQ, nation("UNITED STATES")),
                ),
                payload=("s_city",),
            ),
            _date_join(
                Predicate("d_year", PredicateOp.BETWEEN, (1992, 1997)),
                payload=("d_year",),
            ),
        ),
        group_by=("c_city", "s_city", "d_year"),
        description="US revenue by city pair and year",
        sql="""\
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey and c_nation = 'UNITED STATES'
  and s_nation = 'UNITED STATES' and d_year >= 1992 and d_year <= 1997
group by c_city, s_city, d_year
order by d_year asc, revenue desc;""",
    ),
    QueryDef(
        name="Q3.3", flight=3, aggregate=_REV,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(
                    Predicate(
                        "c_city", PredicateOp.IN,
                        (city("UNITED KI1"), city("UNITED KI5")),
                    ),
                ),
                payload=("c_city",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(
                    Predicate(
                        "s_city", PredicateOp.IN,
                        (city("UNITED KI1"), city("UNITED KI5")),
                    ),
                ),
                payload=("s_city",),
            ),
            _date_join(
                Predicate("d_year", PredicateOp.BETWEEN, (1992, 1997)),
                payload=("d_year",),
            ),
        ),
        group_by=("c_city", "s_city", "d_year"),
        description="two-city revenue by city pair and year",
        sql="""\
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
  and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
  and d_year >= 1992 and d_year <= 1997
group by c_city, s_city, d_year
order by d_year asc, revenue desc;""",
    ),
    QueryDef(
        name="Q3.4", flight=3, aggregate=_REV,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(
                    Predicate(
                        "c_city", PredicateOp.IN,
                        (city("UNITED KI1"), city("UNITED KI5")),
                    ),
                ),
                payload=("c_city",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(
                    Predicate(
                        "s_city", PredicateOp.IN,
                        (city("UNITED KI1"), city("UNITED KI5")),
                    ),
                ),
                payload=("s_city",),
            ),
            _date_join(
                Predicate("d_yearmonthnum", PredicateOp.EQ, 199712),
                payload=("d_year",),
            ),
        ),
        group_by=("c_city", "s_city", "d_year"),
        description="two-city revenue in December 1997",
        sql="""\
select c_city, s_city, d_year, sum(lo_revenue) as revenue
from customer, lineorder, supplier, date
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_orderdate = d_datekey
  and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
  and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
  and d_yearmonth = 'Dec1997'
group by c_city, s_city, d_year
order by d_year asc, revenue desc;""",
    ),
    QueryDef(
        name="Q4.1", flight=4, aggregate=_PROFIT,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(Predicate("c_region", PredicateOp.EQ, region("AMERICA")),),
                payload=("c_nation",),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("AMERICA")),),
            ),
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(
                    Predicate("p_mfgr", PredicateOp.IN, (mfgr("MFGR#1"), mfgr("MFGR#2"))),
                ),
            ),
            _date_join(payload=("d_year",)),
        ),
        group_by=("d_year", "c_nation"),
        description="profit in AMERICA for MFGR#1/2 by year and nation",
        sql="""\
select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_region = 'AMERICA'
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, c_nation order by d_year, c_nation;""",
    ),
    QueryDef(
        name="Q4.2", flight=4, aggregate=_PROFIT,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(Predicate("c_region", PredicateOp.EQ, region("AMERICA")),),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(Predicate("s_region", PredicateOp.EQ, region("AMERICA")),),
                payload=("s_nation",),
            ),
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(
                    Predicate("p_mfgr", PredicateOp.IN, (mfgr("MFGR#1"), mfgr("MFGR#2"))),
                ),
                payload=("p_category",),
            ),
            _date_join(
                Predicate("d_year", PredicateOp.IN, (1997, 1998)),
                payload=("d_year",),
            ),
        ),
        group_by=("d_year", "s_nation", "p_category"),
        description="profit drill-down into 1997-1998 by supplier nation",
        sql="""\
select d_year, s_nation, p_category,
       sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_region = 'AMERICA'
  and (d_year = 1997 or d_year = 1998)
  and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
group by d_year, s_nation, p_category
order by d_year, s_nation, p_category;""",
    ),
    QueryDef(
        name="Q4.3", flight=4, aggregate=_PROFIT,
        joins=(
            DimensionJoin(
                "customer", "lo_custkey", "c_custkey",
                filters=(Predicate("c_region", PredicateOp.EQ, region("AMERICA")),),
            ),
            DimensionJoin(
                "supplier", "lo_suppkey", "s_suppkey",
                filters=(
                    Predicate("s_nation", PredicateOp.EQ, nation("UNITED STATES")),
                ),
                payload=("s_city",),
            ),
            DimensionJoin(
                "part", "lo_partkey", "p_partkey",
                filters=(
                    Predicate("p_category", PredicateOp.EQ, category("MFGR#14")),
                ),
                payload=("p_brand1",),
            ),
            _date_join(
                Predicate("d_year", PredicateOp.IN, (1997, 1998)),
                payload=("d_year",),
            ),
        ),
        group_by=("d_year", "s_city", "p_brand1"),
        description="profit drill-down to US cities and brands",
        sql="""\
select d_year, s_city, p_brand1,
       sum(lo_revenue - lo_supplycost) as profit
from date, customer, supplier, part, lineorder
where lo_custkey = c_custkey and lo_suppkey = s_suppkey
  and lo_partkey = p_partkey and lo_orderdate = d_datekey
  and c_region = 'AMERICA' and s_nation = 'UNITED STATES'
  and (d_year = 1997 or d_year = 1998) and p_category = 'MFGR#14'
group by d_year, s_city, p_brand1
order by d_year, s_city, p_brand1;""",
    ),
)


def get_query(name: str) -> QueryDef:
    for query in ALL_QUERIES:
        if query.name == name:
            return query
    raise QueryError(f"unknown SSB query {name!r}; valid: Q1.1 .. Q4.3")


def flight(number: int) -> tuple[QueryDef, ...]:
    if number not in (1, 2, 3, 4):
        raise QueryError(f"SSB has query flights 1-4, not {number}")
    return tuple(q for q in ALL_QUERIES if q.flight == number)
