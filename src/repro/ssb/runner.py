"""SSB experiment runner: Figures 14a/14b, Table 1, and the SSD contrast.

Queries execute once per *engine configuration* (index kind + layout +
awareness — the things that change the recorded traffic) on a small
generated database; the traffic is then priced for each media/placement
profile at the paper's scale factors. This mirrors the reproduction's
core design: one real execution, many priced deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, MediaKind
from repro.ssb.costmodel import CostBreakdown, SsbCostModel
from repro.ssb.dbgen import SsbDatabase, generate
from repro.ssb.engine import SsbExecutor
from repro.ssb.queries import ALL_QUERIES, QueryDef, get_query
from repro.ssb.storage import (
    HANDCRAFTED_DRAM,
    HANDCRAFTED_PMEM,
    HYRISE_DRAM,
    HYRISE_PMEM,
    TRADITIONAL_SSD,
    SystemProfile,
    table1_ladder,
)

#: Scale factor used for the real executions feeding the cost model.
DEFAULT_MEASURED_SF: float = 0.05


@dataclass
class SsbRun:
    """Per-query predicted runtimes for one profile."""

    profile: SystemProfile
    target_sf: float
    breakdowns: dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def seconds(self) -> dict[str, float]:
        """Predicted runtime in seconds per query name."""
        return {name: b.seconds for name, b in self.breakdowns.items()}

    @property
    def average_seconds(self) -> float:
        """Mean query runtime in seconds across the run."""
        if not self.breakdowns:
            raise ConfigurationError("run holds no queries")
        return sum(b.seconds for b in self.breakdowns.values()) / len(self.breakdowns)

    def flight_seconds(self, flight: int) -> float:
        """Total runtime in seconds of one SSB query flight."""
        names = [q.name for q in ALL_QUERIES if q.flight == flight]
        return sum(self.breakdowns[n].seconds for n in names if n in self.breakdowns)


class SsbRunner:
    """Executes and prices the SSB for arbitrary profiles."""

    def __init__(
        self,
        measured_sf: float = DEFAULT_MEASURED_SF,
        model: BandwidthModel | None = None,
        db: SsbDatabase | None = None,
        seed: int = 2021,
    ) -> None:
        self.measured_sf = measured_sf
        self.db = db if db is not None else generate(measured_sf, seed=seed)
        self.cost_model = SsbCostModel(model=model)
        #: Traffic cache keyed by engine configuration.
        self._traffic: dict[tuple, dict[str, object]] = {}

    def _engine_key(self, profile: SystemProfile) -> tuple:
        return (profile.index_kind, profile.tuple_layout)

    def _traffic_for(self, profile: SystemProfile, queries: tuple[QueryDef, ...]):
        key = self._engine_key(profile)
        cached = self._traffic.setdefault(key, {})
        missing = [q for q in queries if q.name not in cached]
        if missing:
            executor = SsbExecutor(self.db, profile)
            for query in missing:
                cached[query.name] = executor.execute(query).traffic
        return {q.name: cached[q.name] for q in queries}

    def _region_factors(self, target_sf: float) -> dict[str, float]:
        """Per-table cardinality growth from the measured to target sf."""
        from repro.ssb import schema

        m = self.measured_sf
        return {
            "lineorder": target_sf / m,
            "customer": schema.customer_rows(target_sf) / schema.customer_rows(m),
            "supplier": schema.supplier_rows(target_sf) / schema.supplier_rows(m),
            "part": schema.part_rows(target_sf) / schema.part_rows(m),
            "date": 1.0,
        }

    def run(
        self,
        profile: SystemProfile,
        target_sf: float = 100.0,
        queries: tuple[QueryDef, ...] = ALL_QUERIES,
    ) -> SsbRun:
        """Predict per-query runtimes for ``profile`` at ``target_sf``."""
        if target_sf <= 0:
            raise ConfigurationError("target scale factor must be positive")
        ratio = target_sf / self.measured_sf
        region_factors = self._region_factors(target_sf)
        traffic = self._traffic_for(profile, queries)
        run = SsbRun(profile=profile, target_sf=target_sf)
        for query in queries:
            run.breakdowns[query.name] = self.cost_model.price(
                traffic[query.name],
                profile,
                scale_ratio=ratio,
                region_factors=region_factors,
            )
        return run

    # ------------------------------------------------------------------
    # the paper's experiments
    # ------------------------------------------------------------------

    def figure14a(self) -> dict[str, SsbRun]:
        """Hyrise SSB at sf 50, PMEM vs DRAM (Fig. 14a)."""
        return {
            "pmem": self.run(HYRISE_PMEM, target_sf=50.0),
            "dram": self.run(HYRISE_DRAM, target_sf=50.0),
        }

    def figure14b(self) -> dict[str, SsbRun]:
        """Handcrafted SSB at sf 100, PMEM vs DRAM (Fig. 14b)."""
        return {
            "pmem": self.run(HANDCRAFTED_PMEM, target_sf=100.0),
            "dram": self.run(HANDCRAFTED_DRAM, target_sf=100.0),
        }

    def table1(self) -> dict[str, dict[str, float]]:
        """The Q2.1 optimization ladder (Table 1), PMEM and DRAM."""
        query = (get_query("Q2.1"),)
        steps = ("1 Thr.", "18 Thr.", "2-Socket", "NUMA", "Pinning")
        out: dict[str, dict[str, float]] = {}
        for media in (MediaKind.PMEM, MediaKind.DRAM):
            ladder = table1_ladder(media)
            row: dict[str, float] = {}
            for step, profile in zip(steps, ladder):
                run = self.run(profile, target_sf=100.0, queries=query)
                row[step] = run.breakdowns["Q2.1"].seconds
            out[media.value] = row
        return out

    def q21_on_ssd(self) -> float:
        """Q2.1 on the traditional NVMe-SSD deployment (§6.2)."""
        run = self.run(TRADITIONAL_SSD, target_sf=100.0, queries=(get_query("Q2.1"),))
        return run.breakdowns["Q2.1"].seconds


def slowdown(pmem: SsbRun, dram: SsbRun) -> dict[str, float]:
    """Per-query PMEM/DRAM runtime ratios."""
    return {
        name: pmem.breakdowns[name].seconds / dram.breakdowns[name].seconds
        for name in pmem.breakdowns
    }


def average_slowdown(pmem: SsbRun, dram: SsbRun) -> float:
    ratios = slowdown(pmem, dram)
    return sum(ratios.values()) / len(ratios)
