"""SSB data generator (the reproduction's ``dbgen``).

Generates all five tables at a given scale factor with numpy, matching
the SSB specification's cardinalities, key ranges, and uniform value
distributions. Fully deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchemaError
from repro.ssb import schema
from repro.ssb.schema import (
    BRANDS_PER_CATEGORY,
    CATEGORIES_PER_MFGR,
    CITIES_PER_NATION,
    DATE_ROWS,
    FIRST_YEAR,
    MFGR_COUNT,
    NATIONS,
    TableSpec,
)

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


@dataclass
class Table:
    """One generated table: a schema plus named numpy columns."""

    spec: TableSpec
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = set(self.spec.column_names())
        got = set(self.columns)
        if expected != got:
            raise SchemaError(
                f"table {self.spec.name!r}: columns {sorted(got)} do not "
                f"match schema {sorted(expected)}"
            )
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"table {self.spec.name!r}: ragged columns {lengths}")

    def __len__(self) -> int:
        return len(next(iter(self.columns.values())))

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.spec.name!r} has no column {name!r}"
            ) from None

    @property
    def n_rows(self) -> int:
        return len(self)

    def column_bytes(self, names: list[str] | None = None) -> int:
        """Total bytes of the named columns (all columns by default)."""
        names = names if names is not None else self.spec.column_names()
        return sum(self[n].nbytes for n in names)

    def take(self, mask_or_index: np.ndarray) -> "Table":
        """Row subset as a new table (mask or integer index array)."""
        return Table(
            spec=self.spec,
            columns={name: col[mask_or_index] for name, col in self.columns.items()},
        )


@dataclass
class SsbDatabase:
    """The five generated tables plus their scale factor."""

    scale_factor: float
    lineorder: Table
    date: Table
    customer: Table
    supplier: Table
    part: Table

    def table(self, name: str) -> Table:
        try:
            return getattr(self, name)
        except AttributeError:
            raise SchemaError(f"unknown SSB table: {name!r}") from None

    @property
    def total_bytes(self) -> int:
        """Total size of all table columns in bytes."""
        return sum(
            self.table(t.name).column_bytes() for t in schema.ALL_TABLES
        )


def _date_parts() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(year, month, day) arrays for the 7-year SSB calendar.

    The SSB calendar ignores leap years (7 * 365 + 1 padding day is not
    modeled; the canonical 2,556 rows are 7 * 365 + 1, which the spec
    attributes to the leap days of 1992 and 1996 minus one terminal day —
    we generate exactly 2,556 rows with leap days in 1992 and 1996).
    """
    years, months, days = [], [], []
    for year in range(FIRST_YEAR, FIRST_YEAR + 7):
        leap = year % 4 == 0
        for month in range(1, 13):
            dim = _DAYS_IN_MONTH[month - 1] + (1 if leap and month == 2 else 0)
            for day in range(1, dim + 1):
                years.append(year)
                months.append(month)
                days.append(day)
    # The calendar has 2,557 days (two leap days); the canonical SSB date
    # table has 2,556 rows, so the terminal day (1998-12-31) is dropped.
    return (
        np.asarray(years[:DATE_ROWS], dtype=np.int16),
        np.asarray(months[:DATE_ROWS], dtype=np.int8),
        np.asarray(days[:DATE_ROWS], dtype=np.int16),
    )


def generate_date() -> Table:
    """The fixed 2,556-row date dimension."""
    year, month, day = _date_parts()
    n = len(year)
    if n != DATE_ROWS:
        raise SchemaError(f"date dimension generated {n} rows, expected {DATE_ROWS}")
    datekey = year.astype(np.int32) * 10000 + month.astype(np.int32) * 100 + day
    day_in_year = np.zeros(n, dtype=np.int16)
    start = 0
    for y in range(FIRST_YEAR, FIRST_YEAR + 7):
        span = np.count_nonzero(year == y)
        day_in_year[start : start + span] = np.arange(1, span + 1)
        start += span
    day_of_week = (np.arange(n) + 2) % 7  # 1992-01-01 was a Wednesday
    columns = {
        "d_datekey": datekey,
        "d_dayofweek": day_of_week.astype(np.int8),
        "d_month": month,
        "d_year": year,
        "d_yearmonthnum": (year.astype(np.int32) * 100 + month).astype(np.int32),
        "d_daynuminweek": (day_of_week + 1).astype(np.int8),
        "d_daynuminmonth": day.astype(np.int8),
        "d_daynuminyear": day_in_year,
        "d_monthnuminyear": month,
        "d_weeknuminyear": ((day_in_year - 1) // 7 + 1).astype(np.int8),
        "d_sellingseason": ((month - 1) // 3).astype(np.int8),
        "d_lastdayinweekfl": (day_of_week == 6).astype(np.int8),
        "d_holidayfl": ((month == 12) & (day > 24)).astype(np.int8),
        "d_weekdayfl": (day_of_week < 5).astype(np.int8),
    }
    return Table(spec=schema.DATE, columns=columns)


def generate_customer(scale_factor: float, rng: np.random.Generator) -> Table:
    n = schema.customer_rows(scale_factor)
    nation = rng.integers(0, len(NATIONS), size=n, dtype=np.int8)
    city = nation.astype(np.int16) * CITIES_PER_NATION + rng.integers(
        0, CITIES_PER_NATION, size=n, dtype=np.int16
    )
    return Table(
        spec=schema.CUSTOMER,
        columns={
            "c_custkey": np.arange(1, n + 1, dtype=np.int32),
            "c_city": city,
            "c_nation": nation,
            "c_region": (nation // 5).astype(np.int8),
            "c_mktsegment": rng.integers(0, 5, size=n, dtype=np.int8),
        },
    )


def generate_supplier(scale_factor: float, rng: np.random.Generator) -> Table:
    n = schema.supplier_rows(scale_factor)
    nation = rng.integers(0, len(NATIONS), size=n, dtype=np.int8)
    city = nation.astype(np.int16) * CITIES_PER_NATION + rng.integers(
        0, CITIES_PER_NATION, size=n, dtype=np.int16
    )
    return Table(
        spec=schema.SUPPLIER,
        columns={
            "s_suppkey": np.arange(1, n + 1, dtype=np.int32),
            "s_city": city,
            "s_nation": nation,
            "s_region": (nation // 5).astype(np.int8),
        },
    )


def generate_part(scale_factor: float, rng: np.random.Generator) -> Table:
    n = schema.part_rows(scale_factor)
    mfgr = rng.integers(1, MFGR_COUNT + 1, size=n, dtype=np.int8)
    category_in_mfgr = rng.integers(1, CATEGORIES_PER_MFGR + 1, size=n)
    category = ((mfgr - 1) * CATEGORIES_PER_MFGR + (category_in_mfgr - 1)).astype(
        np.int8
    )
    brand = (
        category.astype(np.int16) * BRANDS_PER_CATEGORY
        + rng.integers(0, BRANDS_PER_CATEGORY, size=n, dtype=np.int16)
    )
    return Table(
        spec=schema.PART,
        columns={
            "p_partkey": np.arange(1, n + 1, dtype=np.int32),
            "p_mfgr": mfgr,
            "p_category": category,
            "p_brand1": brand,
            "p_color": rng.integers(0, 92, size=n, dtype=np.int8),
            "p_size": rng.integers(1, 51, size=n, dtype=np.int8),
        },
    )


def generate_lineorder(
    scale_factor: float,
    rng: np.random.Generator,
    date: Table,
    n_customers: int,
    n_suppliers: int,
    n_parts: int,
) -> Table:
    n = schema.lineorder_rows(scale_factor)
    datekeys = date["d_datekey"]
    orderdate = datekeys[rng.integers(0, len(datekeys), size=n)]
    commit_offset = rng.integers(30, 91, size=n)
    commitdate = orderdate + commit_offset.astype(np.int32)  # approximate

    quantity = rng.integers(1, 51, size=n, dtype=np.int8)
    discount = rng.integers(0, 11, size=n, dtype=np.int8)
    price = rng.integers(90_000, 2_000_000, size=n, dtype=np.int32)
    extendedprice = (price // 100).astype(np.int32)
    revenue = (
        extendedprice.astype(np.int64) * (100 - discount.astype(np.int64)) // 100
    ).astype(np.int32)
    supplycost = (extendedprice * 6 // 10).astype(np.int32)

    return Table(
        spec=schema.LINEORDER,
        columns={
            "lo_orderkey": np.arange(1, n + 1, dtype=np.int64),
            "lo_linenumber": rng.integers(1, 8, size=n, dtype=np.int8),
            "lo_custkey": rng.integers(1, n_customers + 1, size=n, dtype=np.int32),
            "lo_partkey": rng.integers(1, n_parts + 1, size=n, dtype=np.int32),
            "lo_suppkey": rng.integers(1, n_suppliers + 1, size=n, dtype=np.int32),
            "lo_orderdate": orderdate.astype(np.int32),
            "lo_orderpriority": rng.integers(0, 5, size=n, dtype=np.int8),
            "lo_shippriority": np.zeros(n, dtype=np.int8),
            "lo_quantity": quantity,
            "lo_extendedprice": extendedprice,
            "lo_ordtotalprice": (extendedprice * 4).astype(np.int32),
            "lo_discount": discount,
            "lo_revenue": revenue,
            "lo_supplycost": supplycost,
            "lo_tax": rng.integers(0, 9, size=n, dtype=np.int8),
            "lo_commitdate": commitdate.astype(np.int32),
            "lo_shipmode": rng.integers(0, 7, size=n, dtype=np.int8),
        },
    )


def generate(scale_factor: float = 0.1, seed: int = 2021) -> SsbDatabase:
    """Generate a complete SSB database.

    The default scale factor of 0.1 (600k fact rows) keeps tests fast;
    the benchmarks use larger factors and the cost model extrapolates
    traffic linearly to the paper's sf 50/100.
    """
    if scale_factor <= 0:
        raise SchemaError("scale factor must be positive")
    rng = np.random.default_rng(seed)
    date = generate_date()
    customer = generate_customer(scale_factor, rng)
    supplier = generate_supplier(scale_factor, rng)
    part = generate_part(scale_factor, rng)
    lineorder = generate_lineorder(
        scale_factor, rng, date, len(customer), len(supplier), len(part)
    )
    return SsbDatabase(
        scale_factor=scale_factor,
        lineorder=lineorder,
        date=date,
        customer=customer,
        supplier=supplier,
        part=part,
    )
