"""Star Schema Benchmark: generator, engine, indexes, profiles, runner.

* :mod:`repro.ssb.schema` / :mod:`repro.ssb.dbgen` — SSB schema and a
  deterministic, scale-factor-parameterised data generator;
* :mod:`repro.ssb.queries` — the 13 queries as declarative plans;
* :mod:`repro.ssb.hashindex` — the Dash-like PMEM-optimized index and
  the PMEM-unaware chained baseline;
* :mod:`repro.ssb.engine` — an executing query engine that records the
  memory traffic of every operator;
* :mod:`repro.ssb.storage` — deployment profiles (Hyrise, handcrafted,
  the Table 1 ladder, the SSD contrast);
* :mod:`repro.ssb.costmodel` / :mod:`repro.ssb.runner` — traffic pricing
  via :mod:`repro.memsim` and the paper's SSB experiments.
"""

from repro.ssb.costmodel import CostBreakdown, SsbCostModel
from repro.ssb.dbgen import SsbDatabase, Table, generate
from repro.ssb.engine import QueryResult, SsbExecutor
from repro.ssb.queries import ALL_QUERIES, QueryDef, flight, get_query
from repro.ssb.runner import SsbRun, SsbRunner, average_slowdown, slowdown
from repro.ssb.storage import (
    HANDCRAFTED_DRAM,
    HYBRID_PMEM_DRAM,
    HANDCRAFTED_PMEM,
    HYRISE_DRAM,
    HYRISE_PMEM,
    TRADITIONAL_SSD,
    IndexKind,
    SystemProfile,
    TupleLayout,
    table1_ladder,
)

__all__ = [
    "ALL_QUERIES",
    "CostBreakdown",
    "HANDCRAFTED_DRAM",
    "HANDCRAFTED_PMEM",
    "HYBRID_PMEM_DRAM",
    "HYRISE_DRAM",
    "HYRISE_PMEM",
    "IndexKind",
    "QueryDef",
    "QueryResult",
    "SsbCostModel",
    "SsbDatabase",
    "SsbExecutor",
    "SsbRun",
    "SsbRunner",
    "SystemProfile",
    "TRADITIONAL_SSD",
    "Table",
    "TupleLayout",
    "average_slowdown",
    "flight",
    "generate",
    "get_query",
    "slowdown",
    "table1_ladder",
]
