"""Traffic-to-runtime cost model: prices engine traffic with memsim.

For a given :class:`~repro.ssb.storage.SystemProfile`, the model derives
the deployment's effective bandwidths from :class:`~repro.memsim.BandwidthModel`
(the same model behind Figures 3-13 — no SSB-specific bandwidth numbers
exist anywhere):

* sequential scans: near/far stream evaluation at the profile's thread
  count, pinning, and dax mode (SSD profiles scan at NVMe speed);
* random index probes: the §5.2 random-access curves at the index's
  access granularity, with a last-level-cache residency discount for
  cache-friendly (PMEM-aware) deployments and a UPI latency penalty for
  the non-NUMA-aware configuration;
* intermediate writes: the §4 write curves at the profile's effective
  write-thread count (PMEM-aware deployments cap their writers at the
  paper-recommended 4-6; unaware ones write with all threads and pay
  the §4.2 collapse).

CPU time uses one calibrated constant (ns per weighted tuple); each
operator phase costs ``max(cpu, memory)`` (computation overlaps memory
within an operator) and phases add up.

Each :meth:`SsbCostModel.price` pass first collects every distinct
stream tuple its phases will ask for and evaluates them in **one**
columnar grid call (:meth:`~repro.sweep.service.EvaluationService.
evaluate_grid_columns`); totals are read straight off the column batch,
bit-identical to per-point evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim import (
    BandwidthModel,
    DirectoryState,
    Layout,
    MediaKind,
    Op,
    PinningPolicy,
    StreamSpec,
)
from repro.memsim.spec import Pattern
from repro.obs import Recorder, default_recorder
from repro.ssb.engine.traffic import OperatorTraffic, QueryTraffic
from repro.ssb.storage import SystemProfile
from repro.units import GB, GIB, NS

#: Last-level cache per socket (Xeon Gold 5220S: 24.75 MB).
LLC_BYTES_PER_SOCKET: float = 24.75e6

#: Calibrated CPU cost per weighted tuple, seconds. One weight unit is
#: ~25 ns of core time; the per-operator weights in
#: :mod:`repro.ssb.engine.operators` express costs relative to it.
#: Anchor: the Table 1 single-thread runs are partly CPU-bound (221 s on
#: DRAM for Q2.1 at sf 100, with a probe per fact row).
CPU_SECONDS_PER_TUPLE: float = 25 * NS

#: Extra per-op latency of a random access crossing the UPI, seconds.
FAR_RANDOM_EXTRA_LATENCY: float = 400 * NS


@dataclass
class PhaseCost:
    """Cost of one operator phase."""

    name: str
    cpu_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        """Phase runtime in seconds: the slower of the CPU and memory legs."""
        return max(self.cpu_seconds, self.memory_seconds)

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.cpu_seconds


@dataclass
class CostBreakdown:
    """Predicted runtime of one query under one profile."""

    query: str
    profile: str
    phases: list[PhaseCost] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Total predicted query runtime in seconds."""
        return sum(p.seconds for p in self.phases)

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of time spent in memory-bound phases (§6.2 reports
        the benchmark is memory bound over 70% of the time)."""
        total = self.seconds
        if total <= 0:
            return 0.0
        return sum(p.seconds for p in self.phases if p.memory_bound) / total

    def describe(self) -> str:
        lines = [f"{self.query} on {self.profile}: {self.seconds:.3f}s"]
        for phase in self.phases:
            kind = "mem" if phase.memory_bound else "cpu"
            lines.append(
                f"  {phase.name:<24} {phase.seconds:8.4f}s ({kind}-bound; "
                f"cpu={phase.cpu_seconds:.4f} mem={phase.memory_seconds:.4f})"
            )
        return "\n".join(lines)


class SsbCostModel:
    """Prices :class:`QueryTraffic` for a system profile."""

    def __init__(
        self,
        model: BandwidthModel | None = None,
        cpu_seconds_per_tuple: float = CPU_SECONDS_PER_TUPLE,
    ) -> None:
        if cpu_seconds_per_tuple <= 0:
            raise ConfigurationError("CPU cost must be positive")
        self.model = model if model is not None else BandwidthModel()
        self.config = self.model.config
        self.service = self.model.service
        # All pricing is steady-state: far accesses are evaluated against
        # an explicitly warm coherence directory instead of mutating the
        # model (the cold path is Fig. 5's subject, not SSB's).
        self._directory = DirectoryState.warm(self.config.topology)
        self.cpu_seconds_per_tuple = cpu_seconds_per_tuple
        # Totals primed by price(): one batched columnar evaluation per
        # pricing pass reads every bandwidth this model will ask for
        # straight off the column batch (no per-point result object).
        self._primed: dict[tuple[StreamSpec, ...], float] = {}

    def _gbps(self, streams: list[StreamSpec]) -> float:
        """Steady-state bandwidth of ``streams`` through the service."""
        key = tuple(streams)
        primed = self._primed.get(key)
        if primed is not None:
            return primed
        return self.service.evaluate(
            self.config, key, self._directory
        ).total_gbps

    # ------------------------------------------------------------------
    # effective bandwidths
    # ------------------------------------------------------------------

    @staticmethod
    def _scan_streams(profile: SystemProfile) -> list[StreamSpec]:
        """Stream tuple behind :meth:`scan_gbps` (PMEM/DRAM profiles)."""
        base = dict(
            op=Op.READ,
            threads=profile.threads_per_socket,
            access_size=4096,
            media=profile.media,
            layout=Layout.INDIVIDUAL,
            pinning=profile.pinning,
            dax_mode=profile.dax_mode,
        )
        if profile.sockets == 1:
            streams = [StreamSpec(**base)]
        elif profile.numa_aware:
            streams = [
                StreamSpec(**base),
                StreamSpec(**base, issuing_socket=1, target_socket=1),
            ]
        else:
            # Data striped across both sockets without placement logic:
            # every socket streams half its data from the far socket.
            half = dict(base, threads=max(1, profile.threads_per_socket // 2))
            streams = [
                StreamSpec(**half),
                StreamSpec(**half, issuing_socket=0, target_socket=1),
                StreamSpec(**half, issuing_socket=1, target_socket=1),
                StreamSpec(**half, issuing_socket=1, target_socket=0),
            ]
        return streams

    @staticmethod
    def _random_streams(
        profile: SystemProfile,
        access_size: int,
        region_bytes: float,
        media: MediaKind,
    ) -> list[StreamSpec]:
        """Stream tuple behind :meth:`random_read_gbps` (one socket)."""
        region = max(int(region_bytes), access_size) if region_bytes else 2 * GIB
        return [
            StreamSpec(
                op=Op.READ,
                threads=profile.threads_per_socket,
                access_size=access_size,
                media=media,
                pattern=Pattern.RANDOM,
                region_bytes=region,
            )
        ]

    @staticmethod
    def _write_streams(profile: SystemProfile) -> list[StreamSpec]:
        """Stream tuple behind :meth:`write_gbps` (one socket)."""
        media = profile.effective_index_media
        if profile.pmem_aware and media is MediaKind.PMEM:
            # Best practice 2: cap write threads at 4-6 per socket.
            threads = min(6, profile.threads_per_socket)
        else:
            threads = profile.threads_per_socket
        return [
            StreamSpec(
                op=Op.WRITE,
                threads=threads,
                access_size=4096,
                media=media,
                pinning=profile.pinning,
                dax_mode=profile.dax_mode,
            )
        ]

    def scan_gbps(self, profile: SystemProfile) -> float:
        """Sequential table-scan bandwidth of the deployment, GB/s."""
        if profile.tables_on_ssd:
            return self.config.calibration.ssd.seq_read_max
        return self._gbps(self._scan_streams(profile))

    def random_read_gbps(
        self,
        profile: SystemProfile,
        access_size: int,
        region_bytes: float,
        media: MediaKind | None = None,
    ) -> float:
        """Random-read bandwidth for probes of ``access_size``, GB/s.

        ``media`` overrides the target medium (the hybrid profile keeps
        indexes in DRAM while base tables stay on PMEM).
        """
        if media is None:
            media = profile.effective_index_media
        per_socket = self._gbps(
            self._random_streams(profile, access_size, region_bytes, media)
        )
        if media is MediaKind.PMEM and profile.dax_mode.value == "fsdax":
            per_socket /= 1.075
        if (
            media is MediaKind.PMEM
            and profile.pinning is PinningPolicy.NUMA_REGION
        ):
            # §4.3: intra-region placements still cross NUMA-node iMCs;
            # PMEM cannot mask the poorer pattern (Table 1's final
            # "Pinning" step recovers this).
            per_socket *= 0.93
        if profile.sockets == 1:
            return per_socket
        if profile.numa_aware and profile.replicate_dimensions:
            return per_socket * 2
        # Half the probes cross the UPI and pay its latency per op.
        cal = self.config.calibration
        if media is MediaKind.PMEM:
            near_latency = cal.pmem.random_read_latency
            stream = cal.pmem.random_read_stream_rate
        else:
            near_latency = cal.dram.random_read_latency
            stream = cal.dram.read_stream_rate
        transfer = access_size / (stream * GB)
        far_factor = (near_latency + transfer) / (
            near_latency + FAR_RANDOM_EXTRA_LATENCY + transfer
        )
        return per_socket * (1.0 + far_factor)

    def write_gbps(self, profile: SystemProfile) -> float:
        """Intermediate-write bandwidth of the deployment, GB/s."""
        per_socket = self._gbps(self._write_streams(profile))
        return per_socket * (profile.sockets if profile.numa_aware else 1)

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------

    def resident_fraction(self, profile: SystemProfile, region_bytes: float) -> float:
        """Fraction of a random-access region served from the LLC.

        PMEM-aware deployments use compact, contiguous structures that
        cache well; the PMEM-unaware profile's scattered allocations do
        not (§6.1's Hyrise keeps all structures on the storage medium).
        """
        if not profile.pmem_aware:
            return 0.0
        if region_bytes <= 0:
            return 0.0
        if region_bytes <= LLC_BYTES_PER_SOCKET:
            return 1.0
        # A region larger than the LLC thrashes under concurrent scan
        # traffic; at most half the probes hit even when the footprint is
        # only slightly above cache size.
        return min(0.5, LLC_BYTES_PER_SOCKET / region_bytes)

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------

    @staticmethod
    def _probe_media(
        operator: OperatorTraffic, profile: SystemProfile
    ) -> MediaKind:
        """Medium an operator's random probes hit.

        Gathers into the fact table hit the base-table medium; index
        probes hit the (possibly hybrid) index medium.
        """
        if operator.region_table == "lineorder" and not profile.tables_on_ssd:
            return profile.media
        return profile.effective_index_media

    def _prime(self, traffic: QueryTraffic, profile: SystemProfile) -> None:
        """Batch-evaluate every bandwidth this pricing pass will need.

        One columnar grid evaluation covers the whole pass: the distinct
        stream tuples behind :meth:`scan_gbps`, :meth:`random_read_gbps`,
        and :meth:`write_gbps` are collected from the traffic and priced
        in a single :meth:`~repro.sweep.service.EvaluationService.
        evaluate_grid_columns` call, and the totals are read straight off
        the column batch — no per-point result object exists. The primed
        totals are bit-identical to the scalar path (same floats summed
        in the same order), so the public per-bandwidth methods stay
        exact whether or not a pass primed them first.
        """
        wanted: list[tuple[StreamSpec, ...]] = []

        def want(streams: list[StreamSpec]) -> None:
            key = tuple(streams)
            if key not in self._primed and key not in wanted:
                wanted.append(key)

        needs_write = False
        for operator in traffic.operators:
            if operator.seq_read_bytes and not profile.tables_on_ssd:
                want(self._scan_streams(profile))
            if operator.random_reads and (
                self.resident_fraction(profile, operator.random_region_bytes)
                < 1.0
            ):
                want(
                    self._random_streams(
                        profile,
                        operator.random_read_size,
                        operator.random_region_bytes,
                        self._probe_media(operator, profile),
                    )
                )
            if operator.seq_write_bytes or operator.random_write_bytes:
                needs_write = True
        if needs_write:
            want(self._write_streams(profile))
        if not wanted:
            return
        try:
            columns = self.service.evaluate_grid_columns(
                self.config, wanted, self._directory
            )
        except Exception:
            # Priming is purely an optimisation: if any point fails, let
            # the scalar pricing path surface the original error with its
            # own type and attribution.
            return
        for row, key in enumerate(wanted):
            self._primed[key] = columns.point_total_gbps(row)

    def _phase(
        self, operator: OperatorTraffic, profile: SystemProfile
    ) -> PhaseCost:
        memory_seconds = 0.0
        cpu_discount = 1.0
        if operator.seq_read_bytes:
            memory_seconds += operator.seq_read_bytes / (
                self.scan_gbps(profile) * GB
            )
        if operator.random_reads:
            resident = self.resident_fraction(profile, operator.random_region_bytes)
            if resident < 1.0:
                bandwidth = self.random_read_gbps(
                    profile,
                    operator.random_read_size,
                    operator.random_region_bytes,
                    media=self._probe_media(operator, profile),
                )
                memory_seconds += (
                    operator.random_read_bytes * (1.0 - resident) / (bandwidth * GB)
                )
            else:
                # A fully LLC-resident probe avoids the memory-stall part
                # of its per-tuple cost (the weight budgets for a miss).
                cpu_discount = 0.3
        write_bytes = operator.seq_write_bytes + operator.random_write_bytes
        if write_bytes:
            memory_seconds += write_bytes / (self.write_gbps(profile) * GB)
        cpu_seconds = (
            operator.cpu_tuples
            * operator.cpu_weight
            * cpu_discount
            * self.cpu_seconds_per_tuple
            / profile.total_threads
        )
        return PhaseCost(
            name=operator.name,
            cpu_seconds=cpu_seconds,
            memory_seconds=memory_seconds,
        )

    def price(
        self,
        traffic: QueryTraffic,
        profile: SystemProfile,
        scale_ratio: float = 1.0,
        region_factors: dict[str, float] | None = None,
        *,
        recorder: Recorder | None = None,
    ) -> CostBreakdown:
        """Predict the runtime of ``traffic`` under ``profile``.

        ``scale_ratio`` linearly extrapolates traffic measured at a small
        scale factor to the paper's (e.g. executed at sf 0.1, priced for
        sf 100 with ``scale_ratio=1000``); ``region_factors`` override
        the growth of per-table random-access regions (part and date do
        not grow linearly). ``recorder`` (default: the process-wide
        :func:`repro.obs.default_recorder`) receives per-operator traffic
        events and the priced byte totals; it never affects the result.
        """
        if scale_ratio <= 0:
            raise ConfigurationError("scale ratio must be positive")
        if not math.isclose(scale_ratio, 1.0) or region_factors:
            scaled = traffic.scaled(scale_ratio, region_factors)
        else:
            scaled = traffic
        # One columnar batch covers every bandwidth the phases below ask
        # for; the phase loop then reads primed totals, never results.
        self._prime(scaled, profile)
        breakdown = CostBreakdown(query=traffic.query, profile=profile.name)
        for operator in scaled.operators:
            breakdown.phases.append(self._phase(operator, profile))
        rec = recorder if recorder is not None else default_recorder()
        if rec.enabled:
            self._emit(rec, scaled, profile, breakdown)
        return breakdown

    @staticmethod
    def _emit(
        rec: Recorder,
        scaled: QueryTraffic,
        profile: SystemProfile,
        breakdown: CostBreakdown,
    ) -> None:
        """Emit one pricing pass: per-operator events plus byte totals."""
        with rec.span("ssb.price", query=scaled.query, profile=profile.name):
            for operator, phase in zip(scaled.operators, breakdown.phases):
                rec.event(
                    "ssb.operator",
                    query=scaled.query,
                    operator=operator.name,
                    seq_read_bytes=operator.seq_read_bytes,
                    random_reads=operator.random_reads,
                    random_read_size=operator.random_read_size,
                    write_bytes=operator.seq_write_bytes + operator.random_write_bytes,
                    cpu_seconds=phase.cpu_seconds,
                    memory_seconds=phase.memory_seconds,
                    memory_bound=phase.memory_bound,
                )
        rec.incr("ssb.scan.read_bytes", scaled.seq_read_bytes)
        rec.incr("ssb.probe.requests_count", scaled.random_reads)
        rec.incr("ssb.probe.read_bytes", scaled.random_read_bytes)
        rec.incr("ssb.intermediate.write_bytes", scaled.write_bytes)
        rec.incr("ssb.cpu.tuples_count", scaled.cpu_tuples)
        rec.observe("ssb.query.predicted_seconds", breakdown.seconds)
