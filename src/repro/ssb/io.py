"""Database persistence and data-import estimation.

§4 motivates the write benchmarks with OLAP's write-heavy operations:
"an important feature of data warehouses is an efficient data import".
This module provides both halves:

* real persistence — save/load a generated :class:`SsbDatabase` as a
  compressed ``.npz`` archive (deterministic round trip);
* import-time estimation — how long ingesting the database onto PMEM or
  DRAM would take under a given write configuration, priced with the
  same §4 write model as everything else. The best-practice
  configuration (4-6 threads, 4 KB blocks) is compared against a naive
  one (all threads, large blocks) to quantify what insight #7 is worth.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, SchemaError
from repro.memsim import BandwidthModel, MediaKind
from repro.ssb import schema
from repro.ssb.dbgen import SsbDatabase, Table
from repro.units import GB, MIB


def save_database(db: SsbDatabase, path: str | Path) -> Path:
    """Persist all five tables into one compressed ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "__scale_factor__": np.asarray([db.scale_factor], dtype=np.float64)
    }
    for spec in schema.ALL_TABLES:
        table = db.table(spec.name)
        for column, values in table.columns.items():
            arrays[f"{spec.name}/{column}"] = values
    np.savez_compressed(path, **arrays)
    # ``savez`` appends .npz if missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_database(path: str | Path) -> SsbDatabase:
    """Load a database saved by :func:`save_database`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no database archive at {path}")
    with np.load(path) as archive:
        try:
            scale_factor = float(archive["__scale_factor__"][0])
        except KeyError:
            raise SchemaError(f"{path} is not an SSB archive") from None
        tables: dict[str, Table] = {}
        for spec in schema.ALL_TABLES:
            columns = {}
            for column in spec.column_names():
                key = f"{spec.name}/{column}"
                if key not in archive:
                    raise SchemaError(f"{path} is missing column {key}")
                columns[column] = archive[key]
            tables[spec.name] = Table(spec=spec, columns=columns)
    return SsbDatabase(scale_factor=scale_factor, **tables)


@dataclass(frozen=True)
class ImportEstimate:
    """Predicted ingest time of one data volume under one configuration."""

    bytes: int
    media: MediaKind
    threads: int
    access_size: int
    gbps: float

    @property
    def seconds(self) -> float:
        """Predicted transfer time in seconds for ``bytes`` at ``gbps``."""
        return self.bytes / (self.gbps * GB)

    def describe(self) -> str:
        return (
            f"ingest {self.bytes / GB:.1f} GB to {self.media.value} with "
            f"{self.threads} threads x {self.access_size} B: "
            f"{self.gbps:.1f} GB/s -> {self.seconds:.2f}s"
        )


def estimate_import(
    volume_bytes: int,
    *,
    media: MediaKind = MediaKind.PMEM,
    threads: int = 6,
    access_size: int = 4096,
    model: BandwidthModel | None = None,
    sockets: int = 2,
) -> ImportEstimate:
    """Predict the ingest time of ``volume_bytes`` (sequential writes).

    Defaults follow the paper's best practices: 4-6 write threads per
    socket, 4 KB blocks, data striped across both sockets' near PMEM.
    """
    if volume_bytes <= 0:
        raise ConfigurationError("volume must be positive")
    if sockets not in (1, 2):
        raise ConfigurationError("model supports 1 or 2 sockets")
    model = model if model is not None else BandwidthModel()
    per_socket = model.sequential_write(threads, access_size, media=media)
    return ImportEstimate(
        bytes=volume_bytes,
        media=media,
        threads=threads,
        access_size=access_size,
        gbps=per_socket * sockets,
    )


def import_advice(volume_bytes: int, model: BandwidthModel | None = None) -> str:
    """Contrast best-practice ingest with the naive configuration.

    The naive choice — every core writing in large blocks — is what a
    DRAM-tuned system does, and it is precisely the §4.2 collapse.
    """
    model = model if model is not None else BandwidthModel()
    tuned = estimate_import(volume_bytes, threads=6, access_size=4096, model=model)
    naive = estimate_import(volume_bytes, threads=36, access_size=MIB, model=model)
    saving = naive.seconds - tuned.seconds
    return "\n".join(
        [
            "data-import advice (paper insights #6/#7):",
            f"  best practice : {tuned.describe()}",
            f"  naive         : {naive.describe()}",
            f"  following the best practices saves {saving:.2f}s "
            f"({naive.seconds / tuned.seconds:.1f}x faster)",
        ]
    )
