"""Sequential read/write sweeps matching the paper's Sections 3 and 4."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, StreamSpec
from repro.memsim.topology import MediaKind
from repro.workloads.grids import SweepGrid, SweepPoint

#: The access sizes of Figures 3 and 7 (64 B to 64 KB, powers of two).
PAPER_ACCESS_SIZES: tuple[int, ...] = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
)

#: The thread counts annotated in the read figures.
PAPER_THREAD_COUNTS: tuple[int, ...] = (1, 4, 8, 16, 18, 24, 32, 36)

#: The thread counts annotated in the write figures.
PAPER_WRITE_THREAD_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8, 18, 24, 36)


def sequential_sweep(
    op: Op,
    *,
    media: MediaKind = MediaKind.PMEM,
    access_sizes: tuple[int, ...] = PAPER_ACCESS_SIZES,
    thread_counts: tuple[int, ...] | None = None,
    layout: Layout = Layout.GROUPED,
) -> SweepGrid:
    """Access-size x thread-count sweep (Fig. 3 for reads, Fig. 7/8 writes).

    Threads are pinned to one NUMA region via numactl in the paper; the
    corresponding ``PinningPolicy.NUMA_REGION`` is used here.
    """
    if thread_counts is None:
        thread_counts = (
            PAPER_THREAD_COUNTS if op is Op.READ else PAPER_WRITE_THREAD_COUNTS
        )
    points = []
    for threads in thread_counts:
        for size in access_sizes:
            spec = StreamSpec(
                op=op,
                threads=threads,
                access_size=size,
                media=media,
                layout=layout,
                pinning=PinningPolicy.NUMA_REGION,
            )
            points.append(
                SweepPoint(
                    label=f"{threads}T/{size}B",
                    params={"threads": threads, "access_size": size},
                    streams=(spec,),
                )
            )
    name = f"sequential-{op.value}-{layout.value}-{media.value}"
    return SweepGrid(name=name, points=tuple(points))


def pinning_sweep(
    op: Op,
    *,
    thread_counts: tuple[int, ...] = (1, 4, 8, 18, 24, 36),
    access_size: int = 4096,
) -> SweepGrid:
    """Pinning-policy sweep (Fig. 4 reads, Fig. 9 writes): individual 4 KB."""
    points = []
    for policy in (PinningPolicy.NONE, PinningPolicy.NUMA_REGION, PinningPolicy.CORES):
        for threads in thread_counts:
            spec = StreamSpec(
                op=op,
                threads=threads,
                access_size=access_size,
                layout=Layout.INDIVIDUAL,
                pinning=policy,
            )
            points.append(
                SweepPoint(
                    label=f"{policy.value}/{threads}T",
                    params={"policy": policy, "threads": threads},
                    streams=(spec,),
                )
            )
    return SweepGrid(name=f"pinning-{op.value}", points=tuple(points))


def numa_locality_sweep(
    op: Op,
    *,
    thread_counts: tuple[int, ...] = (1, 4, 8, 18, 24, 36),
    access_size: int = 4096,
) -> SweepGrid:
    """Near vs. far sweep (Fig. 5 for reads; the 1 Near/1 Far curves of
    Fig. 10 for writes). Individual 4 KB access, NUMA-region pinning."""
    if op not in (Op.READ, Op.WRITE):
        raise WorkloadError(f"unsupported op: {op}")
    points = []
    for locality in ("near", "far"):
        for threads in thread_counts:
            spec = StreamSpec(
                op=op,
                threads=threads,
                access_size=access_size,
                layout=Layout.INDIVIDUAL,
                pinning=PinningPolicy.NUMA_REGION,
                issuing_socket=0,
                target_socket=0 if locality == "near" else 1,
            )
            points.append(
                SweepPoint(
                    label=f"{locality}/{threads}T",
                    params={"locality": locality, "threads": threads},
                    streams=(spec,),
                )
            )
    return SweepGrid(name=f"numa-{op.value}", points=tuple(points))
