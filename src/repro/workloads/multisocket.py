"""Multi-socket scenarios of §3.5 (Fig. 6) and §4.5 (Fig. 10).

The five canonical configurations, quoting the paper:

i)   one socket reading/writing its near memory;
ii)  one socket on its far memory;
iii) two sockets, each on its near memory;
iv)  two sockets, each on its far memory;
v)   one socket near plus the other socket far on the *same* memory.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, StreamSpec
from repro.memsim.topology import MediaKind
from repro.workloads.grids import SweepGrid, SweepPoint

MULTISOCKET_READ_LABELS: tuple[str, ...] = (
    "1 Near", "1 Far", "2 Near", "2 Far", "1 Near 1 Far",
)

MULTISOCKET_WRITE_LABELS = MULTISOCKET_READ_LABELS


def _stream(op, threads, media, issuing, target):
    return StreamSpec(
        op=op,
        threads=threads,
        access_size=4096,
        media=media,
        layout=Layout.INDIVIDUAL,
        pinning=PinningPolicy.NUMA_REGION,
        issuing_socket=issuing,
        target_socket=target,
    )


def _scenario_streams(op, label, threads, media):
    if label == "1 Near":
        return (_stream(op, threads, media, 0, 0),)
    if label == "1 Far":
        return (_stream(op, threads, media, 0, 1),)
    if label == "2 Near":
        return (
            _stream(op, threads, media, 0, 0),
            _stream(op, threads, media, 1, 1),
        )
    if label == "2 Far":
        return (
            _stream(op, threads, media, 0, 1),
            _stream(op, threads, media, 1, 0),
        )
    if label == "1 Near 1 Far":
        # Both sockets access socket 0's memory.
        return (
            _stream(op, threads, media, 0, 0),
            _stream(op, threads, media, 1, 0),
        )
    raise WorkloadError(f"unknown multi-socket scenario: {label}")


def multisocket_read_scenarios(
    *,
    media: MediaKind = MediaKind.PMEM,
    thread_counts: tuple[int, ...] = (1, 4, 8, 18, 24, 36),
) -> SweepGrid:
    """Fig. 6 scenario grid; ``thread_counts`` are threads *per socket*."""
    return _scenario_grid(Op.READ, media, thread_counts)


def multisocket_write_scenarios(
    *,
    media: MediaKind = MediaKind.PMEM,
    thread_counts: tuple[int, ...] = (1, 4, 8, 18, 24, 32, 36),
) -> SweepGrid:
    """Fig. 10 scenario grid; ``thread_counts`` are threads *per socket*."""
    return _scenario_grid(Op.WRITE, media, thread_counts)


def _scenario_grid(op, media, thread_counts) -> SweepGrid:
    points = []
    labels = MULTISOCKET_READ_LABELS if op is Op.READ else MULTISOCKET_WRITE_LABELS
    for label in labels:
        for threads in thread_counts:
            points.append(
                SweepPoint(
                    label=f"{label}/{threads}T",
                    params={"scenario": label, "threads": threads},
                    streams=_scenario_streams(op, label, threads, media),
                )
            )
    return SweepGrid(name=f"multisocket-{op.value}-{media.value}", points=tuple(points))
