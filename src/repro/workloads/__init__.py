"""Declarative workload generators for the paper's benchmark scenarios.

Each generator returns the exact stream configurations a section of the
paper sweeps, as plain data (:class:`~repro.memsim.spec.StreamSpec`
lists keyed by sweep point), so experiment modules, examples, and tests
all run the same workloads.
"""

from repro.workloads.grids import SweepGrid, SweepPoint
from repro.workloads.mixed import mixed_grid
from repro.workloads.multisocket import (
    MULTISOCKET_READ_LABELS,
    MULTISOCKET_WRITE_LABELS,
    multisocket_read_scenarios,
    multisocket_write_scenarios,
)
from repro.workloads.random_ import random_sweep
from repro.workloads.sequential import (
    PAPER_ACCESS_SIZES,
    PAPER_THREAD_COUNTS,
    PAPER_WRITE_THREAD_COUNTS,
    numa_locality_sweep,
    pinning_sweep,
    sequential_sweep,
)

__all__ = [
    "MULTISOCKET_READ_LABELS",
    "MULTISOCKET_WRITE_LABELS",
    "PAPER_ACCESS_SIZES",
    "PAPER_THREAD_COUNTS",
    "PAPER_WRITE_THREAD_COUNTS",
    "SweepGrid",
    "SweepPoint",
    "mixed_grid",
    "multisocket_read_scenarios",
    "multisocket_write_scenarios",
    "numa_locality_sweep",
    "pinning_sweep",
    "random_sweep",
    "sequential_sweep",
]
