"""Generic sweep-grid plumbing shared by the workload generators."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.spec import StreamSpec


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep: a label plus its stream(s)."""

    label: str
    params: dict[str, object]
    streams: tuple[StreamSpec, ...]

    def __post_init__(self) -> None:
        if not self.streams:
            raise WorkloadError(f"sweep point {self.label!r} has no streams")


@dataclass(frozen=True)
class SweepGrid:
    """An ordered collection of sweep points forming one experiment."""

    name: str
    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise WorkloadError(f"sweep {self.name!r} is empty")
        labels = [p.label for p in self.points]
        if len(set(labels)) != len(labels):
            raise WorkloadError(f"sweep {self.name!r} has duplicate labels")

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def labels(self) -> list[str]:
        return [p.label for p in self.points]

    def point(self, label: str) -> SweepPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise WorkloadError(f"sweep {self.name!r} has no point {label!r}")
