"""Random-access sweeps of §5.2 (Figures 12 and 13)."""

from __future__ import annotations

from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind
from repro.workloads.grids import SweepGrid, SweepPoint
from repro.units import GIB

#: The access sizes of Figures 12/13: "64 Byte to 8 KB, as we do not
#: consider larger access sizes to be random anymore".
PAPER_RANDOM_SIZES: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Default region: 2 GB, "representing, e.g., a hash index".
DEFAULT_REGION: int = 2 * GIB


def random_sweep(
    op: Op,
    *,
    media: MediaKind = MediaKind.PMEM,
    access_sizes: tuple[int, ...] = PAPER_RANDOM_SIZES,
    thread_counts: tuple[int, ...] | None = None,
    region_bytes: int = DEFAULT_REGION,
) -> SweepGrid:
    """Random read/write sweep over access size x thread count."""
    if thread_counts is None:
        thread_counts = (
            (1, 4, 8, 16, 18, 24, 32, 36)
            if op is Op.READ
            else (1, 2, 4, 6, 8, 18, 24, 36)
        )
    points = []
    for threads in thread_counts:
        for size in access_sizes:
            spec = StreamSpec(
                op=op,
                threads=threads,
                access_size=size,
                media=media,
                pattern=Pattern.RANDOM,
                layout=Layout.INDIVIDUAL,
                pinning=PinningPolicy.NUMA_REGION,
                region_bytes=region_bytes,
            )
            points.append(
                SweepPoint(
                    label=f"{threads}T/{size}B",
                    params={"threads": threads, "access_size": size},
                    streams=(spec,),
                )
            )
    return SweepGrid(
        name=f"random-{op.value}-{media.value}", points=tuple(points)
    )
