"""Mixed read/write workload grid of §5.1 (Fig. 11)."""

from __future__ import annotations

from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, StreamSpec
from repro.memsim.topology import MediaKind
from repro.units import GIB
from repro.workloads.grids import SweepGrid, SweepPoint

#: The writer counts of Fig. 11.
PAPER_WRITE_COUNTS: tuple[int, ...] = (1, 4, 6)

#: The reader counts of Fig. 11.
PAPER_READ_COUNTS: tuple[int, ...] = (1, 8, 18, 30)


def mixed_grid(
    *,
    write_counts: tuple[int, ...] = PAPER_WRITE_COUNTS,
    read_counts: tuple[int, ...] = PAPER_READ_COUNTS,
    media: MediaKind = MediaKind.PMEM,
    access_size: int = 4096,
) -> SweepGrid:
    """x write / y read thread combinations on one socket's DIMMs.

    Matches the paper's setup: both sides use individual 4 KB access to
    disjoint 40 GB datasets on the *same* PMEM DIMMs, pinned to the NUMA
    region, at most 36 threads total.
    """
    points = []
    for writers in write_counts:
        for readers in read_counts:
            write = StreamSpec(
                op=Op.WRITE,
                threads=writers,
                access_size=access_size,
                media=media,
                layout=Layout.INDIVIDUAL,
                pinning=PinningPolicy.NUMA_REGION,
                total_bytes=40 * GIB,
            )
            read = StreamSpec(
                op=Op.READ,
                threads=readers,
                access_size=access_size,
                media=media,
                layout=Layout.INDIVIDUAL,
                pinning=PinningPolicy.NUMA_REGION,
                total_bytes=40 * GIB,
            )
            points.append(
                SweepPoint(
                    label=f"{writers}/{readers}",
                    params={"write_threads": writers, "read_threads": readers},
                    streams=(write, read),
                )
            )
    return SweepGrid(name=f"mixed-{media.value}", points=tuple(points))
