"""Parallel sweep execution with deterministic assembly.

A :class:`SweepRunner` evaluates every point of a
:class:`~repro.workloads.grids.SweepGrid` through an
:class:`~repro.sweep.EvaluationService`, optionally fanning out across a
worker pool. Results are keyed and assembled by point *label* in grid
order, and every point is evaluated against the same immutable inputs —
so any ``jobs``/``backend`` combination is bit-identical to serial
regardless of completion order.

Five backends:

* ``"serial"`` — evaluate inline, ignoring ``jobs``; the reference
  behaviour the others are tested against.
* ``"thread"`` (default) — a thread pool. The GIL serialises the pure
  Python arithmetic, but hits on the *shared* memo cache overlap, which
  is the common case for re-priced grids.
* ``"process"`` — a :mod:`repro.sweep.procpool` process pool for real
  multicore scaling on cold grids. Each worker owns its own memoizing
  service (optionally sharing the parent's disk-cache directory), and
  worker counters/cache statistics are merged back into the parent.
* ``"vector"`` — route the whole grid through
  :meth:`~repro.sweep.service.EvaluationService.evaluate_grid`, which
  computes cache-missing eligible points in one batched NumPy pass
  (:mod:`repro.memsim.kernels`). With ``jobs > 1`` it composes with the
  process pool: chunks fan out across workers and each worker runs the
  batched kernel on its chunk. Bit-identical to serial either way.
* ``"cluster"`` — a :mod:`repro.sweep.cluster` coordinator/worker
  cluster: grid points are sharded by content hash across worker
  processes (spawned locally, or remote ``repro worker`` peers), with a
  content-addressed shared cache tier above each worker's local tiers,
  work-stealing for stragglers, and heartbeat-timeout requeueing for
  dead workers. Still bit-identical to serial — rows are assembled by
  global grid index.

An unknown ``backend`` name raises
:class:`~repro.errors.BackendError` naming the valid set. A point that
raises — serial or parallel — is re-raised as
:class:`~repro.errors.SweepError` naming the grid and the point label,
with the original exception chained; ``pool.map`` alone would surface
only the worker's traceback, leaving the poisoned point anonymous.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.errors import BackendError, ConfigurationError, SweepError
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.evaluation import BandwidthResult
from repro.obs import Recorder, default_recorder
from repro.sweep.service import EvaluationService, default_service
from repro.workloads.grids import SweepGrid, SweepPoint

if TYPE_CHECKING:
    from repro.memsim.kernels import ResultColumns

#: Recognised ``SweepRunner`` backends, in documentation order.
BACKENDS = ("serial", "thread", "process", "vector", "cluster")


class SweepRunner:
    """Evaluates sweep grids, point-parallel, through a shared service.

    Parameters
    ----------
    service:
        Evaluation service to route points through; defaults to the
        process-wide shared service.
    jobs:
        Workers for the fan-out; ``1`` (default) evaluates inline.
    backend:
        One of :data:`BACKENDS` (``"thread"`` is the default) — see the
        module docstring for the trade-offs. Every backend produces
        bit-identical results; anything else raises
        :class:`~repro.errors.BackendError`.
    recorder:
        Observability sink for per-point counters and wall time;
        defaults to the process-wide :func:`repro.obs.default_recorder`.
    """

    def __init__(
        self,
        service: EvaluationService | None = None,
        *,
        jobs: int = 1,
        backend: str = "thread",
        recorder: Recorder | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if backend not in BACKENDS:
            raise BackendError(backend, BACKENDS)
        self._service = service
        self._recorder = recorder
        self.jobs = jobs
        self.backend = backend

    @property
    def service(self) -> EvaluationService:
        return self._service if self._service is not None else default_service()

    def run(
        self,
        grid: SweepGrid,
        *,
        config: MachineConfig | None = None,
        directory: DirectoryState | None = None,
    ) -> dict[str, BandwidthResult]:
        """Evaluate every point; returns ``{label: BandwidthResult}``.

        Every point sees the same ``directory`` (default cold) — a sweep
        is a set of independent what-if evaluations, not a sequence, so
        no point's warm-up leaks into another. The result dict is in grid
        order independent of ``jobs``.
        """
        cfg = config if config is not None else paper_config()
        state = directory if directory is not None else DirectoryState.cold()
        points = list(grid)
        rec = self._recorder if self._recorder is not None else default_recorder()
        observing = rec.enabled

        if self.backend == "cluster":
            # Imported lazily, like the process pool: only cluster runs
            # pay for the asyncio/multiprocessing machinery.
            from repro.sweep import cluster

            return cluster.run_grid(
                grid,
                points,
                config=cfg,
                directory=state,
                jobs=self.jobs,
                service=self.service,
                recorder=rec,
            )

        if self.backend == "vector":
            # Columnar end-to-end; the object dict is materialized (as
            # lazy views) only here at the API boundary. Batch-native
            # callers should use :meth:`run_columns` instead.
            if self.jobs > 1 and len(points) > 1:
                from repro.sweep import procpool

                labels, columns = procpool.run_grid_columns(
                    grid,
                    points,
                    config=cfg,
                    directory=state,
                    jobs=self.jobs,
                    service=self.service,
                    recorder=rec,
                )
            else:
                labels, columns = self._vector_columns(grid, points, cfg, state, rec)
            return dict(zip(labels, columns.views()))

        if self.backend == "process" and self.jobs > 1 and len(points) > 1:
            # Imported lazily: most sweeps never pay for the
            # concurrent.futures process machinery.
            from repro.sweep import procpool

            return procpool.run_grid(
                grid,
                points,
                config=cfg,
                directory=state,
                jobs=self.jobs,
                service=self.service,
                recorder=rec,
            )

        def evaluate_point(point: SweepPoint) -> BandwidthResult:
            started = time.perf_counter() if observing else 0.0
            try:
                result = self.service.evaluate(
                    cfg, point.streams, state, recorder=rec
                )
            except SweepError:
                raise
            except Exception as exc:
                raise SweepError(
                    f"sweep {grid.name!r} point {point.label!r} failed: {exc}"
                ) from exc
            if observing:
                # Wall time is inherently nondeterministic, hence a
                # histogram observation: CountersRecorder keeps only a
                # summary and TraceRecorder drops observations unless
                # asked to record them.
                rec.incr("sweep.points_count")
                rec.observe(
                    "sweep.point.wall_seconds", time.perf_counter() - started
                )
            return result

        if self.backend == "serial" or self.jobs == 1 or len(points) <= 1:
            results = [evaluate_point(point) for point in points]
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                results = list(pool.map(evaluate_point, points))
        return {point.label: result for point, result in zip(points, results)}

    def run_columns(
        self,
        grid: SweepGrid,
        *,
        config: MachineConfig | None = None,
        directory: DirectoryState | None = None,
    ) -> "tuple[list[str], ResultColumns]":
        """Evaluate every point into one column batch, in grid order.

        The batch-native counterpart of :meth:`run`: with the
        ``"vector"`` backend no per-point result object is materialized
        anywhere — the kernel's columns flow through the service (and,
        with ``jobs > 1``, across the process-pool boundary as column
        blocks) straight to the caller. The other backends evaluate
        point-at-a-time as always and columnarize at the end, so every
        backend returns equal batches (bit-identical floats).

        A failing point raises
        :class:`~repro.errors.GridPointError` naming the grid and point
        label and carrying the partial batch of every point completed
        before the failure.
        """
        cfg = config if config is not None else paper_config()
        state = directory if directory is not None else DirectoryState.cold()
        points = list(grid)
        rec = self._recorder if self._recorder is not None else default_recorder()

        if self.backend == "cluster":
            from repro.sweep import cluster

            return cluster.run_grid_columns(
                grid,
                points,
                config=cfg,
                directory=state,
                jobs=self.jobs,
                service=self.service,
                recorder=rec,
            )

        if self.backend == "vector":
            if self.jobs > 1 and len(points) > 1:
                from repro.sweep import procpool

                return procpool.run_grid_columns(
                    grid,
                    points,
                    config=cfg,
                    directory=state,
                    jobs=self.jobs,
                    service=self.service,
                    recorder=rec,
                )
            return self._vector_columns(grid, points, cfg, state, rec)

        from repro.memsim.kernels import ResultColumns

        results = self.run(grid, config=config, directory=directory)
        return list(results), ResultColumns.from_results(results.values())

    def _vector_columns(
        self,
        grid: SweepGrid,
        points: list[SweepPoint],
        config: MachineConfig,
        state: DirectoryState,
        rec: Recorder,
    ) -> "tuple[list[str], ResultColumns]":
        """Route the whole grid through the service's batched evaluator.

        :class:`~repro.errors.GridPointError` propagates as raised by the
        service — it is a :class:`SweepError` whose message already names
        the grid and point label (the service is passed both), and it
        carries the partial batch.
        """
        labels = [point.label for point in points]
        observing = rec.enabled
        started = time.perf_counter() if observing else 0.0
        columns = self.service.evaluate_grid_columns(
            config,
            [point.streams for point in points],
            state,
            recorder=rec,
            labels=labels,
            grid_name=grid.name,
        )
        if observing and points:
            rec.incr("sweep.points_count", len(points))
            # Batched evaluation has no per-point wall time; spreading the
            # batch mean keeps the histogram monoid (count/total) aligned
            # with the per-point backends.
            mean = (time.perf_counter() - started) / len(points)
            for _ in points:
                rec.observe("sweep.point.wall_seconds", mean)
        return labels, columns

    def totals(
        self,
        grid: SweepGrid,
        *,
        config: MachineConfig | None = None,
        directory: DirectoryState | None = None,
    ) -> dict[str, float]:
        """Total bandwidth per point in decimal GB/s, ``{label: GB/s}``.

        On the ``"vector"`` backend this reads the totals straight off
        the column batch — the common consumer path (experiments, the
        SSB cost model) never materializes a result object.
        """
        if self.backend == "vector":
            labels, columns = self.run_columns(
                grid, config=config, directory=directory
            )
            return dict(zip(labels, columns.total_gbps()))
        return {
            label: result.total_gbps
            for label, result in self.run(
                grid, config=config, directory=directory
            ).items()
        }
