"""Caches for the evaluation service: in-memory memo and on-disk store.

Both caches key on the *content* of an evaluation request — the
:class:`~repro.memsim.config.MachineConfig`, the stream tuple, and the
(normalized) :class:`~repro.memsim.config.DirectoryState`. The memo
cache uses the values' own hashes; the disk cache serializes the request
to canonical JSON and keys files by its SHA-256. Results round-trip the
disk format bit-identically: Python's JSON encoder emits ``repr(float)``
(shortest round-tripping form), so every ``float`` survives exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.memsim.address import DaxMode
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.counters import PerfCounters
from repro.memsim.evaluation import BandwidthResult, StreamResult
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind

#: One evaluation request: (config, streams, normalized directory).
CacheKey = tuple[MachineConfig, tuple[StreamSpec, ...], DirectoryState]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`~repro.sweep.EvaluationService`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total evaluation requests seen (count, not bytes)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a cache, 0..1."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def describe(self) -> str:
        line = (
            f"evaluation cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100.0:.1f}% hit rate)"
        )
        if self.disk_hits:
            line += f", {self.disk_hits} served from disk"
        return line


class MemoCache:
    """Thread-safe in-memory result store keyed by request content."""

    def __init__(self) -> None:
        self._results: dict[CacheKey, BandwidthResult] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: CacheKey) -> BandwidthResult | None:
        with self._lock:
            return self._results.get(key)

    def put(self, key: CacheKey, result: BandwidthResult) -> None:
        with self._lock:
            self._results[key] = result

    def clear(self) -> None:
        with self._lock:
            self._results.clear()


# ----------------------------------------------------------------------
# canonical JSON encoding (disk keys and payloads)
# ----------------------------------------------------------------------


def _jsonable(value: object) -> object:
    """Fallback encoder for the non-JSON types inside memsim dataclasses."""
    if isinstance(value, (Op, Pattern, Layout, PinningPolicy, MediaKind, DaxMode)):
        return value.value
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise ConfigurationError(f"cannot serialize {type(value).__name__} for the cache")


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, default=_jsonable)


def request_digest(
    config: MachineConfig,
    streams: tuple[StreamSpec, ...],
    directory: DirectoryState,
) -> str:
    """SHA-256 hex digest of the canonical JSON form of a request."""
    payload = {
        "config": dataclasses.asdict(config),
        "streams": [dataclasses.asdict(s) for s in streams],
        "directory": sorted(directory.warm_pairs),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def result_to_payload(result: BandwidthResult) -> dict[str, object]:
    """JSON-ready form of a :class:`BandwidthResult` (floats exact)."""
    return {
        "streams": [
            {
                "spec": dataclasses.asdict(s.spec),
                "gbps": s.gbps,
                "solo_gbps": s.solo_gbps,
                "notes": list(s.notes),
            }
            for s in result.streams
        ],
        "counters": dataclasses.asdict(result.counters),
        "directory_after": (
            None
            if result.directory_after is None
            else sorted(result.directory_after.warm_pairs)
        ),
    }


def _spec_from_payload(payload: dict[str, object]) -> StreamSpec:
    return StreamSpec(
        op=Op(payload["op"]),
        threads=int(payload["threads"]),  # type: ignore[arg-type]
        access_size=int(payload["access_size"]),  # type: ignore[arg-type]
        media=MediaKind(payload["media"]),
        pattern=Pattern(payload["pattern"]),
        layout=Layout(payload["layout"]),
        pinning=PinningPolicy(payload["pinning"]),
        issuing_socket=int(payload["issuing_socket"]),  # type: ignore[arg-type]
        target_socket=int(payload["target_socket"]),  # type: ignore[arg-type]
        region_bytes=int(payload["region_bytes"]),  # type: ignore[arg-type]
        total_bytes=int(payload["total_bytes"]),  # type: ignore[arg-type]
        dax_mode=DaxMode(payload["dax_mode"]),
        prefaulted=bool(payload["prefaulted"]),
    )


def result_from_payload(payload: dict[str, object]) -> BandwidthResult:
    """Inverse of :func:`result_to_payload`."""
    streams = tuple(
        StreamResult(
            spec=_spec_from_payload(entry["spec"]),
            gbps=entry["gbps"],
            solo_gbps=entry["solo_gbps"],
            notes=tuple(entry["notes"]),
        )
        for entry in payload["streams"]  # type: ignore[union-attr]
    )
    counters_payload = dict(payload["counters"])  # type: ignore[arg-type]
    counters_payload["notes"] = list(counters_payload.get("notes", []))
    directory_after = payload.get("directory_after")
    return BandwidthResult(
        streams=streams,
        counters=PerfCounters(**counters_payload),
        directory_after=(
            None
            if directory_after is None
            else DirectoryState(frozenset(
                (pair[0], pair[1]) for pair in directory_after  # type: ignore[union-attr]
            ))
        ),
    )


class DiskCache:
    """On-disk result store: one JSON file per request digest.

    Layout: ``<root>/<digest[:2]>/<digest>.json``. Entries written by a
    previous process are picked up transparently, which is what makes
    ``repro run --cache-dir`` useful across invocations. Corrupt or
    truncated entries are treated as misses and overwritten.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cache directory {self.root} is not usable: {exc}"
            ) from exc

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> BandwidthResult | None:
        path = self._path(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            return result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, digest: str, result: BandwidthResult) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(_canonical(result_to_payload(result)), encoding="utf-8")
        tmp.replace(path)
