"""Caches for the evaluation service: in-memory memo and on-disk store.

Both caches key on the *content* of an evaluation request — the
:class:`~repro.memsim.config.MachineConfig`, the stream tuple, and the
(normalized) :class:`~repro.memsim.config.DirectoryState`. The memo
cache uses the values' own hashes; the disk cache serializes the request
to canonical JSON and keys by its SHA-256. Results round-trip the disk
format bit-identically: Python's JSON encoder emits ``repr(float)``
(shortest round-tripping form), so every ``float`` survives exactly.

**Schema v2 — content-addressed column blocks.** A whole batch of
results is stored as one :class:`~repro.memsim.kernels.ResultColumns`
block file, content-addressed by the SHA-256 of its member request
digests, plus small per-prefix index shards mapping each request digest
to ``(block, row)``. A grid of hundreds of points becomes one block
write instead of hundreds of entry writes — the access-granularity
lesson of the source paper applied to the cache's own I/O. Both caches
store *references* into shared column batches wherever a batch exists;
per-point :class:`BandwidthResult` objects are materialized lazily as
views on delivery. Legacy v1 per-point entries are never read (a miss)
and are retired as their digests are rewritten into blocks.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError, SchemaError
from repro.memsim.address import DaxMode
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.counters import PerfCounters
from repro.memsim.evaluation import BandwidthResult, StreamResult
from repro.memsim.kernels import COUNTER_COLUMNS, ResultColumns
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind

#: One evaluation request: (config, streams, normalized directory).
CacheKey = tuple[MachineConfig, tuple[StreamSpec, ...], DirectoryState]

#: A cached result: either a standalone object or a row reference into a
#: shared column batch (materialized lazily via ``columns.view(row)``).
CacheValue = BandwidthResult | tuple[ResultColumns, int]


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`~repro.sweep.EvaluationService`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total evaluation requests seen (count, not bytes)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a cache, 0..1."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def describe(self) -> str:
        line = (
            f"evaluation cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100.0:.1f}% hit rate)"
        )
        if self.disk_hits:
            line += f", {self.disk_hits} served from disk"
        return line


class MemoCache:
    """Thread-safe in-memory result store keyed by request content.

    Values are :data:`CacheValue`: a grid evaluation memoizes
    ``(columns, row)`` references into its shared batch so that priming
    a thousand-point sweep costs zero per-point object construction; the
    per-point path still stores plain results. The service materializes
    a reference to a view only when the entry is actually delivered.
    """

    def __init__(self) -> None:
        self._results: dict[CacheKey, CacheValue] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: CacheKey) -> CacheValue | None:
        with self._lock:
            return self._results.get(key)

    def put(self, key: CacheKey, result: CacheValue) -> None:
        with self._lock:
            self._results[key] = result

    def clear(self) -> None:
        with self._lock:
            self._results.clear()


# ----------------------------------------------------------------------
# canonical JSON encoding (disk keys and payloads)
# ----------------------------------------------------------------------


def _jsonable(value: object) -> object:
    """Fallback encoder for the non-JSON types inside memsim dataclasses."""
    if isinstance(value, (Op, Pattern, Layout, PinningPolicy, MediaKind, DaxMode)):
        return value.value
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    raise ConfigurationError(f"cannot serialize {type(value).__name__} for the cache")


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, default=_jsonable)


def request_digest(
    config: MachineConfig,
    streams: tuple[StreamSpec, ...],
    directory: DirectoryState,
) -> str:
    """SHA-256 hex digest of the canonical JSON form of a request."""
    payload = {
        "config": dataclasses.asdict(config),
        "streams": [dataclasses.asdict(s) for s in streams],
        "directory": sorted(directory.warm_pairs),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def result_to_payload(result: BandwidthResult) -> dict[str, object]:
    """JSON-ready form of a :class:`BandwidthResult` (floats exact)."""
    return {
        "streams": [
            {
                "spec": dataclasses.asdict(s.spec),
                "gbps": s.gbps,
                "solo_gbps": s.solo_gbps,
                "notes": list(s.notes),
            }
            for s in result.streams
        ],
        "counters": dataclasses.asdict(result.counters),
        "directory_after": (
            None
            if result.directory_after is None
            else sorted(result.directory_after.warm_pairs)
        ),
    }


def _spec_from_payload(payload: dict[str, object]) -> StreamSpec:
    return StreamSpec(
        op=Op(payload["op"]),
        threads=int(payload["threads"]),  # type: ignore[arg-type]
        access_size=int(payload["access_size"]),  # type: ignore[arg-type]
        media=MediaKind(payload["media"]),
        pattern=Pattern(payload["pattern"]),
        layout=Layout(payload["layout"]),
        pinning=PinningPolicy(payload["pinning"]),
        issuing_socket=int(payload["issuing_socket"]),  # type: ignore[arg-type]
        target_socket=int(payload["target_socket"]),  # type: ignore[arg-type]
        region_bytes=int(payload["region_bytes"]),  # type: ignore[arg-type]
        total_bytes=int(payload["total_bytes"]),  # type: ignore[arg-type]
        dax_mode=DaxMode(payload["dax_mode"]),
        prefaulted=bool(payload["prefaulted"]),
    )


def result_from_payload(payload: dict[str, object]) -> BandwidthResult:
    """Inverse of :func:`result_to_payload`."""
    streams = tuple(
        StreamResult(
            spec=_spec_from_payload(entry["spec"]),
            gbps=entry["gbps"],
            solo_gbps=entry["solo_gbps"],
            notes=tuple(entry["notes"]),
        )
        for entry in payload["streams"]  # type: ignore[union-attr]
    )
    counters_payload = dict(payload["counters"])  # type: ignore[arg-type]
    counters_payload["notes"] = list(counters_payload.get("notes", []))
    directory_after = payload.get("directory_after")
    return BandwidthResult(
        streams=streams,
        counters=PerfCounters(**counters_payload),
        directory_after=(
            None
            if directory_after is None
            else DirectoryState(frozenset(
                (pair[0], pair[1]) for pair in directory_after  # type: ignore[union-attr]
            ))
        ),
    )


#: Disk schema identifier; bumping it orphans every existing entry.
CACHE_SCHEMA = "repro.sweep.cache/2"


def columns_to_payload(
    columns: ResultColumns,
    digests: Sequence[str] | None = None,
) -> dict[str, object]:
    """JSON-ready structure-of-arrays form of a column batch.

    Floats stay exact (``repr`` round-trip); ``digests``, when given,
    records which request digest each row answers — the load path
    cross-checks it so an index shard pointing at the wrong block (or a
    stale block) reads as a miss, never as a wrong result.
    """
    payload: dict[str, object] = {
        "schema": CACHE_SCHEMA,
        "offsets": list(columns.offsets),
        "streams": {
            "specs": [dataclasses.asdict(spec) for spec in columns.specs],
            "gbps": list(columns.gbps),
            "solo_gbps": list(columns.solo_gbps),
            "notes": [list(notes) for notes in columns.stream_notes],
        },
        "counters": {
            name: list(getattr(columns, name)) for name in COUNTER_COLUMNS
        },
        "counter_notes": [list(notes) for notes in columns.counter_notes],
        "directory_after": [
            None if state is None else sorted(state.warm_pairs)
            for state in columns.directory_after
        ],
    }
    if digests is not None:
        payload["digests"] = list(digests)
    return payload


def columns_from_payload(payload: dict[str, object]) -> ResultColumns:
    """Inverse of :func:`columns_to_payload`, validating the shape.

    Raises :class:`~repro.errors.SchemaError` (or ``KeyError``/
    ``TypeError``/``ValueError`` from the primitive conversions) on any
    structural inconsistency (wrong schema, ragged columns, non-monotonic offsets);
    the disk cache maps those to a miss.
    """
    if payload.get("schema") != CACHE_SCHEMA:
        raise SchemaError(f"unknown cache schema: {payload.get('schema')!r}")
    offsets = [int(value) for value in payload["offsets"]]
    if not offsets or offsets[0] != 0:
        raise SchemaError("offsets must start at 0")
    if any(b < a for a, b in zip(offsets, offsets[1:])):
        raise SchemaError("offsets must be non-decreasing")
    n = len(offsets) - 1
    total = offsets[-1]
    streams = payload["streams"]
    counters = payload["counters"]
    columns = ResultColumns()
    columns.offsets = offsets
    columns.specs = [_spec_from_payload(entry) for entry in streams["specs"]]
    columns.gbps = list(streams["gbps"])
    columns.solo_gbps = list(streams["solo_gbps"])
    columns.stream_notes = [tuple(notes) for notes in streams["notes"]]
    for name in ("specs", "gbps", "solo_gbps", "stream_notes"):
        if len(getattr(columns, name)) != total:
            raise SchemaError(f"stream column {name!r} does not match offsets")
    for name in COUNTER_COLUMNS:
        column = list(counters[name])
        if len(column) != n:
            raise SchemaError(f"counter column {name!r} does not match offsets")
        setattr(columns, name, column)
    columns.counter_notes = [tuple(notes) for notes in payload["counter_notes"]]
    columns.directory_after = [
        None
        if pairs is None
        else DirectoryState(frozenset((pair[0], pair[1]) for pair in pairs))
        for pairs in payload["directory_after"]
    ]
    if len(columns.counter_notes) != n or len(columns.directory_after) != n:
        raise SchemaError("per-point columns do not match offsets")
    columns._views = [None] * n
    return columns


def block_digest(digests: Iterable[str]) -> str:
    """Content address of a block: SHA-256 over its member digests.

    Deterministic in the digests alone, so re-computing the same batch
    rewrites the same block file (which is how a corrupted block heals).
    """
    return hashlib.sha256("\n".join(digests).encode("utf-8")).hexdigest()


class DiskCache:
    """On-disk columnar result store (schema v2).

    Layout::

        <root>/blocks/<bd[:2]>/<bd>.json   one ResultColumns batch,
                                           content-addressed by
                                           :func:`block_digest`
        <root>/index/<digest[:2]>.json     shard mapping request digest
                                           -> [block digest, row]

    Entries written by a previous process are picked up transparently,
    which is what makes ``repro run --cache-dir`` useful across
    invocations. Corrupt, truncated, or legacy (v1 per-point, stored at
    ``<root>/<digest[:2]>/<digest>.json`` — never read) entries are
    treated as misses; recomputing rewrites them as column blocks.

    Loaded blocks are kept in memory so a sweep resolving hundreds of
    digests against one block parses it once.
    """

    SCHEMA = CACHE_SCHEMA

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cache directory {self.root} is not usable: {exc}"
            ) from exc
        #: block digest -> (columns, member request digests)
        self._blocks: dict[str, tuple[ResultColumns, list[str]]] = {}
        self._lock = threading.Lock()

    def _block_path(self, digest: str) -> Path:
        return self.root / "blocks" / digest[:2] / f"{digest}.json"

    def _index_path(self, digest: str) -> Path:
        return self.root / "index" / f"{digest[:2]}.json"

    def _legacy_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    @contextlib.contextmanager
    def _shard_lock(self, prefix: str) -> Iterator[None]:
        """Exclusive advisory lock for one index shard's read-merge-write.

        Shards are shared files: without the lock, two pool workers
        merging the same shard concurrently would each read the old
        shard and the last writer would silently drop the other's new
        entries (a lost update, surfacing as warm-run cache misses).
        ``flock`` is per-open-file, so threads and processes both
        serialize here; on platforms without ``fcntl`` the merge runs
        unlocked, degrading to the racy-but-atomic behavior.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        path = self.root / "index" / f".{prefix}.lock"
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            handle = open(path, "w", encoding="utf-8")
        except OSError as exc:  # pragma: no cover - permissions only
            raise ConfigurationError(
                f"could not lock cache index shard {path}: {exc}"
            ) from exc
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            handle.close()  # closing releases the flock

    def _load_block(self, digest: str) -> tuple[ResultColumns, list[str]] | None:
        with self._lock:
            cached = self._blocks.get(digest)
        if cached is not None:
            return cached
        try:
            payload = json.loads(self._block_path(digest).read_text(encoding="utf-8"))
            columns = columns_from_payload(payload)
            members = [str(entry) for entry in payload["digests"]]
        except (OSError, KeyError, TypeError, ValueError, SchemaError):
            return None
        if len(members) != len(columns):
            return None
        loaded = (columns, members)
        with self._lock:
            self._blocks[digest] = loaded
        return loaded

    def get_ref(self, digest: str) -> tuple[ResultColumns, int] | None:
        """Resolve a request digest to ``(columns, row)``, or a miss.

        The row's recorded digest must match the request's: an index
        shard pointing into the wrong or stale block is a miss.
        """
        try:
            shard = json.loads(self._index_path(digest).read_text(encoding="utf-8"))
            if shard.get("schema") != CACHE_SCHEMA:
                return None
            entry = shard["entries"].get(digest)
        except (OSError, AttributeError, KeyError, TypeError, ValueError):
            return None
        if entry is None:
            return None
        try:
            block, row = str(entry[0]), int(entry[1])
        except (IndexError, TypeError, ValueError):
            return None
        loaded = self._load_block(block)
        if loaded is None:
            return None
        columns, members = loaded
        if not 0 <= row < len(columns) or members[row] != digest:
            return None
        return columns, row

    def get(self, digest: str) -> BandwidthResult | None:
        """Materialized view of the cached result, or ``None``.

        The returned object is a shared lazy view; callers that mutate
        results (the evaluation service annotates counters) must copy
        first — :meth:`EvaluationService._deliver` always does.
        """
        ref = self.get_ref(digest)
        if ref is None:
            return None
        columns, row = ref
        return columns.view(row)

    def put(self, digest: str, result: BandwidthResult) -> None:
        """Store one result (a single-row block)."""
        self.put_columns([digest], ResultColumns.from_results([result]))

    def put_columns(self, digests: Sequence[str], columns: ResultColumns) -> None:
        """Store a whole batch as one content-addressed block.

        One block write plus one index-shard rewrite per distinct digest
        prefix — for a dense sweep axis that is two or three files
        instead of hundreds. Writes are tmp-then-replace atomic, so
        concurrent readers (other worker processes) never see a torn
        entry; index shards merge read-modify-write under a per-shard
        advisory lock (:meth:`_shard_lock`), so concurrent writers
        union their entries instead of losing the race.
        """
        if not digests:
            return
        if len(digests) != len(columns):
            raise ConfigurationError(
                f"{len(digests)} digests for {len(columns)} column rows"
            )
        block = block_digest(digests)
        block_path = self._block_path(block)
        block_path.parent.mkdir(parents=True, exist_ok=True)
        # pid-unique tmp name: concurrent writers of the same block must
        # not interleave writes into one shared tmp file.
        tmp = block_path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(
            _canonical(columns_to_payload(columns, digests)), encoding="utf-8"
        )
        tmp.replace(block_path)
        with self._lock:
            self._blocks[block] = (columns, list(digests))
        by_shard: dict[str, dict[str, list[object]]] = {}
        for row, digest in enumerate(digests):
            by_shard.setdefault(digest[:2], {})[digest] = [block, row]
        for prefix, entries in by_shard.items():
            path = self.root / "index" / f"{prefix}.json"
            with self._shard_lock(prefix):
                merged: dict[str, object] = {}
                try:
                    shard = json.loads(path.read_text(encoding="utf-8"))
                    if shard.get("schema") == CACHE_SCHEMA:
                        merged = dict(shard["entries"])
                except (OSError, AttributeError, KeyError, TypeError, ValueError):
                    merged = {}
                merged.update(entries)
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".{os.getpid()}.tmp")
                tmp.write_text(
                    _canonical({"schema": CACHE_SCHEMA, "entries": merged}),
                    encoding="utf-8",
                )
                tmp.replace(path)
        for digest in digests:
            # Retire any v1 per-point entry this digest used to live in
            # (missing_ok: a racing process may have removed it already).
            legacy = self._legacy_path(digest)
            try:
                legacy.unlink(missing_ok=True)
            except OSError as exc:  # pragma: no cover - permissions only
                raise ConfigurationError(
                    f"could not retire legacy cache entry {legacy}: {exc}"
                ) from exc
