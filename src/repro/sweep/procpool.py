"""Process-pool sweep backend: real multicore fan-out for pure Python.

One analytic evaluation is microseconds of pure Python, so a thread pool
gains nothing — the GIL serialises the arithmetic. A process pool does
scale, provided the per-point overhead is kept away from the hot path:

* **Chunking** — grid points are shipped in contiguous chunks (about
  :data:`_CHUNKS_PER_WORKER` per worker), so pickling and queue traffic
  amortise over many evaluations while stragglers can still steal work.
* **Config shipped once** — the :class:`~repro.memsim.config.MachineConfig`
  and directory state travel in the pool *initializer*, not with every
  task; workers derive their own per-config
  :class:`~repro.memsim.context.EvalContext` on first use.
* **Per-worker services** — each worker owns a memoizing
  :class:`~repro.sweep.service.EvaluationService`. If the parent service
  is disk-backed, workers attach to the same directory (the disk format
  uses atomic writes, so concurrent processes are safe) and results are
  reusable across the pool and across runs.

Determinism and accounting survive the boundary:

* Results are assembled **by point label in grid order**, so
  ``backend="process"`` is bit-identical to serial regardless of
  completion order (property-tested in ``tests/sweep/test_procpool.py``).
* A failing point raises :class:`~repro.errors.SweepError` naming the
  grid and the point label. Pickling drops ``__cause__`` chains, so the
  worker embeds the original error text in the message; infrastructure
  failures (unpicklable payloads, a died worker) are wrapped in a
  parent-side chained ``SweepError`` instead of hanging.
* Worker-side counters are accumulated in a per-chunk
  :class:`~repro.obs.CountersRecorder` and its **snapshot** is merged
  into the parent recorder (:func:`repro.obs.merge_snapshot`) — sending
  a snapshot per chunk costs one small dict instead of a stream of IPC
  messages per counter increment, and the histogram monoid
  (count/total/min/max) merges exactly. Cache hit/miss tallies fold into
  the parent service's :class:`~repro.sweep.cache.CacheStats` the same
  way, so ``--metrics`` accounts for every point.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import GridPointError, SweepError
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.evaluation import BandwidthResult
from repro.memsim.kernels import ResultColumns
from repro.obs import (
    NULL_RECORDER,
    CountersRecorder,
    Recorder,
    merge_snapshot,
    set_default_recorder,
)
from repro.sweep.cache import DiskCache
from repro.sweep.service import EvaluationService
from repro.workloads.grids import SweepGrid, SweepPoint

#: Target chunks per worker. More chunks balance load better when some
#: points are much slower than others; fewer chunks amortise pickling
#: better. Four keeps both effects small for the paper's 88-point grids.
_CHUNKS_PER_WORKER = 4

#: Per-process worker state, installed by the pool initializer.
_WORKER: "_WorkerState | None" = None


@dataclass
class _WorkerState:
    """Everything a worker process needs, shipped once at pool start."""

    config: MachineConfig
    directory: DirectoryState
    grid_name: str
    service: EvaluationService
    observing: bool


def _init_worker(
    config: MachineConfig,
    directory: DirectoryState,
    grid_name: str,
    cache_root: str | None,
    observing: bool,
) -> None:
    """Pool initializer: build this worker's service and pin the inputs."""
    global _WORKER
    # Forked children inherit the parent's default recorder; evaluations
    # here report through explicit per-chunk recorders instead.
    set_default_recorder(None)
    disk = DiskCache(cache_root) if cache_root is not None else None
    _WORKER = _WorkerState(
        config=config,
        directory=directory,
        grid_name=grid_name,
        service=EvaluationService(disk_cache=disk),
        observing=observing,
    )


def _run_chunk_columns(
    points: tuple[SweepPoint, ...],
) -> tuple[ResultColumns, dict[str, object] | None, tuple[int, int, int]]:
    """Evaluate one chunk batched; return columns, snapshot, stats delta.

    The chunk's results cross back to the parent as one pickled column
    block — structure-of-arrays over the wire, never an object list. A
    failing point raises :class:`~repro.errors.GridPointError` with the
    chunk-local index and partial batch; it pickles intact (the parent
    rebases both to the whole grid).
    """
    worker = _WORKER
    if worker is None:  # pragma: no cover - initializer always runs first
        raise SweepError("process-pool worker used before initialization")
    rec = CountersRecorder() if worker.observing else None
    sink: Recorder = rec if rec is not None else NULL_RECORDER
    stats = worker.service.stats
    hits0, misses0, disk0 = stats.hits, stats.misses, stats.disk_hits
    started = time.perf_counter() if rec is not None else 0.0
    columns = worker.service.evaluate_grid_columns(
        worker.config,
        [point.streams for point in points],
        worker.directory,
        recorder=sink,
        labels=[point.label for point in points],
        grid_name=worker.grid_name,
    )
    if rec is not None:
        rec.incr("sweep.points_count", len(points))
        mean = (time.perf_counter() - started) / len(points)
        for _ in points:
            rec.observe("sweep.point.wall_seconds", mean)
    delta = (stats.hits - hits0, stats.misses - misses0, stats.disk_hits - disk0)
    return columns, (rec.snapshot() if rec is not None else None), delta


def _run_chunk(
    points: tuple[SweepPoint, ...],
) -> tuple[
    list[tuple[str, BandwidthResult]],
    dict[str, object] | None,
    tuple[int, int, int],
]:
    """Evaluate one chunk; return results, counters snapshot, stats delta."""
    worker = _WORKER
    if worker is None:  # pragma: no cover - initializer always runs first
        raise SweepError("process-pool worker used before initialization")
    rec = CountersRecorder() if worker.observing else None
    sink: Recorder = rec if rec is not None else NULL_RECORDER
    stats = worker.service.stats
    hits0, misses0, disk0 = stats.hits, stats.misses, stats.disk_hits
    results: list[tuple[str, BandwidthResult]] = []
    for point in points:
        started = time.perf_counter() if rec is not None else 0.0
        try:
            result = worker.service.evaluate(
                worker.config, point.streams, worker.directory, recorder=sink
            )
        except SweepError:
            raise
        except Exception as exc:
            # Chains do not survive pickling back to the parent, so the
            # original error's text is embedded in the message; the format
            # matches the serial/thread path in repro.sweep.runner.
            raise SweepError(
                f"sweep {worker.grid_name!r} point {point.label!r} failed: {exc}"
            ) from exc
        if rec is not None:
            rec.incr("sweep.points_count")
            rec.observe("sweep.point.wall_seconds", time.perf_counter() - started)
        results.append((point.label, result))
    delta = (stats.hits - hits0, stats.misses - misses0, stats.disk_hits - disk0)
    return results, (rec.snapshot() if rec is not None else None), delta


def _chunked(
    points: list[SweepPoint], jobs: int
) -> list[tuple[SweepPoint, ...]]:
    """Split ``points`` into contiguous chunks, deterministically."""
    size = max(1, math.ceil(len(points) / (jobs * _CHUNKS_PER_WORKER)))
    return [tuple(points[i : i + size]) for i in range(0, len(points), size)]


def run_grid(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    jobs: int,
    service: EvaluationService,
    recorder: Recorder,
) -> dict[str, BandwidthResult]:
    """Evaluate ``points`` across a process pool; ``{label: result}``.

    The returned dict is in grid order and bit-identical to the serial
    path. Worker counters and cache statistics are folded into
    ``recorder`` and ``service.stats`` so observability reflects the
    whole sweep, not just the parent process. The vector backend goes
    through :func:`run_grid_columns` instead, which ships column blocks
    rather than object lists.
    """
    observing = recorder.enabled
    disk = service.disk_cache
    cache_root = str(disk.root) if disk is not None else None
    merged: dict[str, BandwidthResult] = {}
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(config, directory, grid.name, cache_root, observing),
    ) as pool:
        futures = [pool.submit(_run_chunk, chunk) for chunk in _chunked(points, jobs)]
        try:
            # Futures are consumed in submission order == grid order, so
            # the first error surfaced is the first poisoned point, same
            # as serial execution.
            for future in futures:
                chunk_results, snapshot, (hits, misses, disk_hits) = future.result()
                for label, result in chunk_results:
                    merged[label] = result
                if snapshot is not None:
                    merge_snapshot(recorder, snapshot)
                service.stats.hits += hits
                service.stats.misses += misses
                service.stats.disk_hits += disk_hits
        except SweepError:
            for pending in futures:
                pending.cancel()
            raise
        except Exception as exc:
            # Unpicklable payloads, a worker killed mid-chunk, a broken
            # pool: surface a chained SweepError instead of a hang or an
            # anonymous traceback.
            for pending in futures:
                pending.cancel()
            raise SweepError(
                f"sweep {grid.name!r} failed in a worker process: {exc}"
            ) from exc
    return {point.label: merged[point.label] for point in points}


def run_grid_columns(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    jobs: int,
    service: EvaluationService,
    recorder: Recorder,
) -> tuple[list[str], ResultColumns]:
    """Evaluate ``points`` across a process pool into one column batch.

    Each worker evaluates its chunk through the service's batched
    columnar evaluator and ships the chunk back as a single pickled
    column block; the parent concatenates blocks in submission order ==
    grid order, so the batch is bit-identical to serial. Counters and
    cache statistics fold into ``recorder``/``service.stats`` exactly as
    :func:`run_grid` does.

    A poisoned point surfaces as a
    :class:`~repro.errors.GridPointError` whose index and partial batch
    are rebased from the failing chunk to the whole grid: the partial
    holds every point of the chunks fully merged before the failure plus
    the failing chunk's own completed prefix.
    """
    observing = recorder.enabled
    disk = service.disk_cache
    cache_root = str(disk.root) if disk is not None else None
    out = ResultColumns()
    chunks = _chunked(points, jobs)
    base = 0
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(config, directory, grid.name, cache_root, observing),
    ) as pool:
        futures = [pool.submit(_run_chunk_columns, chunk) for chunk in chunks]
        try:
            # Futures are consumed in submission order == grid order, so
            # the first error surfaced is the first poisoned point, same
            # as serial execution — and ``base``/``out`` describe exactly
            # the grid prefix completed before it.
            for chunk, future in zip(chunks, futures):
                columns, snapshot, (hits, misses, disk_hits) = future.result()
                out.extend(columns)
                if snapshot is not None:
                    merge_snapshot(recorder, snapshot)
                service.stats.hits += hits
                service.stats.misses += misses
                service.stats.disk_hits += disk_hits
                base += len(chunk)
        except GridPointError as exc:
            for pending in futures:
                pending.cancel()
            # Chains do not survive pickling, so the worker's error is
            # already self-contained; rebase its chunk-local index and
            # partial batch onto the grid.
            if isinstance(exc.partial, ResultColumns):
                out.extend(exc.partial)
            raise GridPointError(
                base + exc.index,
                exc.original,
                label=exc.label,
                grid=exc.grid,
                partial=out,
            ) from exc
        except SweepError:
            for pending in futures:
                pending.cancel()
            raise
        except Exception as exc:
            # Unpicklable payloads, a worker killed mid-chunk, a broken
            # pool: surface a chained SweepError instead of a hang or an
            # anonymous traceback.
            for pending in futures:
                pending.cancel()
            raise SweepError(
                f"sweep {grid.name!r} failed in a worker process: {exc}"
            ) from exc
    return [point.label for point in points], out
