"""Process-pool sweep backend: real multicore fan-out for pure Python.

One analytic evaluation is microseconds of pure Python, so a thread pool
gains nothing — the GIL serialises the arithmetic. A process pool does
scale, provided the per-point overhead is kept away from the hot path:

* **Chunking** — grid points are shipped in contiguous chunks (about
  :data:`_CHUNKS_PER_WORKER` per worker), so pickling and queue traffic
  amortise over many evaluations while stragglers can still steal work.
* **Config shipped once** — the :class:`~repro.memsim.config.MachineConfig`
  and directory state travel in the pool *initializer*, not with every
  task; workers derive their own per-config
  :class:`~repro.memsim.context.EvalContext` on first use.
* **Per-worker services** — each worker owns a memoizing
  :class:`~repro.sweep.service.EvaluationService`. If the parent service
  is disk-backed, workers attach to the same directory (the disk format
  uses atomic writes, so concurrent processes are safe) and results are
  reusable across the pool and across runs.

Determinism and accounting survive the boundary:

* Results are assembled **by point label in grid order**, so
  ``backend="process"`` is bit-identical to serial regardless of
  completion order (property-tested in ``tests/sweep/test_procpool.py``).
* A failing point raises :class:`~repro.errors.SweepError` naming the
  grid and the point label. Pickling drops ``__cause__`` chains, so the
  worker embeds the original error text in the message; infrastructure
  failures (unpicklable payloads, a died worker) are wrapped in a
  parent-side chained ``SweepError`` instead of hanging.
* Worker-side counters are accumulated in a per-chunk
  :class:`~repro.obs.CountersRecorder` and its **snapshot** is merged
  into the parent recorder (:func:`repro.obs.merge_snapshot`) — sending
  a snapshot per chunk costs one small dict instead of a stream of IPC
  messages per counter increment, and the histogram monoid
  (count/total/min/max) merges exactly. Cache hit/miss tallies fold into
  the parent service's :class:`~repro.sweep.cache.CacheStats` the same
  way, so ``--metrics`` accounts for every point.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import SweepError
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.evaluation import BandwidthResult
from repro.obs import (
    NULL_RECORDER,
    CountersRecorder,
    Recorder,
    merge_snapshot,
    set_default_recorder,
)
from repro.sweep.cache import DiskCache
from repro.sweep.service import EvaluationService, GridPointError
from repro.workloads.grids import SweepGrid, SweepPoint

#: Target chunks per worker. More chunks balance load better when some
#: points are much slower than others; fewer chunks amortise pickling
#: better. Four keeps both effects small for the paper's 88-point grids.
_CHUNKS_PER_WORKER = 4

#: Per-process worker state, installed by the pool initializer.
_WORKER: "_WorkerState | None" = None


@dataclass
class _WorkerState:
    """Everything a worker process needs, shipped once at pool start."""

    config: MachineConfig
    directory: DirectoryState
    grid_name: str
    service: EvaluationService
    observing: bool
    vector: bool


def _init_worker(
    config: MachineConfig,
    directory: DirectoryState,
    grid_name: str,
    cache_root: str | None,
    observing: bool,
    vector: bool,
) -> None:
    """Pool initializer: build this worker's service and pin the inputs."""
    global _WORKER
    # Forked children inherit the parent's default recorder; evaluations
    # here report through explicit per-chunk recorders instead.
    set_default_recorder(None)
    disk = DiskCache(cache_root) if cache_root is not None else None
    _WORKER = _WorkerState(
        config=config,
        directory=directory,
        grid_name=grid_name,
        service=EvaluationService(disk_cache=disk),
        observing=observing,
        vector=vector,
    )


def _run_chunk(
    points: tuple[SweepPoint, ...],
) -> tuple[
    list[tuple[str, BandwidthResult]],
    dict[str, object] | None,
    tuple[int, int, int],
]:
    """Evaluate one chunk; return results, counters snapshot, stats delta."""
    worker = _WORKER
    if worker is None:  # pragma: no cover - initializer always runs first
        raise SweepError("process-pool worker used before initialization")
    rec = CountersRecorder() if worker.observing else None
    sink: Recorder = rec if rec is not None else NULL_RECORDER
    stats = worker.service.stats
    hits0, misses0, disk0 = stats.hits, stats.misses, stats.disk_hits
    results: list[tuple[str, BandwidthResult]] = []
    if worker.vector:
        started = time.perf_counter() if rec is not None else 0.0
        try:
            outcomes = worker.service.evaluate_grid(
                worker.config,
                [point.streams for point in points],
                worker.directory,
                recorder=sink,
            )
        except GridPointError as exc:
            # Chains do not survive pickling back to the parent (see the
            # scalar loop below); embed the original error's text.
            point = points[exc.index]
            raise SweepError(
                f"sweep {worker.grid_name!r} point {point.label!r} failed: "
                f"{exc.original}"
            ) from exc
        if rec is not None:
            rec.incr("sweep.points_count", len(points))
            mean = (time.perf_counter() - started) / len(points)
            for _ in points:
                rec.observe("sweep.point.wall_seconds", mean)
        results.extend(
            (point.label, result) for point, result in zip(points, outcomes)
        )
        delta = (stats.hits - hits0, stats.misses - misses0, stats.disk_hits - disk0)
        return results, (rec.snapshot() if rec is not None else None), delta
    for point in points:
        started = time.perf_counter() if rec is not None else 0.0
        try:
            result = worker.service.evaluate(
                worker.config, point.streams, worker.directory, recorder=sink
            )
        except SweepError:
            raise
        except Exception as exc:
            # Chains do not survive pickling back to the parent, so the
            # original error's text is embedded in the message; the format
            # matches the serial/thread path in repro.sweep.runner.
            raise SweepError(
                f"sweep {worker.grid_name!r} point {point.label!r} failed: {exc}"
            ) from exc
        if rec is not None:
            rec.incr("sweep.points_count")
            rec.observe("sweep.point.wall_seconds", time.perf_counter() - started)
        results.append((point.label, result))
    delta = (stats.hits - hits0, stats.misses - misses0, stats.disk_hits - disk0)
    return results, (rec.snapshot() if rec is not None else None), delta


def _chunked(
    points: list[SweepPoint], jobs: int
) -> list[tuple[SweepPoint, ...]]:
    """Split ``points`` into contiguous chunks, deterministically."""
    size = max(1, math.ceil(len(points) / (jobs * _CHUNKS_PER_WORKER)))
    return [tuple(points[i : i + size]) for i in range(0, len(points), size)]


def run_grid(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    jobs: int,
    service: EvaluationService,
    recorder: Recorder,
    vector: bool = False,
) -> dict[str, BandwidthResult]:
    """Evaluate ``points`` across a process pool; ``{label: result}``.

    The returned dict is in grid order and bit-identical to the serial
    path. Worker counters and cache statistics are folded into
    ``recorder`` and ``service.stats`` so observability reflects the
    whole sweep, not just the parent process. With ``vector=True`` each
    worker evaluates its chunk through the service's batched kernel
    (:meth:`~repro.sweep.service.EvaluationService.evaluate_grid`)
    instead of point-at-a-time.
    """
    observing = recorder.enabled
    disk = service.disk_cache
    cache_root = str(disk.root) if disk is not None else None
    merged: dict[str, BandwidthResult] = {}
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(config, directory, grid.name, cache_root, observing, vector),
    ) as pool:
        futures = [pool.submit(_run_chunk, chunk) for chunk in _chunked(points, jobs)]
        try:
            # Futures are consumed in submission order == grid order, so
            # the first error surfaced is the first poisoned point, same
            # as serial execution.
            for future in futures:
                chunk_results, snapshot, (hits, misses, disk_hits) = future.result()
                for label, result in chunk_results:
                    merged[label] = result
                if snapshot is not None:
                    merge_snapshot(recorder, snapshot)
                service.stats.hits += hits
                service.stats.misses += misses
                service.stats.disk_hits += disk_hits
        except SweepError:
            for pending in futures:
                pending.cancel()
            raise
        except Exception as exc:
            # Unpicklable payloads, a worker killed mid-chunk, a broken
            # pool: surface a chained SweepError instead of a hang or an
            # anonymous traceback.
            for pending in futures:
                pending.cancel()
            raise SweepError(
                f"sweep {grid.name!r} failed in a worker process: {exc}"
            ) from exc
    return {point.label: merged[point.label] for point in points}
