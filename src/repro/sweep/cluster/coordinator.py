"""Cluster sweep coordinator: shards, ships, steals, requeues, merges.

The coordinator owns the whole sweep: it computes every point's request
digest up front, shards the grid into chunks **by content hash** (so a
given point — and any duplicate of it — deterministically lands in the
same chunk regardless of worker count), ships one chunk at a time to
each joined worker, and assembles the returned column rows **by global
index in grid order**, which is what makes ``backend="cluster"``
bit-identical to serial no matter how chunks interleave, steal, or
requeue.

Straggler and fault handling:

* **Work-stealing** — a worker with nothing left to do and nothing
  pending triggers a steal against the victim with the most unfilled
  outstanding points; the victim's *reader* answers immediately (its
  compute may be busy), relinquishing about half of its queued points,
  which the coordinator re-ships to the idle worker as a fresh chunk.
  Revoked points move, they are never duplicated — per-point cache
  accounting stays exact.
* **Heartbeats** — any frame refreshes a worker's deadline; a worker
  silent past the timeout (or whose connection drops) is declared dead,
  its link is closed so late frames can never double-count, and its
  unfilled outstanding points are requeued for the survivors.

The shared cache tier lives here too: a content-addressed map from
request digest to ``(columns, row)``, backed by the parent service's
:class:`~repro.sweep.cache.DiskCache` when one is configured. A point
computed on any worker is published back (``cache_put``) and served to
every other worker (``cache_get``), with the same digests the local
tiers key by — which is why hit/miss accounting carries over unchanged
(see DESIGN.md §7).

Counters and cache statistics fold into the parent exactly as the
process pool's do: per-item snapshots are buffered and merged **in grid
order** at the end (:func:`repro.obs.merge_snapshot`), stats deltas sum
as they arrive, and the coordinator emits the ``cluster.*`` counters for
its own mechanics.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Awaitable, Callable, Sequence

from repro.errors import GridPointError, SweepError
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.kernels import ResultColumns
from repro.obs import Recorder, merge_snapshot
from repro.sweep.cache import DiskCache, request_digest
from repro.sweep.cluster import protocol
from repro.sweep.cluster.config import CHUNKS_PER_WORKER, ClusterOptions
from repro.sweep.service import EvaluationService, request_key
from repro.workloads.grids import SweepPoint

__all__ = ["Coordinator", "SharedCache"]


class SharedCache:
    """Content-addressed shared tier: request digest -> ``(columns, row)``.

    In-memory for the duration of one sweep, optionally backed by the
    coordinator service's :class:`DiskCache` — the *same* content
    addressing the per-worker tiers use, so a digest means the same
    result everywhere. Disk corruption reads as a miss (``get_ref``'s
    contract) and the recompute's ``put`` rewrites the same
    content-addressed block, healing it.
    """

    def __init__(self, disk: DiskCache | None = None) -> None:
        self._memory: dict[str, tuple[ResultColumns, int]] = {}
        self._disk = disk

    def get(self, digest: str) -> tuple[ResultColumns, int] | None:
        found = self._memory.get(digest)
        if found is not None:
            return found
        if self._disk is not None:
            return self._disk.get_ref(digest)
        return None

    def put(self, digests: Sequence[str], columns: ResultColumns) -> None:
        for row, digest in enumerate(digests):
            self._memory.setdefault(digest, (columns, row))
        if self._disk is not None:
            self._disk.put_columns(list(digests), columns)


class _Link:
    """One connected worker."""

    def __init__(
        self,
        link_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        now: float,
    ) -> None:
        self.id = link_id
        self.reader = reader
        self.writer = writer
        #: chunk id -> set of global indices not yet answered.
        self.outstanding: dict[int, set[int]] = {}
        self.last_seen = now
        self.steal_pending = False
        self.alive = True
        self.task: asyncio.Task | None = None

    def unfilled(self) -> int:
        return sum(len(indices) for indices in self.outstanding.values())


class Coordinator:
    """Drives one grid sweep across connected workers.

    Use :meth:`start` (optionally :meth:`dial` for remote peers), then
    :meth:`finish` — or spawn local workers around it via
    :func:`repro.sweep.cluster.backend.run_grid_columns`. ``clock`` and
    ``sleep`` are injectable so the fault tests advance heartbeat
    timeouts on a fake clock in zero wall time.
    """

    def __init__(
        self,
        grid_name: str,
        points: Sequence[SweepPoint],
        *,
        config: MachineConfig,
        directory: DirectoryState,
        service: EvaluationService,
        recorder: Recorder,
        options: ClusterOptions | None = None,
        workers_hint: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self.options = options if options is not None else ClusterOptions()
        self._grid_name = grid_name
        self._points = list(points)
        self._config = config
        self._directory = directory
        self._service = service
        self._recorder = recorder
        self._observing = recorder.enabled
        self._clock = clock
        self._sleep = sleep
        self._digests = [
            request_digest(
                config, point.streams, request_key(config, point.streams, directory)[2]
            )
            for point in self._points
        ]
        self.shared = SharedCache(
            service.disk_cache if self.options.shared_cache else None
        )
        workers = workers_hint if workers_hint is not None else self.options.workers
        self._pending: deque[list[int]] = deque(self._shard(max(1, workers)))
        self._links: dict[int, _Link] = {}
        self._waiting: deque[_Link] = deque()
        self._filled: dict[int, tuple[ResultColumns, int]] = {}
        self._snapshots: list[tuple[int, dict]] = []
        self._failure: tuple[int, Exception, str | None, str | None] | None = None
        self._fatal: SweepError | None = None
        self._finished = asyncio.Event()
        self._next_chunk = 0
        self._next_link = 0
        self._server: asyncio.AbstractServer | None = None
        self._monitor_task: asyncio.Task | None = None
        self._started_at = 0.0
        self._joined = 0

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------

    def _shard(self, workers: int) -> list[list[int]]:
        """Content-hash shards: same point content -> same chunk, always.

        The shard of a point is a pure function of its request digest,
        so duplicate-content points co-locate on one worker and the
        memo there serves them exactly as serial's would.
        """
        n_chunks = max(1, min(len(self._points), workers * CHUNKS_PER_WORKER))
        shards: list[list[int]] = [[] for _ in range(n_chunks)]
        for index, digest in enumerate(self._digests):
            shards[int(digest[:8], 16) % n_chunks].append(index)
        return [shard for shard in shards if shard]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0, sock=None
    ) -> tuple[str, int]:
        """Begin accepting workers; returns the bound address."""
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock, limit=protocol.MAX_FRAME_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host, port, limit=protocol.MAX_FRAME_BYTES
            )
        self._started_at = self._clock()
        self._monitor_task = asyncio.ensure_future(self._monitor())
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def dial(self, host: str, port: int) -> None:
        """Connect out to a standing ``repro worker`` peer."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES
        )
        self._attach(reader, writer)

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._attach(reader, writer)

    def _attach(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_link += 1
        link = _Link(self._next_link, reader, writer, self._clock())
        self._links[link.id] = link
        link.task = asyncio.ensure_future(self._serve_link(link))

    async def finish(self) -> tuple[list[str], ResultColumns]:
        """Wait for the sweep, tear down, and assemble in grid order."""
        if not self._points:
            self._finished.set()
        await self._finished.wait()
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        for link in list(self._links.values()):
            link.alive = False
            try:
                await protocol.send_frame(link.writer, {"kind": "bye"})
            except (ConnectionError, OSError):  # simlint: ignore[silent-except] -- a worker that died after finishing cannot unfinish the sweep
                pass
            link.writer.close()
            if link.task is not None:
                link.task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._fatal is not None:
            raise self._fatal  # simlint: ignore[foreign-raise] -- _fatal is only ever a SweepError
        # Counters merge in grid order — deterministic for a given
        # partitioning, exactly like procpool's submission-order merge.
        if self._observing:
            for _, snapshot in sorted(self._snapshots, key=lambda item: item[0]):
                merge_snapshot(self._recorder, snapshot)
        if self._failure is not None:
            index, original, label, grid = self._failure
            raise GridPointError(
                index, original, label=label, grid=grid,
                partial=self._prefix(stop=index),
            )
        out = ResultColumns()
        for index in range(len(self._points)):
            columns, row = self._filled[index]
            out.append_from(columns, row)
        return [point.label for point in self._points], out

    def _prefix(self, stop: int) -> ResultColumns:
        """The contiguous completed grid prefix, capped at ``stop``."""
        out = ResultColumns()
        for index in range(stop):
            ref = self._filled.get(index)
            if ref is None:
                break
            out.append_from(ref[0], ref[1])
        return out

    # ------------------------------------------------------------------
    # per-link protocol
    # ------------------------------------------------------------------

    async def _serve_link(self, link: _Link) -> None:
        try:
            join = await protocol.read_frame(link.reader)
            if join is None or join.get("kind") != "join":
                raise SweepError("cluster worker did not join")
            if join.get("protocol") != protocol.CLUSTER_PROTOCOL:
                raise SweepError(
                    f"cluster worker speaks {join.get('protocol')!r}, "
                    f"expected {protocol.CLUSTER_PROTOCOL!r}"
                )
            link.last_seen = self._clock()
            self._joined += 1
            if self._observing:
                self._recorder.incr("cluster.workers_count")
            await protocol.send_frame(link.writer, {
                "kind": "hello",
                "protocol": protocol.CLUSTER_PROTOCOL,
                "config": protocol.encode_blob(self._config),
                "directory": protocol.encode_blob(self._directory),
                "grid": self._grid_name,
                "observing": self._observing,
                "shared_cache": self.options.shared_cache,
                "points_per_item": self.options.points_per_item,
                "heartbeat_seconds": self.options.heartbeat_seconds,
            })
            await self._dispatch(link)
            while link.alive:
                frame = await protocol.read_frame(link.reader)
                if frame is None:
                    break
                link.last_seen = self._clock()
                await self._handle(link, frame)
        except (SweepError, ConnectionError, asyncio.IncompleteReadError):  # simlint: ignore[silent-except] -- a broken link is handled below as a dead worker, not an error
            pass
        except asyncio.CancelledError:
            return
        if link.alive and not self._finished.is_set():
            self._on_dead(link)

    async def _handle(self, link: _Link, frame: dict) -> None:
        kind = frame["kind"]
        if kind == "heartbeat":
            if self._observing:
                self._recorder.incr("cluster.heartbeats_count")
        elif kind == "result":
            self._merge_result(link, frame)
            if not link.outstanding:
                await self._dispatch(link)
        elif kind == "stolen":
            await self._on_stolen(link, frame)
        elif kind == "failed":
            self._on_failed(frame)
        elif kind == "cache_get":
            await self._answer_cache_get(link, frame)
        elif kind == "cache_put":
            self.shared.put(
                [str(d) for d in frame["digests"]],
                protocol.decode_blob(frame["columns"]),
            )
        else:
            raise SweepError(f"coordinator got unknown frame kind {kind!r}")

    def _merge_result(self, link: _Link, frame: dict) -> None:
        indices = [int(i) for i in frame["indices"]]
        columns = protocol.decode_blob(frame["columns"])
        for row, index in enumerate(indices):
            # First result wins: a requeue after a late-but-delivered
            # result must not overwrite bit-identical rows (they are
            # identical anyway; first-wins just makes that explicit).
            self._filled.setdefault(index, (columns, row))
        chunk = int(frame["chunk"])
        remaining = link.outstanding.get(chunk)
        if remaining is not None:
            remaining.difference_update(indices)
            if not remaining:
                del link.outstanding[chunk]
        snapshot = frame.get("snapshot")
        if snapshot is not None and indices:
            self._snapshots.append((min(indices), snapshot))
        hits, misses, disk_hits = (int(n) for n in frame["stats"])
        self._service.stats.hits += hits
        self._service.stats.misses += misses
        self._service.stats.disk_hits += disk_hits
        if self._observing:
            self._recorder.observe(
                "cluster.worker.wall_seconds", float(frame["wall"])
            )
        if len(self._filled) == len(self._points):
            self._finished.set()

    def _on_failed(self, frame: dict) -> None:
        partial = protocol.decode_blob(frame["partial"])
        partial_indices = [int(i) for i in frame["partial_indices"]]
        if isinstance(partial, ResultColumns):
            for row, index in enumerate(partial_indices):
                self._filled.setdefault(index, (partial, row))
        if self._failure is None:
            original = protocol.decode_blob(frame["error"])
            if not isinstance(original, Exception):  # defensive: blob abuse
                original = SweepError(str(original))
            label = frame.get("label")
            grid = frame.get("grid")
            self._failure = (
                int(frame["index"]),
                original,
                str(label) if label is not None else None,
                str(grid) if grid is not None else None,
            )
            self._finished.set()

    # ------------------------------------------------------------------
    # dispatch, stealing, requeue
    # ------------------------------------------------------------------

    async def _ship(self, link: _Link, indices: list[int]) -> None:
        self._next_chunk += 1
        chunk = self._next_chunk
        link.outstanding[chunk] = set(indices)
        if self._observing:
            self._recorder.incr("cluster.chunks.shipped_count")
        await protocol.send_frame(link.writer, {
            "kind": "chunk",
            "chunk": chunk,
            "indices": indices,
            "digests": [self._digests[i] for i in indices],
            "points": protocol.encode_blob(
                tuple(self._points[i] for i in indices)
            ),
        })

    async def _dispatch(self, link: _Link) -> None:
        """Give an out-of-work worker its next chunk, or arrange a steal."""
        if self._finished.is_set() or self._failure is not None:
            return
        if self._pending:
            await self._ship(link, self._pending.popleft())
            return
        victim = self._steal_victim()
        if victim is not None:
            victim.steal_pending = True
            self._waiting.append(link)
            await protocol.send_frame(
                victim.writer, {"kind": "steal", "req": link.id}
            )
            return
        self._waiting.append(link)

    def _steal_victim(self) -> _Link | None:
        """The live worker with the most unfilled points worth splitting."""
        best: _Link | None = None
        for link in self._links.values():
            if not link.alive or link.steal_pending:
                continue
            # A victim must hold more than one in-flight item's worth —
            # the executing item cannot be revoked, so anything smaller
            # would answer with an empty steal.
            if link.unfilled() <= self.options.points_per_item:
                continue
            if best is None or link.unfilled() > best.unfilled():
                best = link
        return best

    async def _on_stolen(self, victim: _Link, frame: dict) -> None:
        victim.steal_pending = False
        indices = [int(i) for i in frame["indices"]]
        stolen = [i for i in indices if i not in self._filled]
        for remaining in victim.outstanding.values():
            remaining.difference_update(indices)
        victim.outstanding = {
            chunk: remaining
            for chunk, remaining in victim.outstanding.items()
            if remaining
        }
        if stolen:
            if self._observing:
                self._recorder.incr("cluster.chunks.stolen_count")
            thief = self._next_waiting()
            if thief is not None:
                await self._ship(thief, stolen)
            else:
                self._pending.append(stolen)
        elif self._waiting:
            # The victim drained first; retry dispatch for one waiter
            # (it may find another victim, or genuinely go idle).
            thief = self._next_waiting()
            if thief is not None:
                await self._dispatch(thief)

    def _next_waiting(self) -> _Link | None:
        while self._waiting:
            link = self._waiting.popleft()
            if link.alive and not link.outstanding:
                return link
        return None

    async def _answer_cache_get(self, link: _Link, frame: dict) -> None:
        digests = [str(d) for d in frame["digests"]]
        found: list[str] = []
        rows = ResultColumns()
        for digest in digests:
            ref = self.shared.get(digest)
            if ref is not None:
                found.append(digest)
                rows.append_from(ref[0], ref[1])
        await protocol.send_frame(link.writer, {
            "kind": "cache_found",
            "req": frame["req"],
            "digests": found,
            "columns": protocol.encode_blob(rows) if found else None,
        })

    # ------------------------------------------------------------------
    # death and requeue
    # ------------------------------------------------------------------

    def _on_dead(self, link: _Link) -> None:
        """Close a dead worker's link and requeue its unfilled points."""
        if not link.alive:
            return
        link.alive = False
        self._links.pop(link.id, None)
        link.writer.close()
        if link.task is not None and link.task is not asyncio.current_task():
            link.task.cancel()
        requeued = [
            [index for index in sorted(indices) if index not in self._filled]
            for indices in link.outstanding.values()
        ]
        requeued = [chunk for chunk in requeued if chunk]
        link.outstanding = {}
        if requeued:
            self._pending.extend(requeued)
            if self._observing:
                self._recorder.incr(
                    "cluster.chunks.requeued_count", len(requeued)
                )
        if not self._links and not self._finished.is_set():
            self._fatal = SweepError(
                f"sweep {self._grid_name!r} failed: every cluster worker died"
            )
            self._finished.set()
            return
        if self._pending:
            asyncio.ensure_future(self._feed_waiting())

    async def _feed_waiting(self) -> None:
        while self._pending:
            link = self._next_waiting()
            if link is None:
                return
            try:
                await self._ship(link, self._pending.popleft())
            except (ConnectionError, OSError):
                # _ship registered the chunk in link.outstanding before
                # writing, so declaring the link dead requeues it.
                self._on_dead(link)

    async def _monitor(self) -> None:
        """Declare silent workers dead once the heartbeat timeout lapses."""
        timeout = self.options.heartbeat_timeout_seconds
        interval = max(timeout / 4.0, self.options.heartbeat_seconds / 2.0)
        while not self._finished.is_set():
            await self._sleep(interval)
            now = self._clock()
            if (
                not self._links
                and self._joined == 0
                and now - self._started_at > self.options.join_timeout_seconds
            ):
                self._fatal = SweepError(
                    f"sweep {self._grid_name!r} failed: no cluster worker "
                    f"joined within {self.options.join_timeout_seconds:.0f}s"
                )
                self._finished.set()
                return
            for link in list(self._links.values()):
                if now - link.last_seen > timeout:
                    self._on_dead(link)
