"""Wire protocol for the cluster sweep backend.

Frames reuse the :mod:`repro.serve` machinery — one newline-terminated
compact-JSON object per frame (:func:`repro.serve.protocol.dump_line`) —
so the coordinator and a ``repro worker`` peer speak the same framing as
the bandwidth server. The payloads that are *not* naturally JSON (the
:class:`~repro.memsim.config.MachineConfig`, ``SweepPoint`` tuples, and
whole :class:`~repro.memsim.kernels.ResultColumns` blocks) travel as
pickled, base64-encoded blobs inside a frame field: every one of those
types is already on the SIM202 pickle boundary (they cross the
process-pool boundary today), and pickling a column block is the
structure-of-arrays move — one blob per chunk, never an object per
point.

Every stream is created with an explicit ``limit`` of
:data:`MAX_FRAME_BYTES`, which is what bounds ``readline`` against a
peer that never sends a newline (simlint rule SIM110 checks this
statically across the transport paths).

Frame kinds
-----------

coordinator -> worker:

``hello``
    Session start: protocol string, config/directory blobs, grid name,
    ``observing`` flag, gather knobs (``points_per_item``,
    ``heartbeat_seconds``), and whether the shared cache tier is on.
``chunk``
    One shard of grid points: ``chunk`` id, global ``indices``, request
    ``digests`` (cache keys, precomputed by the coordinator), and the
    ``points`` blob.
``steal``
    Ask the worker to relinquish about half of its queued points.
``cache_found``
    Answer to ``cache_get``: the found ``digests`` and a ``columns``
    blob holding one row per found digest, in that order.
``bye``
    Session end; the worker drains nothing further and disconnects.

worker -> coordinator:

``join``
    First frame after connecting; carries the protocol string.
``heartbeat``
    Liveness; any frame refreshes the deadline, this one exists for
    workers parked on a long item.
``result``
    One work item's results: ``chunk`` id, global ``indices``, the
    ``columns`` blob, an optional counters ``snapshot``, the cache
    ``stats`` delta ``[hits, misses, disk_hits]``, and ``wall`` seconds.
``stolen``
    Answer to ``steal``: the global ``indices`` relinquished (may be
    empty if the queue drained first).
``failed``
    A poisoned point: global ``index``, ``label``, ``grid``, the pickled
    original exception (``error`` blob), and the item's completed-prefix
    ``partial`` columns blob with its ``partial_indices``.
``cache_get``
    Shared-tier lookup: request ``req`` id and the ``digests`` to probe.
``cache_put``
    Publish computed rows: ``digests`` plus a ``columns`` blob.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Mapping

import asyncio

from repro import units
from repro.errors import SweepError
from repro.serve.protocol import dump_line

__all__ = [
    "CLUSTER_PROTOCOL",
    "MAX_FRAME_BYTES",
    "decode_blob",
    "dump_line",
    "encode_blob",
    "read_frame",
    "send_frame",
]

#: Protocol identifier carried by ``hello`` and ``join`` frames.
CLUSTER_PROTOCOL = "repro.sweep.cluster/1"

#: Stream limit for every cluster connection: bounds ``readline`` so a
#: broken or hostile peer cannot grow an unbounded buffer. Large enough
#: for a pickled chunk of hundreds of points.
MAX_FRAME_BYTES = 8 * units.MIB


def encode_blob(obj: object) -> str:
    """Pickle ``obj`` and wrap it as base64 text for a JSON frame field."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_blob(text: str) -> object:
    """Inverse of :func:`encode_blob`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


async def read_frame(reader: asyncio.StreamReader) -> Mapping[str, object] | None:
    """Read one frame; ``None`` on a clean EOF.

    The reader's ``limit`` (set to :data:`MAX_FRAME_BYTES` at connection
    time) bounds the line; an overlong frame surfaces as
    :class:`~repro.errors.SweepError` rather than a silent buffer blowup.
    """
    try:
        line = await reader.readline()
    except ValueError as exc:  # limit overrun
        raise SweepError(f"cluster frame exceeds {MAX_FRAME_BYTES} bytes") from exc
    if not line:
        return None
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise SweepError(f"cluster frame is not JSON: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("kind"), str):
        raise SweepError("cluster frame must be an object with a 'kind'")
    return frame


async def send_frame(
    writer: asyncio.StreamWriter, frame: Mapping[str, object]
) -> None:
    """Serialize and flush one frame."""
    writer.write(dump_line(frame))
    await writer.drain()
