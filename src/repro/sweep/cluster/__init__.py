"""Sharded cluster sweep backend with a shared cache and work-stealing.

``backend="cluster"`` on :class:`~repro.sweep.SweepRunner` fans a grid
out across worker processes — spawned locally around the coordinator, or
standing ``repro worker`` peers reached over TCP — while staying
bit-identical to serial. The package splits along the wire:

* :mod:`~repro.sweep.cluster.protocol` — newline-JSON frames (reusing
  the :mod:`repro.serve` framing) with pickled column-block blobs.
* :mod:`~repro.sweep.cluster.coordinator` — sharding by content hash,
  chunk dispatch, work-stealing, heartbeat timeouts and requeueing, and
  the content-addressed shared cache tier.
* :mod:`~repro.sweep.cluster.worker` — per-connection evaluation through
  a worker-local :class:`~repro.sweep.service.EvaluationService`.
* :mod:`~repro.sweep.cluster.backend` — the synchronous entry points the
  runner dispatches to.
* :mod:`~repro.sweep.cluster.config` — :class:`ClusterOptions` and the
  process-wide default the CLI installs.
"""

from repro.sweep.cluster.backend import run_grid, run_grid_columns
from repro.sweep.cluster.config import (
    ClusterOptions,
    default_cluster_options,
    parse_endpoint,
    set_default_cluster_options,
)
from repro.sweep.cluster.coordinator import Coordinator, SharedCache
from repro.sweep.cluster.worker import ClusterWorker, connect_worker, serve_worker

__all__ = [
    "ClusterOptions",
    "ClusterWorker",
    "Coordinator",
    "SharedCache",
    "connect_worker",
    "default_cluster_options",
    "parse_endpoint",
    "run_grid",
    "run_grid_columns",
    "serve_worker",
    "set_default_cluster_options",
]
