"""Synchronous entry points for ``backend="cluster"`` sweeps.

:func:`run_grid_columns` mirrors :func:`repro.sweep.procpool.run_grid_columns`
— same signature shape, same bit-identical contract — but fans the grid
out across *cluster workers*: either local worker processes spawned
around the coordinator, or standing ``repro worker`` peers named by
:attr:`~repro.sweep.cluster.config.ClusterOptions.connect`.

Local-spawn choreography matters: the listening socket is bound (port 0)
**before** forking, so the child processes are handed a concrete
``host:port`` and there is no race between the coordinator's listener
coming up and the first worker dialing in. Workers exit on the
coordinator's ``bye``; termination is only a backstop.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket

from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.evaluation import BandwidthResult
from repro.memsim.kernels import ResultColumns
from repro.obs import Recorder, set_default_recorder
from repro.sweep.cluster.config import ClusterOptions, default_cluster_options
from repro.sweep.cluster.coordinator import Coordinator
from repro.sweep.service import EvaluationService
from repro.workloads.grids import SweepGrid, SweepPoint

__all__ = ["run_grid", "run_grid_columns"]


def _local_worker_main(host: str, port: int) -> None:
    """Entry point of a spawned local worker process.

    Module-level so it pickles under the ``spawn`` start method. The
    default recorder is silenced exactly as the process pool does: the
    worker ships explicit per-item snapshots instead, so anything it
    recorded ambiently would double-count after the merge.
    """
    set_default_recorder(None)
    from repro.sweep.cluster.worker import connect_worker

    asyncio.run(connect_worker(host, port))


async def _run_cluster(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    workers: int,
    service: EvaluationService,
    recorder: Recorder,
    options: ClusterOptions,
) -> tuple[list[str], ResultColumns]:
    coordinator = Coordinator(
        grid.name,
        points,
        config=config,
        directory=directory,
        service=service,
        recorder=recorder,
        options=options,
        workers_hint=workers,
    )
    procs: list[multiprocessing.process.BaseProcess] = []
    if options.connect:
        await coordinator.start("127.0.0.1", 0)
        for host, port in options.connect:
            await coordinator.dial(host, port)
    else:
        lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        lsock.bind(("127.0.0.1", 0))
        host, port = lsock.getsockname()[:2]
        await coordinator.start(sock=lsock)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        for _ in range(workers):
            proc = ctx.Process(
                target=_local_worker_main, args=(host, port), daemon=True
            )
            proc.start()
            procs.append(proc)
    try:
        return await coordinator.finish()
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
        for proc in procs:
            if proc.is_alive():  # backstop; workers exit on ``bye``
                proc.terminate()
                proc.join(timeout=5.0)


def run_grid_columns(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    jobs: int,
    service: EvaluationService,
    recorder: Recorder,
    options: ClusterOptions | None = None,
) -> tuple[list[str], ResultColumns]:
    """Evaluate ``points`` across a worker cluster into one column batch.

    Bit-identical to serial: the coordinator assembles returned column
    rows by global grid index, so chunking, stealing, and requeueing
    cannot reorder or alter anything. Counters and cache statistics fold
    into ``recorder``/``service.stats`` as the process pool's do, plus
    the ``cluster.*`` counters for the cluster mechanics themselves.

    ``jobs`` (when > 1) overrides ``options.workers`` for the local
    worker count; with ``options.connect`` set, exactly those standing
    peers are used instead and nothing is spawned.
    """
    if options is None:
        options = default_cluster_options()
    if not points:
        return [], ResultColumns()
    if options.connect:
        workers = len(options.connect)
    else:
        workers = jobs if jobs > 1 else options.workers
    return asyncio.run(
        _run_cluster(
            grid,
            points,
            config=config,
            directory=directory,
            workers=workers,
            service=service,
            recorder=recorder,
            options=options,
        )
    )


def run_grid(
    grid: SweepGrid,
    points: list[SweepPoint],
    *,
    config: MachineConfig,
    directory: DirectoryState,
    jobs: int,
    service: EvaluationService,
    recorder: Recorder,
    options: ClusterOptions | None = None,
) -> dict[str, BandwidthResult]:
    """Object-dict variant of :func:`run_grid_columns`, in grid order.

    The cluster always moves column blocks over the wire; per-point
    result objects are materialized (as lazy views) only here at the API
    boundary, exactly like the vector backend's ``run`` path.
    """
    labels, columns = run_grid_columns(
        grid,
        points,
        config=config,
        directory=directory,
        jobs=jobs,
        service=service,
        recorder=recorder,
        options=options,
    )
    return dict(zip(labels, columns.views()))
