"""Tunables for the cluster sweep backend, with a process-wide default.

The :class:`~repro.sweep.SweepRunner` interface has no room for
cluster-specific knobs (worker endpoints, heartbeat cadence), so they
travel out-of-band: the CLI installs a :class:`ClusterOptions` via
:func:`set_default_cluster_options` before running experiments, the same
pattern :func:`repro.sweep.service.set_default_service` uses for the
disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ClusterOptions",
    "default_cluster_options",
    "parse_endpoint",
    "set_default_cluster_options",
]

#: Target chunks per worker for the initial content-hash sharding; the
#: same load/amortisation balance the process pool uses.
CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class ClusterOptions:
    """Configuration of one cluster sweep.

    ``workers`` local worker processes are spawned unless ``connect``
    names remote ``repro worker`` endpoints, in which case exactly those
    peers are used. The remaining knobs shape granularity and fault
    detection; none of them can change results, only wall time.
    """

    #: Local worker processes to spawn (ignored when ``connect`` is set).
    workers: int = 2
    #: Remote ``(host, port)`` worker endpoints the coordinator dials.
    connect: tuple[tuple[str, int], ...] = ()
    #: Points per work item — the steal/response granularity inside a
    #: worker; chunks are split into items of this size.
    points_per_item: int = 8
    #: Worker heartbeat cadence, seconds.
    heartbeat_seconds: float = 1.0
    #: Silence (no frame of any kind) after which a worker is declared
    #: dead and its outstanding work is requeued.
    heartbeat_timeout_seconds: float = 30.0
    #: Seconds to wait for the first worker to join before giving up.
    join_timeout_seconds: float = 60.0
    #: Serve points computed by any worker to every worker through the
    #: coordinator's content-addressed shared cache tier.
    shared_cache: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1 and not self.connect:
            raise ConfigurationError(
                f"cluster workers must be >= 1, got {self.workers}"
            )
        if self.points_per_item < 1:
            raise ConfigurationError(
                f"points_per_item must be >= 1, got {self.points_per_item}"
            )


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` endpoint string (the CLI's ``--connect``)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"bad worker endpoint {text!r}; expected HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"bad worker endpoint {text!r}; port must be an integer"
        ) from None


_DEFAULT_OPTIONS = ClusterOptions()


def default_cluster_options() -> ClusterOptions:
    """The process-wide options ``backend="cluster"`` runs use."""
    return _DEFAULT_OPTIONS


def set_default_cluster_options(
    options: ClusterOptions | None,
) -> ClusterOptions:
    """Replace the process-wide options; returns the previous value.

    Pass ``None`` to restore the documented defaults.
    """
    global _DEFAULT_OPTIONS
    previous = _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = options if options is not None else ClusterOptions()
    return previous
