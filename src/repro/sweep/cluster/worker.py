"""Cluster sweep worker: evaluates point chunks for a coordinator.

One :class:`ClusterWorker` serves one coordinator session over one
connection. The session is fully coordinator-driven: the worker joins,
receives a ``hello`` pinning the machine config and directory state,
then evaluates ``chunk`` frames through its own memoizing
:class:`~repro.sweep.service.EvaluationService` — the same per-worker
service arrangement the process-pool backend uses, so all the
determinism and accounting arguments carry over unchanged.

Three design points keep the worker responsive and the results exact:

* **Items, not chunks, are the unit of execution.** A received chunk is
  split into small *items* (``points_per_item`` points) on a deque; the
  compute loop takes one item at a time and yields to the event loop
  between items. The reader task therefore stays live while compute is
  busy, which is what lets a ``steal`` frame be answered immediately —
  queued items are popped off the *tail* of the deque and relinquished,
  so no point is ever evaluated twice (revoke-style stealing, no
  speculative duplication).
* **Shared-cache pre-pass.** Before evaluating an item, the worker asks
  the coordinator for any point it cannot answer locally
  (:meth:`EvaluationService.contains` peeks without touching stats).
  Found rows are seeded into the memo (:meth:`EvaluationService.seed`)
  and counted as disk hits — a shared-tier hit is a remote disk hit —
  after which the normal grid evaluation memo-hits them, so the
  ``sweep.cache.*`` tallies carry over exactly as if the point had been
  served from a local cache tier.
* **Per-item accounting.** Each item gets a fresh
  :class:`~repro.obs.CountersRecorder` and a cache-stats delta, shipped
  with the item's ``result`` frame; the coordinator merges snapshots in
  grid order, exactly as the process pool merges per-chunk snapshots.

Fault injection (``item_delay_seconds``, ``crash_after_items``,
``heartbeat``) exists for the deterministic fault tests: the delay parks
compute on the *injected* sleep so a fake clock controls when a worker
looks slow, and the crash knob aborts the transport mid-session the way
a killed process would.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Mapping

from repro.errors import GridPointError, SweepError
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.kernels import ResultColumns
from repro.obs import NULL_RECORDER, CountersRecorder, Recorder
from repro.sweep.cache import DiskCache
from repro.sweep.cluster import protocol
from repro.sweep.service import EvaluationService
from repro.workloads.grids import SweepPoint

__all__ = ["ClusterWorker", "connect_worker", "serve_worker"]


@dataclass
class _Item:
    """One unit of work: a slice of a chunk, with its global indices."""

    chunk: int
    indices: list[int]
    digests: list[str]
    points: list[SweepPoint]


@dataclass
class _Session:
    """Everything pinned by the coordinator's ``hello`` frame."""

    config: MachineConfig
    directory: DirectoryState
    grid_name: str
    observing: bool
    shared_cache: bool
    points_per_item: int
    heartbeat_seconds: float


class ClusterWorker:
    """One coordinator session on one connection.

    Parameters
    ----------
    reader, writer:
        The connection (created with an explicit ``limit``).
    service:
        Evaluation service to route points through; a fresh memoizing
        one (optionally disk-backed via ``cache_dir``) by default.
    clock, sleep:
        Injectable time source and async sleep — the fault tests drive
        both with a fake clock.
    item_delay_seconds:
        Fault injection: park on ``sleep`` this long before each item.
    crash_after_items:
        Fault injection: abort the transport after completing this many
        items, simulating a worker killed mid-chunk.
    heartbeat:
        Fault injection: disable the heartbeat task so the coordinator's
        timeout (not connection EOF) declares this worker dead.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        service: EvaluationService | None = None,
        cache_dir: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        item_delay_seconds: float = 0.0,
        crash_after_items: int | None = None,
        heartbeat: bool = True,
    ) -> None:
        if service is None:
            disk = DiskCache(cache_dir) if cache_dir is not None else None
            service = EvaluationService(disk_cache=disk)
        self.service = service
        self._reader = reader
        self._writer = writer
        self._clock = clock
        self._sleep = sleep
        self._item_delay = item_delay_seconds
        self._crash_after = crash_after_items
        self._heartbeat_enabled = heartbeat
        self._queue: deque[_Item] = deque()
        self._work_ready = asyncio.Event()
        self._done = asyncio.Event()
        self._session: _Session | None = None
        self._cache_replies: dict[int, asyncio.Future] = {}
        self._next_req = 0
        self._items_completed = 0
        self._crashed = False

    # ------------------------------------------------------------------
    # session
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Serve one coordinator session to completion."""
        await protocol.send_frame(
            self._writer, {"kind": "join", "protocol": protocol.CLUSTER_PROTOCOL}
        )
        hello = await protocol.read_frame(self._reader)
        if hello is None:
            return
        if hello.get("kind") != "hello" or hello.get("protocol") != protocol.CLUSTER_PROTOCOL:
            raise SweepError(
                f"cluster worker expected a {protocol.CLUSTER_PROTOCOL!r} hello, "
                f"got {hello.get('kind')!r}"
            )
        self._session = _Session(
            config=protocol.decode_blob(hello["config"]),
            directory=protocol.decode_blob(hello["directory"]),
            grid_name=str(hello["grid"]),
            observing=bool(hello["observing"]),
            shared_cache=bool(hello["shared_cache"]),
            points_per_item=int(hello["points_per_item"]),
            heartbeat_seconds=float(hello["heartbeat_seconds"]),
        )
        tasks = [asyncio.ensure_future(self._compute_loop())]
        if self._heartbeat_enabled:
            tasks.append(asyncio.ensure_future(self._heartbeat_loop()))
        try:
            await self._read_loop()
        finally:
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, ConnectionError):  # simlint: ignore[silent-except] -- reaping cancelled session tasks; the session outcome was already decided
                    pass
            if not self._crashed:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionError, OSError):  # simlint: ignore[silent-except] -- already closing; peer reset is the expected outcome
                    pass

    async def _read_loop(self) -> None:
        session = self._session
        assert session is not None
        while True:
            frame = await protocol.read_frame(self._reader)
            if frame is None or frame.get("kind") == "bye":
                self._done.set()
                self._work_ready.set()
                return
            kind = frame["kind"]
            if kind == "chunk":
                self._enqueue_chunk(frame, session)
            elif kind == "steal":
                await self._answer_steal(frame)
            elif kind == "cache_found":
                future = self._cache_replies.pop(int(frame["req"]), None)
                if future is not None and not future.done():
                    future.set_result(frame)
            else:
                raise SweepError(f"cluster worker got unknown frame kind {kind!r}")

    def _enqueue_chunk(self, frame: Mapping[str, object], session: _Session) -> None:
        indices = [int(i) for i in frame["indices"]]
        digests = [str(d) for d in frame["digests"]]
        points = list(protocol.decode_blob(frame["points"]))
        chunk = int(frame["chunk"])
        step = max(1, session.points_per_item)
        for lo in range(0, len(points), step):
            hi = lo + step
            self._queue.append(
                _Item(chunk, indices[lo:hi], digests[lo:hi], points[lo:hi])
            )
        self._work_ready.set()

    async def _answer_steal(self, frame: Mapping[str, object]) -> None:
        """Relinquish about half of the queued points, from the tail.

        The currently-executing item is never up for grabs (it is off
        the deque already), so every point is evaluated exactly once —
        by this worker or by the thief, never both.
        """
        queued = sum(len(item.indices) for item in self._queue)
        relinquished: list[int] = []
        # Round up: a single queued item still yields, so a thief never
        # starves just because the victim's queue is short.
        while self._queue and len(relinquished) < (queued + 1) // 2:
            item = self._queue.pop()
            relinquished.extend(item.indices)
        await protocol.send_frame(
            self._writer,
            {"kind": "stolen", "req": frame.get("req"), "indices": relinquished},
        )

    async def _heartbeat_loop(self) -> None:
        session = self._session
        assert session is not None
        while not self._done.is_set():
            await self._sleep(session.heartbeat_seconds)
            await protocol.send_frame(self._writer, {"kind": "heartbeat"})

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------

    async def _compute_loop(self) -> None:
        session = self._session
        assert session is not None
        while True:
            while not self._queue:
                if self._done.is_set():
                    return
                self._work_ready.clear()
                await self._work_ready.wait()
            item = self._queue.popleft()
            if self._item_delay > 0:
                await self._sleep(self._item_delay)
            await self._run_item(item, session)
            self._items_completed += 1
            if (
                self._crash_after is not None
                and self._items_completed >= self._crash_after
            ):
                # Simulated kill: drop the connection without a goodbye.
                self._crashed = True
                self._writer.transport.abort()
                self._done.set()
                return
            # Yield so steal/cache frames interleave between items.
            await asyncio.sleep(0)

    async def _run_item(self, item: _Item, session: _Session) -> None:
        rec = CountersRecorder() if session.observing else None
        sink: Recorder = rec if rec is not None else NULL_RECORDER
        stats = self.service.stats
        hits0, misses0, disk0 = stats.hits, stats.misses, stats.disk_hits
        started = time.perf_counter()
        if session.shared_cache:
            await self._shared_prepass(item, session, sink)
        try:
            columns = self.service.evaluate_grid_columns(
                session.config,
                [point.streams for point in item.points],
                session.directory,
                recorder=sink,
                labels=[point.label for point in item.points],
                grid_name=session.grid_name,
            )
        except GridPointError as exc:
            partial = (
                exc.partial
                if isinstance(exc.partial, ResultColumns)
                else ResultColumns()
            )
            try:
                error_blob = protocol.encode_blob(exc.original)
            except Exception:
                # Unpicklable originals degrade to a text-only SweepError,
                # mirroring how pickling drops procpool __cause__ chains.
                error_blob = protocol.encode_blob(SweepError(str(exc.original)))
            await protocol.send_frame(
                self._writer,
                {
                    "kind": "failed",
                    "chunk": item.chunk,
                    "index": item.indices[exc.index],
                    "label": exc.label,
                    "grid": exc.grid,
                    "error": error_blob,
                    "partial_indices": item.indices[: len(partial)],
                    "partial": protocol.encode_blob(partial),
                },
            )
            return
        wall = time.perf_counter() - started
        if session.shared_cache:
            await protocol.send_frame(
                self._writer,
                {
                    "kind": "cache_put",
                    "digests": item.digests,
                    "columns": protocol.encode_blob(columns),
                },
            )
        if rec is not None:
            rec.incr("sweep.points_count", len(item.points))
            mean = wall / len(item.points)
            for _ in item.points:
                rec.observe("sweep.point.wall_seconds", mean)
        delta = (stats.hits - hits0, stats.misses - misses0, stats.disk_hits - disk0)
        await protocol.send_frame(
            self._writer,
            {
                "kind": "result",
                "chunk": item.chunk,
                "indices": item.indices,
                "columns": protocol.encode_blob(columns),
                "snapshot": rec.snapshot() if rec is not None else None,
                "stats": list(delta),
                "wall": wall,
            },
        )

    async def _shared_prepass(
        self, item: _Item, session: _Session, rec: Recorder
    ) -> None:
        """Fetch locally-unanswerable points from the coordinator's tier.

        A found row is seeded into the memo and counted as a disk hit
        (the shared tier *is* a remote disk): the subsequent grid
        evaluation then memo-hits it, producing exactly the
        ``sweep.cache.hits_count`` + ``disk_hits_count`` pair a local
        warm disk cache would have produced — the accounting carries
        over across tiers because the keys do.
        """
        missing: dict[str, SweepPoint] = {}
        for point, digest in zip(item.points, item.digests):
            if not self.service.contains(
                session.config, point.streams, session.directory
            ):
                missing[digest] = point
        if not missing:
            return
        self._next_req += 1
        req = self._next_req
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._cache_replies[req] = future
        await protocol.send_frame(
            self._writer,
            {"kind": "cache_get", "req": req, "digests": list(missing)},
        )
        reply = await future
        found = [str(d) for d in reply["digests"]]
        columns = (
            protocol.decode_blob(reply["columns"]) if found else ResultColumns()
        )
        for row, digest in enumerate(found):
            point = missing.pop(digest)
            self.service.seed(
                session.config, point.streams, columns, row, session.directory
            )
            self.service.stats.disk_hits += 1
            if rec.enabled:
                rec.incr("sweep.cache.disk_hits_count")
                rec.incr("cluster.shared_cache.hits_count")
        if rec.enabled and missing:
            rec.incr("cluster.shared_cache.misses_count", len(missing))


async def connect_worker(
    host: str,
    port: int,
    *,
    cache_dir: str | None = None,
    **kwargs: object,
) -> None:
    """Dial a coordinator and serve one session (spawned-local mode)."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=protocol.MAX_FRAME_BYTES
    )
    worker = ClusterWorker(reader, writer, cache_dir=cache_dir, **kwargs)
    await worker.run()


async def serve_worker(
    host: str,
    port: int = 0,
    *,
    cache_dir: str | None = None,
) -> tuple[str, int, asyncio.AbstractServer]:
    """Listen for coordinators (``repro worker`` standalone mode).

    Each inbound connection is one coordinator session; the worker keeps
    listening after a session ends, so one standing ``repro worker`` can
    serve many sweeps. Returns the bound address and the server object.
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await ClusterWorker(reader, writer, cache_dir=cache_dir).run()
        except (SweepError, ConnectionError, asyncio.IncompleteReadError):  # simlint: ignore[silent-except] -- a broken coordinator session must not kill the listener
            pass

    server = await asyncio.start_server(
        handle, host, port, limit=protocol.MAX_FRAME_BYTES
    )
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    return bound_host, bound_port, server
