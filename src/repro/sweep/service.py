"""Memoizing evaluation service over the pure memsim core.

The service is the single funnel through which the reproduction
evaluates bandwidth: experiments, the SSB cost model, the optimizer, the
advisor, and the deprecated :class:`~repro.memsim.BandwidthModel` façade
all call :meth:`EvaluationService.evaluate`. Because the core is pure,
identical requests return identical (cached) results — the optimizer and
the sensitivity analysis re-price the same grid points constantly, and
regenerating a figure twice in one process is nearly free.

Cache-key normalization: an evaluation can only observe the warmth of
the far-read (issuing, target) socket pairs among its streams
(:func:`repro.memsim.evaluation.observable_pairs`), so the directory is
restricted to those pairs before keying. All near-only sweeps therefore
share one entry regardless of the caller's directory state, while the
full input state still determines the returned
:attr:`~repro.memsim.evaluation.BandwidthResult.directory_after`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

from repro.errors import GridPointError
from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.evaluation import BandwidthResult, observable_pairs
from repro.memsim.spec import StreamSpec
from repro.obs import Recorder, default_recorder
from repro.sweep.cache import (
    CacheStats,
    CacheValue,
    DiskCache,
    MemoCache,
    request_digest,
)

if TYPE_CHECKING:
    from repro.memsim.kernels import ResultColumns

#: The content key one evaluation is memoized under: the machine, the
#: streams, and the *observable* projection of the directory state.
RequestKey = tuple[MachineConfig, tuple[StreamSpec, ...], DirectoryState]


def request_key(
    config: MachineConfig,
    streams: "list[StreamSpec] | tuple[StreamSpec, ...]",
    directory: DirectoryState | None = None,
) -> RequestKey:
    """The content key ``evaluate`` results are cached under.

    Normalizes exactly the way :meth:`EvaluationService.evaluate` does:
    the directory is restricted to the far-read pairs the streams can
    observe, so callers comparing keys (the serving layer dedupes
    in-flight requests with this) agree with the cache about which
    requests are the same computation. The full input state still
    determines the returned ``directory_after`` — two requests may share
    a key yet receive differently-rebased results.
    """
    streams = tuple(streams)
    state = directory if directory is not None else DirectoryState.cold()
    return (config, streams, state.restrict(observable_pairs(streams)))


class EvaluationService:
    """Content-keyed memo (and optional disk) cache around ``evaluate``.

    Parameters
    ----------
    disk_cache:
        Optional :class:`~repro.sweep.cache.DiskCache`; consulted on memo
        misses and populated on computes, making results reusable across
        processes.
    memoize:
        Keep results in memory (default). Disabling is only useful for
        measuring the uncached baseline in benchmarks.
    """

    def __init__(
        self,
        disk_cache: DiskCache | None = None,
        *,
        memoize: bool = True,
    ) -> None:
        self._memo = MemoCache() if memoize else None
        self._disk = disk_cache
        self.stats = CacheStats()

    @property
    def disk_cache(self) -> DiskCache | None:
        """The backing :class:`DiskCache`, if any.

        Exposed so the process-pool sweep backend can point worker-side
        services at the same directory (the disk format is atomic-write,
        so concurrent readers and writers are safe).
        """
        return self._disk

    def evaluate(
        self,
        config: MachineConfig,
        streams: list[StreamSpec] | tuple[StreamSpec, ...],
        directory: DirectoryState | None = None,
        *,
        recorder: Recorder | None = None,
    ) -> BandwidthResult:
        """Cached equivalent of :func:`repro.memsim.evaluation.evaluate`.

        Returns an independent :class:`BandwidthResult` copy on cache
        hits, so callers may freely annotate its counters. Bit-identical
        to the uncached call — including ``directory_after``, which is
        recomputed from the *full* input state on every call.

        ``recorder`` (default: the process-wide
        :func:`repro.obs.default_recorder`) receives cache hit/miss
        counters. It is a sink, never a cache-key component: a cached
        hit replays a ``sweep.cache_hit`` event, *not* the evaluation's
        original counters.
        """
        rec = recorder if recorder is not None else default_recorder()
        streams = tuple(streams)
        state = directory if directory is not None else DirectoryState.cold()
        key = request_key(config, streams, state)
        normalized = key[2]

        cached = self._memo.get(key) if self._memo is not None else None
        if cached is not None:
            self.stats.hits += 1
            if rec.enabled:
                rec.incr("sweep.cache.hits_count")
                rec.event("sweep.cache_hit", source="memo", streams=len(streams))
            return self._deliver(cached, streams, state)

        digest: str | None = None
        if self._disk is not None:
            digest = request_digest(config, streams, normalized)
            from_disk = self._disk.get_ref(digest)
            if from_disk is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                if rec.enabled:
                    rec.incr("sweep.cache.hits_count")
                    rec.incr("sweep.cache.disk_hits_count")
                    rec.event("sweep.cache_hit", source="disk", streams=len(streams))
                if self._memo is not None:
                    self._memo.put(key, from_disk)
                return self._deliver(from_disk, streams, state)

        self.stats.misses += 1
        if rec.enabled:
            rec.incr("sweep.cache.misses_count")
        result = evaluation.evaluate(
            config, streams, normalized, recorder=rec if rec.enabled else None
        )
        if self._memo is not None:
            self._memo.put(key, result)
        if self._disk is not None and digest is not None:
            self._disk.put(digest, result)
        return self._deliver(result, streams, state)

    def contains(
        self,
        config: MachineConfig,
        streams: "list[StreamSpec] | tuple[StreamSpec, ...]",
        directory: DirectoryState | None = None,
    ) -> bool:
        """Whether this request is already answerable from a local cache.

        A silent peek: neither :attr:`stats` nor any recorder is touched,
        so a cache *tier above this service* (the cluster backend's
        shared cache) can decide which points to fetch remotely without
        perturbing the hit/miss accounting the real lookups produce.
        """
        streams = tuple(streams)
        key = request_key(config, streams, directory)
        if self._memo is not None and self._memo.get(key) is not None:
            return True
        if self._disk is not None:
            digest = request_digest(config, streams, key[2])
            return self._disk.get_ref(digest) is not None
        return False

    def seed(
        self,
        config: MachineConfig,
        streams: "list[StreamSpec] | tuple[StreamSpec, ...]",
        columns: "ResultColumns",
        row: int,
        directory: DirectoryState | None = None,
    ) -> None:
        """Install row ``row`` of ``columns`` as this request's memo entry.

        Used by the cluster backend to pre-load results another worker
        computed: the subsequent :meth:`evaluate` /
        :meth:`evaluate_grid_columns` lookup then counts a normal memo
        hit, which is exactly how shared-tier accounting "carries over"
        into ``sweep.cache.*``. Seeding itself is silent (no stats).
        """
        if self._memo is None:
            return
        key = request_key(config, tuple(streams), directory)
        self._memo.put(key, (columns, row))

    def evaluate_grid_columns(
        self,
        config: MachineConfig,
        points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
        directory: DirectoryState | None = None,
        *,
        recorder: Recorder | None = None,
        labels: Sequence[str] | None = None,
        grid_name: str | None = None,
    ) -> "ResultColumns":
        """Cached, batched grid evaluation producing a column batch.

        Points that the vectorized analytic kernel covers
        (:func:`repro.memsim.kernels.classify_point` returning ``None`` —
        every point family the scalar evaluator can price) and that miss
        both caches are computed in one structure-of-arrays pass
        (:func:`repro.memsim.kernels.evaluate_points_columns`); the
        residual fallback set (empty points, unknown or core-less
        sockets, missing media) goes through :meth:`evaluate` unchanged,
        with each fallback tallied on the
        ``sweep.vector.fallback_count`` counter family labeled by
        reason. Rows come back in ``points`` order and are
        **bit-identical** to the per-point path — cache keys, stored
        entries, and hit/miss tallies included, so a grid primed through
        this method services per-point calls (and vice versa) without
        recomputation. No per-point result object is materialized
        anywhere on this path: cache hits and batch computes alike move
        between the caches and the output as column rows.

        A failing point raises :class:`GridPointError` carrying the input
        index (plus the point ``label`` and ``grid_name`` when given, so
        the message names the poisoned point) and the partial batch of
        every row completed before the failure. If the batch kernel
        itself fails, the batched points are transparently re-run through
        the scalar path — the error (if it reproduces) is then attributed
        to the exact point that raised it.
        """
        # Imported lazily (and not at module top) to keep NumPy off the
        # import path of callers that never batch.
        from repro.memsim.context import eval_context
        from repro.memsim.kernels import (
            ResultColumns,
            classify_point,
            evaluate_points_columns,
        )

        rec = recorder if recorder is not None else default_recorder()
        state = directory if directory is not None else DirectoryState.cold()
        normalized_points = [tuple(streams) for streams in points]

        def fail(index: int, exc: Exception, partial: "ResultColumns") -> GridPointError:
            label = labels[index] if labels is not None else None
            return GridPointError(
                index, exc, label=label, grid=grid_name, partial=partial
            )

        try:
            ctx = eval_context(config)
        except Exception as exc:
            # A config the core rejects fails every point; blame the first.
            raise fail(0, exc, ResultColumns()) from exc

        # Each point is keyed under the directory restricted to *its*
        # observable far-read pairs, exactly as :meth:`evaluate` keys it;
        # points sharing a pair set share the restricted state object.
        # Cache hits are held as (columns, row) references — or plain
        # results when the per-point path stored them — until the output
        # assembly loop copies their rows out.
        restricted: dict[frozenset, DirectoryState] = {}

        def normalized_for(streams: tuple[StreamSpec, ...]) -> DirectoryState:
            pairs = observable_pairs(streams)
            norm = restricted.get(pairs)
            if norm is None:
                norm = state.restrict(pairs)
                restricted[pairs] = norm
            return norm

        stored: dict[int, CacheValue] = {}
        fallback: dict[int, str] = {}
        batch_indices: list[int] = []
        batch_points: list[tuple[StreamSpec, ...]] = []
        batch_keys: list[tuple[MachineConfig, tuple[StreamSpec, ...], DirectoryState]] = []
        batch_digests: list[str | None] = []
        batch_normals: list[DirectoryState] = []
        for i, streams in enumerate(normalized_points):
            reason = classify_point(ctx, streams)
            if reason is not None:
                fallback[i] = reason
                continue
            normalized = normalized_for(streams)
            key = (config, streams, normalized)
            cached = self._memo.get(key) if self._memo is not None else None
            if cached is not None:
                self.stats.hits += 1
                if rec.enabled:
                    rec.incr("sweep.cache.hits_count")
                    rec.event("sweep.cache_hit", source="memo", streams=len(streams))
                stored[i] = cached
                continue
            digest: str | None = None
            if self._disk is not None:
                digest = request_digest(config, streams, normalized)
                from_disk = self._disk.get_ref(digest)
                if from_disk is not None:
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    if rec.enabled:
                        rec.incr("sweep.cache.hits_count")
                        rec.incr("sweep.cache.disk_hits_count")
                        rec.event("sweep.cache_hit", source="disk", streams=len(streams))
                    if self._memo is not None:
                        self._memo.put(key, from_disk)
                    stored[i] = from_disk
                    continue
            batch_indices.append(i)
            batch_points.append(streams)
            batch_keys.append(key)
            batch_digests.append(digest)
            batch_normals.append(normalized)

        computed: "ResultColumns | None" = None
        emit = None
        if batch_points:
            try:
                # Computed against the caller's *full* state: a point can
                # only observe the warmth of its own far-read pairs, which
                # the restricted key state preserves by construction, so
                # the rows (and their ``directory_after``) are exactly
                # what per-point evaluation against ``state`` produces.
                computed, emit = evaluate_points_columns(ctx, batch_points, state)
            except Exception:
                # The batch kernel failed wholesale. The loop below
                # re-runs the misses through the scalar path, which
                # attributes the error to the exact point — and completes
                # the sweep if the failure was batch-only. Nothing was
                # tallied yet, so the scalar calls' own hit/miss
                # accounting stays exact.
                computed = None
        stored_afters: list[DirectoryState] = []
        if computed is not None:
            self.stats.misses += len(batch_points)
            if rec.enabled:
                rec.incr("sweep.cache.misses_count", len(batch_points))
            # Stored entries must be byte-identical to what the per-point
            # path stores: results computed against the point's
            # *normalized* state, so their ``directory_after`` is the
            # normalized state plus the point's own far traversals.
            for pos, streams in enumerate(batch_points):
                after = batch_normals[pos]
                for spec in streams:
                    if spec.far:
                        after = after.touch(spec.issuing_socket, spec.target_socket)
                stored_afters.append(after)
            if self._memo is not None or self._disk is not None:
                stored_batch = ResultColumns()
                for pos in range(len(batch_points)):
                    stored_batch.append_from(
                        computed, pos, directory_after=stored_afters[pos]
                    )
                if self._memo is not None:
                    for pos, key in enumerate(batch_keys):
                        self._memo.put(key, (stored_batch, pos))
                if self._disk is not None:
                    # One block write for the whole batch — the entries the
                    # per-point path would have written, fused.
                    self._disk.put_columns(
                        [digest for digest in batch_digests if digest is not None],
                        stored_batch,
                    )

        # Batched points are emitted — and fallback points evaluated — in
        # ``points`` order: float addition is order-sensitive at the last
        # ulp, so recorder counters must accumulate exactly as the
        # per-point path would. The output batch is assembled fresh (rows
        # copied out of cached batches), so annotating a view of the
        # returned columns can never corrupt a stored entry.
        emitting = rec.enabled
        if emitting:
            from repro.obs import probes
        out = ResultColumns()
        pos = 0
        for i, streams in enumerate(normalized_points):
            hit = stored.get(i)
            if hit is not None:
                # Rebase the stored (normalized-state) row onto the
                # caller's state, exactly as :meth:`_deliver` does.
                after = state
                for spec in streams:
                    if spec.far:
                        after = after.touch(spec.issuing_socket, spec.target_socket)
                if type(hit) is tuple:
                    columns, row = hit
                    out.append_from(columns, row, directory_after=after)
                else:
                    out.append_result(hit, directory_after=after)
                continue
            reason = fallback.get(i)
            if reason is None:
                if computed is not None:
                    if emitting and emit is not None:
                        # Probes replay against the normalized states the
                        # per-point path evaluates under, not the full
                        # input state the batch ran against.
                        emit(rec, pos, before=batch_normals[pos], after=stored_afters[pos])
                    out.append_from(computed, pos)
                    pos += 1
                    continue
                pos += 1  # batch failed: fall through to the scalar path
            elif emitting:
                probes.emit_vector_fallback(rec, reason)
            try:
                out.append_result(
                    self.evaluate(config, streams, state, recorder=rec)
                )
            except Exception as exc:
                raise fail(i, exc, out) from exc
        return out

    def evaluate_grid(
        self,
        config: MachineConfig,
        points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
        directory: DirectoryState | None = None,
        *,
        recorder: Recorder | None = None,
    ) -> list[BandwidthResult]:
        """Cached, batched equivalent of calling :meth:`evaluate` per point.

        Compatibility wrapper over :meth:`evaluate_grid_columns`
        materializing one lazy view per point; batch-native consumers
        (the sweep runner, experiments, the SSB cost model) should take
        the columns directly.
        """
        return self.evaluate_grid_columns(
            config, points, directory, recorder=recorder
        ).views()

    @staticmethod
    def _deliver(
        stored: CacheValue,
        streams: tuple[StreamSpec, ...],
        state: DirectoryState,
    ) -> BandwidthResult:
        """Copy a stored result and rebase its directory_after on ``state``.

        The stored result was computed against the *normalized* directory;
        the caller's follow-up state must include everything the caller
        already had warm plus this evaluation's far traversals.

        ``stored`` may be a ``(columns, row)`` reference into a memoized
        batch; the row's view is materialized (and cached on the batch)
        first. Either way the copy is lazy: it shares the immutable
        streams, and its counters are materialized only if the caller
        reads them — repeated memo hits on a large sweep pay one
        directory rebase and nothing else, and annotating a delivered
        result's counters can never corrupt the stored entry.
        """
        if type(stored) is tuple:
            columns, row = stored
            stored = columns.view(row)
        result = stored.copy()
        after = state
        for stream in streams:
            if stream.far:
                after = after.touch(stream.issuing_socket, stream.target_socket)
        result.directory_after = after
        return result


_DEFAULT_SERVICE: EvaluationService | None = None
_DEFAULT_SERVICE_LOCK = threading.Lock()


def default_service() -> EvaluationService:
    """The process-wide shared service (created on first use).

    Creation is guarded by a lock: without it, two threads hitting the
    first call concurrently could each construct a service and split the
    memo cache between them (the classic check-then-set race). The
    fast path re-checks under the lock and stays lock-free afterwards.
    """
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        with _DEFAULT_SERVICE_LOCK:
            if _DEFAULT_SERVICE is None:
                _DEFAULT_SERVICE = EvaluationService()
    return _DEFAULT_SERVICE


def set_default_service(service: EvaluationService | None) -> EvaluationService | None:
    """Replace the process-wide service; returns the previous one.

    Pass ``None`` to reset (a fresh default is created on next use).
    Used by the CLI to install a disk-backed service and by tests to
    isolate cache statistics.
    """
    global _DEFAULT_SERVICE
    previous = _DEFAULT_SERVICE
    _DEFAULT_SERVICE = service
    return previous
