"""Sweep service: memoized, parallel evaluation of the pure memsim core.

Layering (see DESIGN.md §4):

* :mod:`repro.memsim.evaluation` supplies the pure function
  ``evaluate(MachineConfig, streams, DirectoryState)``;
* :class:`EvaluationService` wraps it in a content-keyed memo cache and
  an optional on-disk cache (:class:`~repro.sweep.cache.DiskCache`);
* :class:`SweepRunner` fans whole grids out over a thread or process
  pool (:mod:`repro.sweep.procpool`) — or a worker cluster with a
  shared cache tier and work-stealing (:mod:`repro.sweep.cluster`) —
  with bit-identical, order-independent results keyed by point label.

Everything above this package — experiments, the SSB cost model, the
core advisor/optimizer — evaluates bandwidth through here.
"""

from repro.sweep.cache import CacheStats, DiskCache, MemoCache
from repro.sweep.runner import BACKENDS, SweepRunner
from repro.sweep.service import (
    EvaluationService,
    GridPointError,
    default_service,
    request_key,
    set_default_service,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "DiskCache",
    "EvaluationService",
    "GridPointError",
    "MemoCache",
    "SweepRunner",
    "default_service",
    "request_key",
    "set_default_service",
]
