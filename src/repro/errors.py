"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch everything library-specific with a single handler
while still being able to distinguish configuration problems from runtime
simulation or query-processing failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class TopologyError(ConfigurationError):
    """A hardware topology description is inconsistent.

    Raised, for example, when a DIMM references a memory channel that does
    not exist, or when a NUMA node is assigned to the wrong socket.
    """


class CalibrationError(ConfigurationError):
    """A calibration profile contains physically impossible values."""


class WorkloadError(ConfigurationError):
    """A workload specification is invalid (e.g. zero threads)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class SweepError(SimulationError):
    """A sweep point failed to evaluate.

    Wraps the underlying exception (available as ``__cause__``) and
    names the failing grid and point label — a thread pool's traceback
    alone would not say *which* of a few hundred points was poisoned.
    """


class GridPointError(SweepError):
    """One point of a batched grid evaluation failed.

    Batched evaluation (``EvaluationService.evaluate_grid``) loses the
    caller's per-point framing, so the service reports *which* input
    index failed; the sweep backends map the index back to a point label
    for their :class:`SweepError` message.
    """

    def __init__(self, index: int, original: Exception) -> None:
        super().__init__(f"grid point {index} failed: {original}")
        #: Index into the ``points`` sequence passed to ``evaluate_grid``.
        self.index = index
        #: The exception the point's evaluation raised.
        self.original = original


class SchemaError(ReproError):
    """A benchmark table schema was violated (bad column, wrong dtype)."""


class QueryError(ReproError):
    """A query plan could not be built or executed."""


class ExperimentError(ReproError):
    """An experiment definition is missing or produced malformed output."""


class BenchError(ReproError):
    """The benchmark harness failed: unknown selection, a failing bench,
    or a result payload that does not match the ``repro.bench/1`` schema.
    """


class AnalysisError(ReproError):
    """The static-analysis pass (``repro.analysis``) was misconfigured.

    Raised for malformed ``[tool.simlint]`` config, unknown rule names,
    or an unreadable/invalid baseline file — never for lint findings
    themselves, which are reported as data, not exceptions.
    """
