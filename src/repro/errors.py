"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch everything library-specific with a single handler
while still being able to distinguish configuration problems from runtime
simulation or query-processing failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class TopologyError(ConfigurationError):
    """A hardware topology description is inconsistent.

    Raised, for example, when a DIMM references a memory channel that does
    not exist, or when a NUMA node is assigned to the wrong socket.
    """


class CalibrationError(ConfigurationError):
    """A calibration profile contains physically impossible values."""


class WorkloadError(ConfigurationError):
    """A workload specification is invalid (e.g. zero threads)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class SweepError(SimulationError):
    """A sweep point failed to evaluate.

    Wraps the underlying exception (available as ``__cause__``) and
    names the failing grid and point label — a thread pool's traceback
    alone would not say *which* of a few hundred points was poisoned.
    """


class BackendError(SweepError, ConfigurationError):
    """An unknown sweep backend name was requested.

    Inherits both :class:`SweepError` (it is a sweep-layer failure) and
    :class:`ConfigurationError` (it is a construction-time parameter
    problem), so callers catching either taxonomy branch see it. The
    message always names the valid backend set.
    """

    def __init__(self, backend: object, valid: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown sweep backend {backend!r}; expected one of "
            + ", ".join(repr(b) for b in valid)
        )
        #: The rejected backend value, verbatim.
        self.backend = backend
        #: The recognised backend names, in documentation order.
        self.valid = tuple(valid)


class GridPointError(SweepError):
    """One point of a batched grid evaluation failed.

    Batched evaluation (``EvaluationService.evaluate_grid_columns``)
    loses the caller's per-point framing, so the service reports *which*
    input index failed — and, when the sweep backends supply them, the
    point's label and the grid's name, so the message reads the same
    whether the failure surfaced inline or inside a worker process.

    ``partial`` preserves the ``ResultColumns`` batch of every point
    that completed before the failure (in ``points`` order), so callers
    paying for a long sweep keep what was already computed. It crosses
    the process-pool pickle boundary with the exception.
    """

    def __init__(
        self,
        index: int,
        original: Exception,
        *,
        label: "str | None" = None,
        grid: "str | None" = None,
        partial: "object | None" = None,
    ) -> None:
        if grid is not None and label is not None:
            message = f"sweep {grid!r} point {label!r} failed: {original}"
        else:
            message = f"grid point {index} failed: {original}"
        super().__init__(message)
        #: Index into the ``points`` sequence passed to ``evaluate_grid``.
        self.index = index
        #: The exception the point's evaluation raised.
        self.original = original
        #: Label of the failing point, when the caller framed points.
        self.label = label
        #: Name of the grid being swept, when the caller framed it.
        self.grid = grid
        #: ``ResultColumns`` of the points completed before the failure.
        self.partial = partial

    def __reduce__(self):
        # The default exception reduce replays ``__init__(*args)`` with
        # the stored ``args`` — the formatted message string — which
        # does not match this signature. Rebuild from the real fields so
        # the error survives the process-pool boundary intact.
        return (
            _rebuild_grid_point_error,
            (self.index, self.original, self.label, self.grid, self.partial),
        )


def _rebuild_grid_point_error(
    index: int,
    original: Exception,
    label: "str | None",
    grid: "str | None",
    partial: "object | None",
) -> GridPointError:
    """Unpickle helper for :class:`GridPointError` (see ``__reduce__``)."""
    return GridPointError(index, original, label=label, grid=grid, partial=partial)


class ServeError(ReproError):
    """A serving-layer request failed before, or instead of, evaluating.

    The asyncio front door (:mod:`repro.serve`) answers every failure
    with a typed error payload rather than a stack trace; ``code`` is the
    machine-readable reason that payload carries:

    ``bad_request``
        The request body could not be decoded into an evaluation.
    ``protocol``
        The connection violated framing (oversize frame, slow-loris
        timeout); the server drops the connection after answering.
    ``shed``
        Admission control rejected the request because the bounded queue
        was full. ``retry_after_seconds`` tells the client when the
        coalescer will plausibly have drained a window's worth of work.
    ``deadline``
        The request's deadline passed while it sat in the gather queue;
        it was dropped without being evaluated.
    ``evaluation``
        The evaluation itself raised; the message carries the
        :class:`GridPointError` attribution (grid and point label).
    ``shutdown``
        The server is closing and will not answer queued work.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after_seconds: "float | None" = None,
    ) -> None:
        super().__init__(message)
        #: Machine-readable failure class (see class docstring).
        self.code = code
        #: Seconds after which a ``shed`` request is worth retrying.
        self.retry_after_seconds = retry_after_seconds


class SchemaError(ReproError):
    """A structured payload violated its schema (bad column, wrong dtype).

    Raised for benchmark tables and for on-disk cache payloads whose
    declared schema or column shapes do not line up; the disk cache maps
    it to a miss rather than serving a half-valid result.
    """


class QueryError(ReproError):
    """A query plan could not be built or executed."""


class ExperimentError(ReproError):
    """An experiment definition is missing or produced malformed output."""


class BenchError(ReproError):
    """The benchmark harness failed: unknown selection, a failing bench,
    or a result payload that does not match the ``repro.bench/1`` schema.
    """


class AnalysisError(ReproError):
    """The static-analysis pass (``repro.analysis``) was misconfigured.

    Raised for malformed ``[tool.simlint]`` config, unknown rule names,
    or an unreadable/invalid baseline file — never for lint findings
    themselves, which are reported as data, not exceptions.
    """
