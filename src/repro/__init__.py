"""repro — reproduction of "Maximizing Persistent Memory Bandwidth
Utilization for OLAP Workloads" (Daase et al., SIGMOD 2021).

The package provides five layers:

* :mod:`repro.memsim` — a mechanistic simulator of the paper's dual-
  socket Optane/DRAM memory subsystem (the hardware substrate the paper
  measured);
* :mod:`repro.workloads` — the paper's microbenchmark workloads as data;
* :mod:`repro.core` — the paper's contribution: 12 insights, 7 best
  practices, a configuration tuner, and a placement advisor, all checked
  against the simulator rather than hard-coded;
* :mod:`repro.ssb` — a real, executing Star Schema Benchmark (generator,
  columnar engine, Dash-like and chained hash indexes) whose measured
  traffic the simulator prices for PMEM/DRAM/SSD deployments;
* :mod:`repro.experiments` — every figure and table of the paper's
  evaluation, regenerated from the layers above.

Quickstart::

    from repro import BandwidthModel, PlacementAdvisor, WorkloadIntent
    from repro.core import AccessProfile

    model = BandwidthModel()
    print(model.sequential_read(threads=18, access_size=4096))   # ~40 GB/s
    print(model.sequential_write(threads=36, access_size=65536)) # the collapse

    advisor = PlacementAdvisor(model)
    intent = WorkloadIntent(profile=AccessProfile.JOIN_HEAVY)
    print(advisor.recommend(intent).describe())
"""

from repro.core import (
    AccessProfile,
    PlacementAdvisor,
    Recommendation,
    WorkloadIntent,
    verify_all,
    verify_practices,
)
from repro.memsim import (
    BandwidthModel,
    DaxMode,
    DeviceCalibration,
    Layout,
    MediaKind,
    Op,
    Pattern,
    PinningPolicy,
    StreamSpec,
    build_topology,
    paper_calibration,
    paper_server,
)

__version__ = "1.0.0"

__all__ = [
    "AccessProfile",
    "BandwidthModel",
    "DaxMode",
    "DeviceCalibration",
    "Layout",
    "MediaKind",
    "Op",
    "Pattern",
    "PinningPolicy",
    "PlacementAdvisor",
    "Recommendation",
    "StreamSpec",
    "WorkloadIntent",
    "__version__",
    "build_topology",
    "paper_calibration",
    "paper_server",
    "verify_all",
    "verify_practices",
]
