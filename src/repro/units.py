"""Unit helpers shared across the package.

Conventions
-----------
* *Sizes* (capacities, access sizes, buffer sizes) are plain integers in
  bytes. Binary multiples (:data:`KIB`, :data:`MIB`, :data:`GIB`) are used
  for anything that is a power-of-two hardware quantity, which matches the
  paper: a "4 KB access" is 4096 bytes, a "128 GB DIMM" is ``128 * GIB``.
* *Bandwidths* are floats in **decimal** gigabytes per second (GB/s),
  matching the unit used on every figure axis in the paper.
* *Times* are floats in seconds; nanosecond constants are provided for
  latency bookkeeping.
"""

from __future__ import annotations

#: One kibibyte (2**10 bytes).
KIB: int = 1024
#: One mebibyte (2**20 bytes).
MIB: int = 1024 * KIB
#: One gibibyte (2**30 bytes).
GIB: int = 1024 * MIB
#: One tebibyte (2**40 bytes).
TIB: int = 1024 * GIB

#: One decimal gigabyte (10**9 bytes), the unit behind "GB/s" figures.
GB: int = 1_000_000_000

#: One nanosecond in seconds.
NS: float = 1e-9
#: One microsecond in seconds.
US: float = 1e-6
#: One millisecond in seconds.
MS: float = 1e-3


def gib(n: float) -> int:
    """Return ``n`` gibibytes as an integer byte count."""
    return int(n * GIB)


def mib(n: float) -> int:
    """Return ``n`` mebibytes as an integer byte count."""
    return int(n * MIB)


def kib(n: float) -> int:
    """Return ``n`` kibibytes as an integer byte count."""
    return int(n * KIB)


def gbps(bytes_count: float, seconds: float) -> float:
    """Convert a byte count over a duration into decimal GB/s.

    Raises
    ------
    ZeroDivisionError
        If ``seconds`` is zero; callers are expected to guard against
        measuring zero-length intervals.
    """
    return bytes_count / seconds / GB


def seconds_for(bytes_count: float, bandwidth_gbps: float) -> float:
    """Return the time needed to move ``bytes_count`` at ``bandwidth_gbps``.

    A zero or negative bandwidth is a caller bug and raises ``ValueError``
    instead of silently returning infinity.
    """
    if bandwidth_gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
    return bytes_count / (bandwidth_gbps * GB)


def fmt_bytes(n: int) -> str:
    """Render a byte count with a human-friendly binary suffix.

    >>> fmt_bytes(4096)
    '4.0KiB'
    >>> fmt_bytes(64)
    '64B'
    """
    if n < KIB:
        return f"{n}B"
    for suffix, factor in (("KiB", KIB), ("MiB", MIB), ("GiB", GIB), ("TiB", TIB)):
        if n < factor * 1024 or suffix == "TiB":
            return f"{n / factor:.1f}{suffix}"
    raise AssertionError("unreachable")
