"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (figures/tables).
``run <exp-id> [...]``
    Run one or more experiments and print their rendered results.
    ``--metrics`` additionally collects observability counters
    (``repro.obs``) and prints them after the results; ``-o FILE``
    writes the counter snapshot as canonical JSON.
``trace <exp-id>``
    Run one experiment under a :class:`~repro.obs.TraceRecorder` and
    emit the span/event stream as JSON Lines (stdout or ``-o FILE``).
``report``
    Print the full paper-vs-measured markdown report (EXPERIMENTS.md body).
``bandwidth``
    Query the bandwidth model for one configuration.
``ssb``
    Execute the Star Schema Benchmark reproduction (Fig. 14 + Table 1).
``verify``
    Check the 12 insights and 7 best practices against the model.
``advise``
    Run the placement advisor for a workload profile.
``hybrid``
    Plan a hybrid PMEM-DRAM placement (the paper's future work, §9).
``lint``
    Run simlint, the repo's static-analysis pass (``repro.analysis``).
``bench``
    Run the ``benchmarks/`` suite (or a subset) and emit a canonical
    ``BENCH_<timestamp>.json`` snapshot for the performance trajectory.
``serve``
    Run the bandwidth server (``repro.serve``): a TCP front door that
    coalesces concurrent evaluation requests into columnar batches.
``request``
    Send one JSON request frame to a running server and print the
    response.
``worker``
    Run a standing cluster sweep worker (``repro.sweep.cluster``) that
    coordinators reach with ``repro run --backend cluster --connect``.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.memsim import BandwidthModel, Layout, MediaKind, PinningPolicy
from repro.memsim.spec import Pattern


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        # argparse's documented contract for type= callables: it becomes
        # a usage error with exit code 2.
        raise argparse.ArgumentTypeError("must be >= 1")  # simlint: ignore[foreign-raise] -- argparse type= contract
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Maximizing Persistent Memory Bandwidth "
        "Utilization for OLAP Workloads' (SIGMOD 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    run = sub.add_parser("run", help="run experiments by id")
    run.add_argument("experiments", nargs="+", metavar="EXP",
                     help="experiment ids, e.g. fig7 table1")
    run.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                     help="evaluate sweep points on N workers (default 1; "
                          "results are bit-identical to serial runs)")
    run.add_argument("--backend",
                     choices=("serial", "thread", "process", "vector", "cluster"),
                     default="vector",
                     help="sweep worker pool: 'vector' (default) batches "
                          "eligible points through the NumPy kernels and "
                          "keeps results columnar, 'thread' shares the "
                          "memo cache, 'process' scales cold grids across "
                          "cores, 'cluster' shards across worker processes "
                          "with a shared cache and work-stealing, 'serial' "
                          "forces inline evaluation (all bit-identical)")
    run.add_argument("--workers", type=_positive_int, default=None, metavar="N",
                     help="with --backend cluster: local worker processes "
                          "to spawn (default 2, or --jobs when > 1)")
    run.add_argument("--connect", action="append", metavar="HOST:PORT",
                     default=None,
                     help="with --backend cluster: dial a standing 'repro "
                          "worker' peer instead of spawning locally "
                          "(repeatable)")
    run.add_argument("--cache-dir", metavar="PATH", default=None,
                     help="persist evaluation results under PATH and reuse "
                          "them across runs")
    run.add_argument("--metrics", action="store_true",
                     help="collect observability counters during the run and "
                          "print a report after the results")
    run.add_argument("-o", "--output", metavar="FILE", default=None,
                     help="with --metrics: also write the counter snapshot "
                          "as canonical JSON to FILE")

    trace = sub.add_parser(
        "trace", help="run one experiment and emit its trace as JSON Lines"
    )
    trace.add_argument("experiment", metavar="EXP",
                       help="experiment id, e.g. fig3")
    trace.add_argument("-o", "--output", metavar="FILE", default=None,
                       help="write the JSONL trace to FILE instead of stdout")
    trace.add_argument("--timestamps", action="store_true",
                       help="stamp every record with a wall-clock 't' field "
                            "(seconds; makes the trace nondeterministic)")

    sub.add_parser("report", help="print the paper-vs-measured report")

    bandwidth = sub.add_parser("bandwidth", help="query the bandwidth model")
    bandwidth.add_argument("--op", choices=("read", "write"), default="read")
    bandwidth.add_argument("--threads", type=int, default=18)
    bandwidth.add_argument("--size", type=int, default=4096,
                           help="access size in bytes")
    bandwidth.add_argument("--media", choices=("pmem", "dram"), default="pmem")
    bandwidth.add_argument("--layout", choices=("grouped", "individual"),
                           default="individual")
    bandwidth.add_argument("--pattern", choices=("sequential", "random"),
                           default="sequential")
    bandwidth.add_argument("--pinning", choices=("none", "numa_region", "cores"),
                           default="cores")
    bandwidth.add_argument("--far", action="store_true",
                           help="access the other socket's memory")
    bandwidth.add_argument("--cold", action="store_true",
                           help="far access with a cold coherence directory")

    ssb = sub.add_parser("ssb", help="run the SSB reproduction")
    ssb.add_argument("--sf", type=float, default=0.05,
                     help="measured scale factor for the real execution")

    sub.add_parser("verify", help="verify the 12 insights and 7 practices")

    advise = sub.add_parser("advise", help="run the placement advisor")
    advise.add_argument("--profile",
                        choices=("scan_heavy", "join_heavy", "ingest", "mixed"),
                        default="scan_heavy")
    advise.add_argument("--threads", type=int, default=36,
                        help="threads available per socket")
    advise.add_argument("--sockets", type=int, default=2)
    advise.add_argument("--no-system-control", action="store_true")
    advise.add_argument("--needs-filesystem", action="store_true")

    hybrid = sub.add_parser(
        "hybrid", help="plan a hybrid PMEM-DRAM placement (future work, §9)"
    )
    hybrid.add_argument("--dram-budget-gib", type=float, default=48.0)
    hybrid.add_argument("--sf", type=float, default=0.02,
                        help="measured scale factor for the traffic run")

    lint = sub.add_parser(
        "lint", add_help=False,
        help="run simlint, the repo's static-analysis pass",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to python -m repro.analysis")

    bench = sub.add_parser(
        "bench", help="run benchmarks and emit a BENCH_<timestamp>.json snapshot"
    )
    bench.add_argument("benches", nargs="*", metavar="BENCH",
                       help="bench names or substrings, e.g. fig03 "
                            "procpool (default: the whole suite)")
    bench.add_argument("--smoke", action="store_true",
                       help="run the pinned fast subset with one round and "
                            "no warmup (seconds, not minutes)")
    bench.add_argument("--no-warmup", action="store_true",
                       help="skip pytest-benchmark's warmup phase")
    bench.add_argument("--rounds", type=_positive_int, default=3, metavar="N",
                       help="minimum timing rounds per bench (default 3)")
    bench.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker count recorded in the snapshot and "
                            "exported to parameterised benches")
    bench.add_argument("--backend",
                       choices=("serial", "thread", "process", "vector", "cluster"),
                       default="thread",
                       help="sweep backend recorded in the snapshot and "
                            "exported to parameterised benches")
    bench.add_argument("-o", "--output", metavar="PATH", default=None,
                       help="output file or directory (default: "
                            "./BENCH_<timestamp>.json)")

    serve = sub.add_parser(
        "serve", help="run the coalescing bandwidth server over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick an ephemeral port "
                            "and print it)")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="gather window in milliseconds (default 2.0)")
    serve.add_argument("--max-batch", type=_positive_int, default=64,
                       metavar="N",
                       help="most points coalesced into one batch")
    serve.add_argument("--max-queue", type=_positive_int, default=256,
                       metavar="N",
                       help="admission-control queue bound; beyond it, "
                            "requests are shed with a retry-after hint")
    serve.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="persist evaluation results under PATH")

    request = sub.add_parser(
        "request", help="send one request frame to a running server"
    )
    request.add_argument("--host", default="127.0.0.1")
    request.add_argument("--port", type=int, required=True)
    request.add_argument("frame", nargs="?", default=None,
                         help="request frame as a JSON object (default: "
                              "read one line from stdin)")

    worker = sub.add_parser(
        "worker", help="run a standing cluster sweep worker"
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0: pick an ephemeral port "
                             "and print it)")
    worker.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="persist this worker's evaluation results "
                             "under PATH across sweeps")
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import REGISTRY

    for experiment in REGISTRY.values():
        print(f"{experiment.exp_id:<14} §{experiment.paper_section:<8} {experiment.title}")
    return 0


def _cmd_run(
    experiment_ids: Sequence[str],
    jobs: int = 1,
    backend: str = "vector",
    cache_dir: str | None = None,
    metrics: bool = False,
    output: str | None = None,
    workers: int | None = None,
    connect: Sequence[str] | None = None,
) -> int:
    import contextlib

    from repro.experiments.registry import run_experiment
    from repro.obs import CountersRecorder, using_recorder
    from repro.sweep import (
        DiskCache,
        EvaluationService,
        default_service,
        set_default_service,
    )

    recorder = CountersRecorder() if metrics else None
    scope = (
        using_recorder(recorder) if recorder is not None
        else contextlib.nullcontext()
    )
    previous = None
    if cache_dir is not None:
        # Route every evaluation (experiments, SSB pricing, the façade)
        # through a service backed by the on-disk cache for this command.
        previous = set_default_service(
            EvaluationService(disk_cache=DiskCache(cache_dir))
        )
    previous_cluster = None
    installed_cluster = False
    if backend == "cluster" and (workers is not None or connect):
        from repro.sweep.cluster import (
            ClusterOptions,
            parse_endpoint,
            set_default_cluster_options,
        )

        previous_cluster = set_default_cluster_options(
            ClusterOptions(
                workers=workers if workers is not None else 2,
                connect=tuple(parse_endpoint(text) for text in connect or ()),
            )
        )
        installed_cluster = True
    try:
        with scope:
            for exp_id in experiment_ids:
                print(run_experiment(exp_id, jobs=jobs, backend=backend).render())
                print()
        print(default_service().stats.describe())
    finally:
        if cache_dir is not None:
            set_default_service(previous)
        if installed_cluster:
            from repro.sweep.cluster import set_default_cluster_options

            set_default_cluster_options(previous_cluster)
    if recorder is not None:
        from repro.obs.report import render_recorder

        print()
        print(render_recorder(recorder))
        if output is not None:
            from repro.obs.golden import canonical_json

            with open(output, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(recorder.snapshot()))
            print(f"wrote metrics snapshot to {output}")
    return 0


def _cmd_trace(experiment_id: str, output: str | None, timestamps: bool) -> int:
    import time

    from repro.experiments.registry import run_experiment
    from repro.obs import TraceRecorder, using_recorder

    recorder = TraceRecorder(
        clock=time.perf_counter if timestamps else None,
        record_observations=timestamps,
    )
    with using_recorder(recorder):
        with recorder.span("experiment", exp_id=experiment_id):
            run_experiment(experiment_id)
    if output is not None:
        recorder.export_jsonl(output)
        print(f"wrote {len(recorder)} trace records to {output}")
    else:
        sys.stdout.write(recorder.export_jsonl())
    return 0


def _cmd_report() -> int:
    from repro.experiments.report import generate_report

    print(generate_report())
    return 0


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    model = BandwidthModel()
    media = MediaKind.PMEM if args.media == "pmem" else MediaKind.DRAM
    layout = Layout.GROUPED if args.layout == "grouped" else Layout.INDIVIDUAL
    pinning = PinningPolicy(args.pinning)
    if args.pattern == "random":
        if args.op == "read":
            gbps = model.random_read(args.threads, args.size, media=media)
        else:
            gbps = model.random_write(args.threads, args.size, media=media)
    elif args.op == "read":
        if args.far and not args.cold:
            model.warm_directory()
        gbps = model.sequential_read(
            args.threads, args.size, layout=layout, media=media,
            pinning=pinning, far=args.far, warm=args.far and not args.cold,
        )
    else:
        gbps = model.sequential_write(
            args.threads, args.size, layout=layout, media=media,
            pinning=pinning, far=args.far,
        )
    locality = "far" if args.far else "near"
    print(
        f"{args.op} {args.pattern} {args.size}B x {args.threads} threads "
        f"({args.layout}, {args.pinning}, {locality} {args.media}): "
        f"{gbps:.2f} GB/s"
    )
    return 0


def _cmd_ssb(args: argparse.Namespace) -> int:
    from repro.ssb.runner import SsbRunner, average_slowdown

    runner = SsbRunner(measured_sf=args.sf)
    handcrafted = runner.figure14b()
    hyrise = runner.figure14a()
    print("Figure 14b (handcrafted, sf 100):")
    for name, seconds in handcrafted["pmem"].seconds.items():
        dram = handcrafted["dram"].breakdowns[name].seconds
        print(f"  {name:<6} pmem={seconds:7.2f}s dram={dram:7.2f}s")
    print(
        f"average slowdown: "
        f"{average_slowdown(handcrafted['pmem'], handcrafted['dram']):.2f}x "
        "(paper 1.66x)"
    )
    print(
        f"Hyrise average slowdown: "
        f"{average_slowdown(hyrise['pmem'], hyrise['dram']):.2f}x (paper 5.3x)"
    )
    print("Table 1 (Q2.1):")
    for media, ladder in runner.table1().items():
        cells = "  ".join(f"{step}={seconds:.1f}s" for step, seconds in ladder.items())
        print(f"  {media}: {cells}")
    print(f"Q2.1 on SSD: {runner.q21_on_ssd():.1f}s (paper 22.8s)")
    return 0


def _cmd_verify() -> int:
    from repro.core import practices_report, verify_all

    model = BandwidthModel()
    insights = verify_all(model)
    failed = [number for number, ok in insights.items() if not ok]
    print(practices_report(model))
    print()
    if failed:
        print(f"FAILED insights: {failed}")
        return 1
    print("all 12 insights and 7 best practices hold")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core import AccessProfile, PlacementAdvisor, WorkloadIntent

    intent = WorkloadIntent(
        profile=AccessProfile(args.profile),
        threads_per_socket=args.threads,
        sockets=args.sockets,
        full_system_control=not args.no_system_control,
        needs_filesystem=args.needs_filesystem,
    )
    print(PlacementAdvisor().recommend(intent).describe())
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from repro.core.hybrid import HybridPlanner, ssb_structures
    from repro.ssb.runner import SsbRunner
    from repro.ssb.storage import (
        HANDCRAFTED_DRAM,
        HANDCRAFTED_PMEM,
        HYBRID_PMEM_DRAM,
    )
    from repro.units import GIB

    runner = SsbRunner(measured_sf=args.sf)
    structures = ssb_structures(runner, target_sf=100.0)
    plan = HybridPlanner().plan(structures, dram_budget=int(args.dram_budget_gib * GIB))
    print(plan.describe())
    print()
    for label, profile in (
        ("PMEM-only", HANDCRAFTED_PMEM),
        ("hybrid", HYBRID_PMEM_DRAM),
        ("DRAM-only", HANDCRAFTED_DRAM),
    ):
        run = runner.run(profile, target_sf=100)
        print(f"  {label:<10} avg query {run.average_seconds:6.2f}s")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks, write_payload
    from repro.errors import BenchError

    try:
        payload = run_benchmarks(
            args.benches or None,
            smoke=args.smoke,
            warmup=not args.no_warmup,
            rounds=args.rounds,
            jobs=args.jobs,
            backend=args.backend,
        )
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1
    path = write_payload(payload, args.output)
    benches = payload["benchmarks"]
    print(f"wrote {len(benches)} benchmark results to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import BandwidthServer, ServeConfig
    from repro.sweep import DiskCache, EvaluationService
    from repro.units import MS

    disk = DiskCache(args.cache_dir) if args.cache_dir is not None else None
    service = EvaluationService(disk_cache=disk)
    config = ServeConfig(
        gather_window_seconds=args.window_ms * MS,
        max_batch_points=args.max_batch,
        max_queue_depth=args.max_queue,
    )

    async def run() -> int:
        server = BandwidthServer(service, config=config)
        host, port = await server.serve_tcp(args.host, args.port)
        print(f"serving repro.serve/1 on {host}:{port} "
              f"(window {args.window_ms}ms, batch<={args.max_batch}, "
              f"queue<={args.max_queue})", flush=True)
        try:
            while True:
                await asyncio.sleep(3600)
        except asyncio.CancelledError:
            return 0
        finally:
            await server.close()
            print(server.stats.describe())

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_request(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve.client import request_once

    text = args.frame if args.frame is not None else sys.stdin.readline()
    try:
        frame = json.loads(text)
    except ValueError as exc:
        print(f"request: frame is not JSON: {exc}", file=sys.stderr)
        return 2
    response = asyncio.run(request_once(args.host, args.port, frame))
    try:
        print(json.dumps(response, indent=2, sort_keys=True))
    except BrokenPipeError:
        # The consumer (``| head``, ``| jq``) closed stdout early; point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if response.get("ok") else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio

    from repro.sweep.cluster import serve_worker

    async def run() -> int:
        host, port, server = await serve_worker(
            args.host, args.port, cache_dir=args.cache_dir
        )
        print(f"cluster worker listening on {host}:{port}", flush=True)
        async with server:
            await server.serve_forever()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Dispatched before parsing: argparse's REMAINDER cannot forward
        # option-like tokens (e.g. ``repro lint --json``) from a subparser.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiments,
            jobs=args.jobs,
            backend=args.backend,
            cache_dir=args.cache_dir,
            metrics=args.metrics,
            output=args.output,
            workers=args.workers,
            connect=args.connect,
        )
    if args.command == "trace":
        return _cmd_trace(args.experiment, args.output, args.timestamps)
    if args.command == "report":
        return _cmd_report()
    if args.command == "bandwidth":
        return _cmd_bandwidth(args)
    if args.command == "ssb":
        return _cmd_ssb(args)
    if args.command == "verify":
        return _cmd_verify()
    if args.command == "advise":
        return _cmd_advise(args)
    if args.command == "hybrid":
        return _cmd_hybrid(args)
    if args.command == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(args.lint_args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "request":
        return _cmd_request(args)
    if args.command == "worker":
        return _cmd_worker(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
