"""The paper's seven best practices (§7), derived from the insights.

Each practice aggregates the insights it condenses and is verifiable
against the model through them. :func:`verify_practices` is the
reproduction of the paper's headline contribution: running it confirms
that all seven recommendations follow from the modeled mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.insights import ALL_INSIGHTS, get_insight
from repro.memsim import BandwidthModel


@dataclass(frozen=True)
class BestPractice:
    """One of the seven best practices of paper §7."""

    number: int
    statement: str
    insight_numbers: tuple[int, ...]

    def insights(self):
        """The underlying insights this practice condenses."""
        return tuple(get_insight(n) for n in self.insight_numbers)

    def holds(self, model: BandwidthModel) -> bool:
        """True when every underlying insight checks out in the model."""
        return all(insight.check(model) for insight in self.insights())


BEST_PRACTICES: tuple[BestPractice, ...] = (
    BestPractice(
        1,
        "Read and write to PMEM in distinct memory regions.",
        (1, 6),
    ),
    BestPractice(
        2,
        "Scale up the number of threads when reading but limit the "
        "threads to 4-6 per socket when writing.",
        (2, 7),
    ),
    BestPractice(
        3,
        "Pin threads (explicitly) within their NUMA regions for maximum "
        "bandwidth.",
        (3, 8),
    ),
    BestPractice(
        4,
        "Place data on all sockets but access it only from near NUMA "
        "regions.",
        (4, 5, 9, 10),
    ),
    BestPractice(
        5,
        "Avoid large mixed read-write workloads when possible.",
        (11,),
    ),
    BestPractice(
        6,
        "Access PMEM sequentially or use the largest possible access for "
        "random workloads.",
        (12,),
    ),
    BestPractice(
        7,
        "Use PMEM in devdax mode for maximum performance.",
        (),  # verified directly below, not via a numbered insight
    ),
)


def get_practice(number: int) -> BestPractice:
    """Look up a best practice by its paper number (1-7)."""
    for practice in BEST_PRACTICES:
        if practice.number == number:
            return practice
    raise KeyError(f"no best practice #{number}; the paper defines 1-7")


def _devdax_beats_fsdax(model: BandwidthModel) -> bool:
    from repro.memsim import DaxMode

    devdax = model.sequential_read(18, 4096)
    fsdax = model.sequential_read(18, 4096, dax_mode=DaxMode.FSDAX)
    return devdax > fsdax


def verify_practices(model: BandwidthModel | None = None) -> dict[int, bool]:
    """Check all seven practices against the model; return {number: holds}."""
    model = model if model is not None else BandwidthModel()
    results: dict[int, bool] = {}
    for practice in BEST_PRACTICES:
        if practice.number == 7:
            results[7] = _devdax_beats_fsdax(model)
        else:
            results[practice.number] = practice.holds(model)
    return results


def practices_report(model: BandwidthModel | None = None) -> str:
    """Render the practices with their verification status (examples)."""
    model = model if model is not None else BandwidthModel()
    results = verify_practices(model)
    lines = ["Best practices for PMEM bandwidth in OLAP workloads (paper §7):"]
    for practice in BEST_PRACTICES:
        mark = "HOLDS" if results[practice.number] else "VIOLATED"
        lines.append(f"  ({practice.number}) [{mark}] {practice.statement}")
        if practice.insight_numbers:
            refs = ", ".join(f"#{n}" for n in practice.insight_numbers)
            lines.append(f"      derived from insights {refs}")
    covered = {n for p in BEST_PRACTICES for n in p.insight_numbers}
    missing = [i.number for i in ALL_INSIGHTS if i.number not in covered]
    if missing:
        lines.append(f"  (insights not condensed into a practice: {missing})")
    return "\n".join(lines)
