"""The paper's twelve numbered insights, as machine-checkable claims.

Each :class:`Insight` carries the verbatim statement from the paper and a
``check`` predicate that verifies the claim *holds in the model* — the
reproduction treats the insights as falsifiable outputs, not as inputs.
``verify_all`` is run by the test suite and by the best-practices
benchmark; a failing insight means the mechanistic model no longer
supports the paper's conclusion.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.memsim import BandwidthModel, Layout, PinningPolicy


@dataclass(frozen=True)
class Insight:
    """One numbered insight from the paper."""

    number: int
    section: str
    statement: str
    check: Callable[[BandwidthModel], bool]


def _insight_1(m: BandwidthModel) -> bool:
    # Individual regions are size-insensitive and fast; grouped access
    # peaks at 4 KB.
    individual = [m.sequential_read(18, s) for s in (64, 256, 4096, 65536)]
    grouped_best = max(
        (64, 256, 1024, 4096, 16384),
        key=lambda s: m.sequential_read(36, s, layout=Layout.GROUPED),
    )
    return min(individual) > 0.85 * max(individual) and grouped_best == 4096


def _insight_2(m: BandwidthModel) -> bool:
    # All cores needed to saturate; hyperthreaded reads do not help.
    return (
        m.sequential_read(18, 4096) > m.sequential_read(8, 4096)
        and m.sequential_read(24, 4096) <= m.sequential_read(18, 4096)
    )


def _insight_3(m: BandwidthModel) -> bool:
    pinned = m.sequential_read(18, 4096)
    unpinned = m.sequential_read(18, 4096, pinning=PinningPolicy.NONE)
    return pinned > 3.0 * unpinned


def _insight_4(m: BandwidthModel) -> bool:
    m.reset_directory()
    cold = m.sequential_read(18, 4096, far=True, warm=False)
    warm = m.sequential_read(18, 4096, far=True, warm=True)
    near = m.sequential_read(18, 4096)
    return near > warm > cold


def _insight_5(m: BandwidthModel) -> bool:
    from repro.memsim.spec import Op, StreamSpec

    m.warm_directory()
    near = StreamSpec(op=Op.READ, threads=18, pinning=PinningPolicy.NUMA_REGION)
    two_near = m.evaluate(
        [near, near.with_(issuing_socket=1, target_socket=1)]
    ).total_gbps
    two_far = m.evaluate(
        [
            near.with_(issuing_socket=0, target_socket=1),
            near.with_(issuing_socket=1, target_socket=0),
        ]
    ).total_gbps
    one_near = m.evaluate([near]).total_gbps
    return two_near > 1.9 * one_near and two_near > 1.4 * two_far


def _insight_6(m: BandwidthModel) -> bool:
    best = max(
        (64, 256, 1024, 4096, 16384, 65536),
        key=lambda s: m.sequential_write(6, s, layout=Layout.GROUPED),
    )
    small_best = max(
        (64, 128, 256, 512),
        key=lambda s: m.sequential_write(24, s, layout=Layout.GROUPED),
    )
    return best == 4096 and small_best == 256


def _insight_7(m: BandwidthModel) -> bool:
    # 4-6 threads for large blocks; small accesses tolerate scaling.
    large_best = max((1, 2, 4, 6, 8, 18, 36), key=lambda t: m.sequential_write(t, 65536))
    small_ok = m.sequential_write(36, 256) >= 0.8 * m.sequential_write(18, 256)
    return large_best in (4, 6) and small_ok


def _insight_8(m: BandwidthModel) -> bool:
    cores = m.sequential_write(24, 4096)
    numa = m.sequential_write(24, 4096, pinning=PinningPolicy.NUMA_REGION)
    none = m.sequential_write(24, 4096, pinning=PinningPolicy.NONE)
    return cores >= numa > none


def _insight_9(m: BandwidthModel) -> bool:
    near = max(m.sequential_write(t, 4096) for t in (4, 6, 8))
    far = max(m.sequential_write(t, 4096, far=True) for t in (4, 6, 8, 18))
    return near > 1.5 * far


def _insight_10(m: BandwidthModel) -> bool:
    from repro.memsim.spec import Op, StreamSpec

    near = StreamSpec(
        op=Op.WRITE, threads=4, pinning=PinningPolicy.NUMA_REGION
    )
    contended = m.evaluate(
        [near, near.with_(threads=8, issuing_socket=1, target_socket=0)]
    ).total_gbps
    alone = m.evaluate([near]).total_gbps
    return contended < alone


def _insight_11(m: BandwidthModel) -> bool:
    # Mixing reads and writes costs both sides heavily: serialize when
    # latency allows.
    out = m.mixed(write_threads=6, read_threads=18)
    return out.read_retention < 0.5 and out.write_retention < 0.5


def _insight_12(m: BandwidthModel) -> bool:
    sequential_beats_random = m.sequential_read(36, 4096) > m.random_read(36, 4096)
    bigger_random_better = m.random_read(36, 4096) > m.random_read(36, 256)
    return sequential_beats_random and bigger_random_better


ALL_INSIGHTS: tuple[Insight, ...] = (
    Insight(1, "3.1", "Read data from individual memory regions or in consecutive "
                      "4 KB chunks to benefit from prefetching and an even "
                      "thread-to-DIMM distribution.", _insight_1),
    Insight(2, "3.2", "Use all available cores for maximum read bandwidth and "
                      "avoid hyperthreaded reads.", _insight_2),
    Insight(3, "3.3", "Pin threads to avoid far-memory access.", _insight_3),
    Insight(4, "3.4", "Threads should only read data on their near socket PMEM. "
                      "If this is not possible, the assignment of address spaces "
                      "to NUMA regions should change as rarely as possible.", _insight_4),
    Insight(5, "3.5", "If possible, stripe data into independent and evenly "
                      "distributed data sets across the PMEM of all sockets and "
                      "ensure that sockets read only from near PMEM.", _insight_5),
    Insight(6, "4.1", "Write data in 4 KB chunks to achieve the highest bandwidth "
                      "or in 256 Byte chunks if smaller consecutive writes are "
                      "necessary.", _insight_6),
    Insight(7, "4.2", "Use 4-6 threads to write to PMEM in large blocks or keep "
                      "the access small when scaling the number of threads.", _insight_7),
    Insight(8, "4.3", "Pin write-threads to individual cores if you have full "
                      "system control. Otherwise, pin them to NUMA regions.", _insight_8),
    Insight(9, "4.4", "Threads should only write data to their near PMEM.", _insight_9),
    Insight(10, "4.5", "Avoid contending cross-socket writes.", _insight_10),
    Insight(11, "5.1", "Serialize PMEM access when possible.", _insight_11),
    Insight(12, "5.2", "Access PMEM sequentially or use the largest possible "
                       "access for random workloads.", _insight_12),
)


def get_insight(number: int) -> Insight:
    """Look up an insight by its paper number (1-12)."""
    for insight in ALL_INSIGHTS:
        if insight.number == number:
            return insight
    raise KeyError(f"no insight #{number}; the paper defines 1-12")


def verify_all(model: BandwidthModel | None = None) -> dict[int, bool]:
    """Check every insight against the model; return {number: holds}."""
    model = model if model is not None else BandwidthModel()
    return {insight.number: insight.check(model) for insight in ALL_INSIGHTS}
