"""Hybrid PMEM-DRAM placement planning (the paper's future work, §9).

The paper closes with "we plan to transfer our insights to hybrid
PMEM-DRAM setups" and motivates the split in §5.2: DRAM's random-access
bandwidth, at full channel use, is ~4x PMEM's, while sequential scans
lose only ~2-3x — so scarce DRAM should hold the *random-access*
structures (hash indexes, intermediates) and PMEM the *sequentially
scanned* base data.

This module turns that principle into a planner: given the structures of
a workload (size, traffic, access pattern) and a DRAM budget, it places
each structure to maximize the modeled time saved, via a greedy
benefit-density knapsack — and can emit the corresponding hybrid SSB
deployment profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, DirectoryState, MediaKind, Op, StreamSpec
from repro.memsim.spec import Pattern
from repro.units import GB


class StructureKind(enum.Enum):
    """Dominant access pattern of a placed structure."""

    SEQUENTIAL = "sequential"   # scanned base tables, logs
    RANDOM = "random"           # hash indexes, point-lookup structures


@dataclass(frozen=True)
class Structure:
    """One placeable piece of the workload's data."""

    name: str
    size_bytes: int
    #: Bytes the workload moves through this structure per query round.
    traffic_bytes: float
    kind: StructureKind
    #: Access granularity for random structures (bucket/node size).
    access_size: int = 256

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if self.traffic_bytes < 0:
            raise ConfigurationError(f"{self.name}: traffic cannot be negative")


@dataclass
class Placement:
    """The planner's decision for one structure."""

    structure: Structure
    media: MediaKind
    seconds_saved: float


@dataclass
class HybridPlan:
    """Complete placement plan under a DRAM budget."""

    dram_budget: int
    placements: list[Placement] = field(default_factory=list)

    @property
    def dram_used(self) -> int:
        return sum(
            p.structure.size_bytes
            for p in self.placements
            if p.media is MediaKind.DRAM
        )

    @property
    def total_seconds_saved(self) -> float:
        """Total query seconds saved by the DRAM placements in this plan."""
        return sum(p.seconds_saved for p in self.placements if p.media is MediaKind.DRAM)

    def media_of(self, name: str) -> MediaKind:
        for placement in self.placements:
            if placement.structure.name == name:
                return placement.media
        raise ConfigurationError(f"no structure named {name!r} in the plan")

    def describe(self) -> str:
        lines = [
            f"hybrid plan (DRAM budget {self.dram_budget / GB:.1f} GB, "
            f"used {self.dram_used / GB:.1f} GB, "
            f"saves {self.total_seconds_saved:.2f}s per round):"
        ]
        for placement in self.placements:
            s = placement.structure
            lines.append(
                f"  {s.name:<24} {s.size_bytes / GB:7.2f} GB {s.kind.value:<10} "
                f"-> {placement.media.value.upper():<4} "
                f"(saves {placement.seconds_saved:.3f}s)"
            )
        return "\n".join(lines)


class HybridPlanner:
    """Places structures on PMEM or DRAM to maximize modeled time saved."""

    def __init__(self, model: BandwidthModel | None = None, threads: int = 18) -> None:
        if threads < 1:
            raise ConfigurationError("need at least one thread")
        self.model = model if model is not None else BandwidthModel()
        self.threads = threads
        # Placement decisions are steady-state comparisons, priced through
        # the (memoized) evaluation service with an explicit warm state.
        self._directory = DirectoryState.warm(self.model.topology)

    def _seconds(self, structure: Structure, media: MediaKind) -> float:
        """Time to move the structure's traffic on ``media``."""
        if structure.kind is StructureKind.SEQUENTIAL:
            spec = StreamSpec(
                op=Op.READ, threads=self.threads, access_size=4096, media=media
            )
        else:
            spec = StreamSpec(
                op=Op.READ,
                threads=self.threads,
                access_size=structure.access_size,
                media=media,
                pattern=Pattern.RANDOM,
                region_bytes=max(structure.size_bytes, structure.access_size),
            )
        gbps = self.model.service.evaluate(
            self.model.config, (spec,), self._directory
        ).total_gbps
        return structure.traffic_bytes / (gbps * GB)

    def benefit(self, structure: Structure) -> float:
        """Seconds saved per round by promoting the structure to DRAM."""
        return max(
            0.0,
            self._seconds(structure, MediaKind.PMEM)
            - self._seconds(structure, MediaKind.DRAM),
        )

    def plan(self, structures: list[Structure], dram_budget: int) -> HybridPlan:
        """Greedy benefit-density knapsack over the DRAM budget.

        Structures are promoted to DRAM in order of seconds-saved per
        byte until the budget is exhausted; everything else stays on
        PMEM (which always fits — that is PMEM's selling point).
        """
        if dram_budget < 0:
            raise ConfigurationError("DRAM budget cannot be negative")
        names = [s.name for s in structures]
        if len(set(names)) != len(names):
            raise ConfigurationError("structure names must be unique")
        plan = HybridPlan(dram_budget=dram_budget)
        scored = sorted(
            structures,
            key=lambda s: self.benefit(s) / s.size_bytes,
            reverse=True,
        )
        remaining = dram_budget
        for structure in scored:
            saving = self.benefit(structure)
            if saving > 0 and structure.size_bytes <= remaining:
                plan.placements.append(
                    Placement(structure=structure, media=MediaKind.DRAM,
                              seconds_saved=saving)
                )
                remaining -= structure.size_bytes
            else:
                plan.placements.append(
                    Placement(structure=structure, media=MediaKind.PMEM,
                              seconds_saved=saving)
                )
        return plan


def ssb_structures(runner, target_sf: float = 100.0) -> list[Structure]:
    """Derive the SSB's placeable structures from a runner's traffic.

    One structure per dimension index (random) plus the fact table
    (sequential), with traffic summed over all thirteen queries.
    """
    from repro.ssb.queries import ALL_QUERIES
    from repro.ssb.storage import HANDCRAFTED_PMEM

    ratio = target_sf / runner.measured_sf
    region_factors = runner._region_factors(target_sf)
    traffic = runner._traffic_for(HANDCRAFTED_PMEM, ALL_QUERIES)

    fact_traffic = 0.0
    fact_bytes = 0.0
    index_traffic: dict[str, float] = {}
    index_bytes: dict[str, float] = {}
    for query_traffic in traffic.values():
        scaled = query_traffic.scaled(ratio, region_factors)
        for op in scaled.operators:
            if op.name == "fact-scan":
                fact_traffic += op.seq_read_bytes
                fact_bytes = max(fact_bytes, op.seq_read_bytes)
            elif op.name.startswith("probe(") and op.region_table:
                index_traffic[op.region_table] = (
                    index_traffic.get(op.region_table, 0.0) + op.random_read_bytes
                )
                index_bytes[op.region_table] = max(
                    index_bytes.get(op.region_table, 0.0), op.random_region_bytes
                )
    structures = [
        Structure(
            name="lineorder (fact table)",
            size_bytes=int(fact_bytes),
            traffic_bytes=fact_traffic,
            kind=StructureKind.SEQUENTIAL,
        )
    ]
    for table in sorted(index_traffic):
        structures.append(
            Structure(
                name=f"{table} index",
                size_bytes=max(int(index_bytes[table]), 256),
                traffic_bytes=index_traffic[table],
                kind=StructureKind.RANDOM,
            )
        )
    return structures
