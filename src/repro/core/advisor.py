"""Placement advisor: turn a workload description into a configuration.

This is the user-facing form of the paper's contribution: an OLAP system
designer describes the workload (read/write mix, concurrency budget,
whether access sizes are negotiable, socket count) and the advisor
returns a concrete configuration — thread counts, access sizes, pinning,
data placement, dax mode — with the best practices each choice derives
from, plus the bandwidths the model predicts for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.best_practices import get_practice
from repro.core.optimizer import TuningSpace, tune
from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, DaxMode, Layout, PinningPolicy
from repro.memsim.spec import Op


class AccessProfile(enum.Enum):
    """Dominant access pattern of the workload."""

    SCAN_HEAVY = "scan_heavy"          # full-table scans (QF1-style)
    JOIN_HEAVY = "join_heavy"          # hash probes dominate
    INGEST = "ingest"                  # bulk sequential writes
    MIXED = "mixed"                    # concurrent scans + ingestion


@dataclass(frozen=True)
class WorkloadIntent:
    """What the system designer knows about the workload."""

    profile: AccessProfile
    #: Threads the application can dedicate per socket.
    threads_per_socket: int = 36
    #: Sockets whose PMEM may hold data.
    sockets: int = 2
    #: Whether the application controls thread-to-core assignment.
    full_system_control: bool = True
    #: Whether a filesystem interface is required (forces fsdax).
    needs_filesystem: bool = False
    #: Smallest access unit the application can batch writes into.
    min_write_granularity: int = 64

    def __post_init__(self) -> None:
        if self.threads_per_socket < 1:
            raise ConfigurationError("need at least one thread per socket")
        if self.sockets < 1:
            raise ConfigurationError("need at least one socket")
        if self.min_write_granularity < 1:
            raise ConfigurationError("write granularity must be positive")


@dataclass
class Recommendation:
    """Concrete configuration plus its provenance."""

    read_threads: int
    write_threads: int
    read_access_size: int
    write_access_size: int
    layout: Layout
    pinning: PinningPolicy
    dax_mode: DaxMode
    stripe_across_sockets: bool
    replicate_small_tables: bool
    serialize_read_write_phases: bool
    expected_read_gbps: float
    expected_write_gbps: float
    practices: list[int] = field(default_factory=list)
    rationale: list[str] = field(default_factory=list)

    def cite(self, practice_number: int, reason: str) -> None:
        if practice_number not in self.practices:
            self.practices.append(practice_number)
        self.rationale.append(f"(BP{practice_number}) {reason}")

    def describe(self) -> str:
        lines = [
            "Recommended PMEM configuration:",
            f"  read threads/socket : {self.read_threads}",
            f"  write threads/socket: {self.write_threads}",
            f"  read access size    : {self.read_access_size} B",
            f"  write access size   : {self.write_access_size} B",
            f"  layout              : {self.layout.value}",
            f"  pinning             : {self.pinning.value}",
            f"  dax mode            : {self.dax_mode.value}",
            f"  stripe across sockets: {self.stripe_across_sockets}",
            f"  replicate small tables: {self.replicate_small_tables}",
            f"  serialize R/W phases : {self.serialize_read_write_phases}",
            f"  expected read  : {self.expected_read_gbps:.1f} GB/s per socket",
            f"  expected write : {self.expected_write_gbps:.1f} GB/s per socket",
            "Why:",
        ]
        lines.extend(f"  {r}" for r in self.rationale)
        return "\n".join(lines)


class PlacementAdvisor:
    """Derives configurations from the bandwidth model and the practices."""

    def __init__(self, model: BandwidthModel | None = None) -> None:
        self.model = model if model is not None else BandwidthModel()

    def recommend(self, intent: WorkloadIntent) -> Recommendation:
        """Produce a configuration for ``intent``.

        The numeric knobs come from the tuner (so they are optimal under
        the model, not hard-coded); the structural choices (striping,
        replication, serialization) apply the paper's practices 1, 4, 5.
        """
        pinning = (
            PinningPolicy.CORES
            if intent.full_system_control
            else PinningPolicy.NUMA_REGION
        )
        space = TuningSpace(
            thread_counts=tuple(
                t for t in (1, 2, 4, 6, 8, 12, 16, 18, 24, 36)
                if t <= intent.threads_per_socket
            ),
            pinnings=(pinning,),
        )
        read_best = tune(Op.READ, model=self.model, space=space).best
        write_space = TuningSpace(
            access_sizes=tuple(
                s for s in (64, 256, 1024, 4096, 16384)
                if s >= intent.min_write_granularity
            ) or (intent.min_write_granularity,),
            thread_counts=space.thread_counts,
            layouts=(Layout.INDIVIDUAL,),
            pinnings=(pinning,),
        )
        write_best = tune(Op.WRITE, model=self.model, space=write_space).best

        rec = Recommendation(
            read_threads=read_best.spec.threads,
            write_threads=write_best.spec.threads,
            read_access_size=read_best.spec.access_size,
            write_access_size=write_best.spec.access_size,
            layout=Layout.INDIVIDUAL,
            pinning=pinning,
            dax_mode=DaxMode.FSDAX if intent.needs_filesystem else DaxMode.DEVDAX,
            stripe_across_sockets=intent.sockets > 1,
            replicate_small_tables=intent.sockets > 1
            and intent.profile in (AccessProfile.JOIN_HEAVY, AccessProfile.SCAN_HEAVY),
            serialize_read_write_phases=intent.profile is AccessProfile.MIXED,
            expected_read_gbps=read_best.gbps,
            expected_write_gbps=write_best.gbps,
        )

        rec.cite(1, "reads and writes use distinct, individual memory regions")
        rec.cite(
            2,
            f"reads scale to {rec.read_threads} threads; writes are capped "
            f"at {rec.write_threads} per socket",
        )
        rec.cite(
            3,
            "threads pinned to "
            + ("individual cores (full system control)"
               if pinning is PinningPolicy.CORES
               else "NUMA regions (no full system control)"),
        )
        if rec.stripe_across_sockets:
            rec.cite(
                4,
                "data striped across all sockets' PMEM; every thread touches "
                "only near memory",
            )
        if rec.replicate_small_tables:
            rec.cite(4, "small (dimension) tables replicated per socket to avoid "
                        "far random access")
        if rec.serialize_read_write_phases:
            rec.cite(5, "mixed workload: ingestion and scan phases serialized")
        rec.cite(
            6,
            f"write access size {rec.write_access_size} B"
            + (" (4 KB DIMM-interleave aligned)" if rec.write_access_size == 4096
               else " (256 B media-line aligned)" if rec.write_access_size == 256
               else ""),
        )
        if rec.dax_mode is DaxMode.DEVDAX:
            rec.cite(7, "devdax avoids page faults and filesystem overhead")
        else:
            rec.rationale.append(
                "(BP7 waived) filesystem interface required; fsdax costs "
                "5-10% bandwidth — pre-fault pages to recover it"
            )
        # Validate each cited practice actually holds in the model.
        for number in rec.practices:
            get_practice(number)
        return rec
