"""The paper's primary contribution: insights, best practices, advisor.

* :mod:`repro.core.insights` — the 12 numbered insights as falsifiable
  claims checked against the bandwidth model;
* :mod:`repro.core.best_practices` — the 7 best practices of §7;
* :mod:`repro.core.optimizer` — exhaustive configuration tuner;
* :mod:`repro.core.advisor` — workload-intent to configuration mapping.
"""

from repro.core.advisor import (
    AccessProfile,
    PlacementAdvisor,
    Recommendation,
    WorkloadIntent,
)
from repro.core.hybrid import (
    HybridPlan,
    HybridPlanner,
    Placement,
    Structure,
    StructureKind,
    ssb_structures,
)
from repro.core.best_practices import (
    BEST_PRACTICES,
    BestPractice,
    get_practice,
    practices_report,
    verify_practices,
)
from repro.core.insights import ALL_INSIGHTS, Insight, get_insight, verify_all
from repro.core.sensitivity import SensitivityReport, analyze as sensitivity_analysis
from repro.core.optimizer import (
    TuningCandidate,
    TuningResult,
    TuningSpace,
    tune,
    tuned_matches_best_practices,
)

__all__ = [
    "ALL_INSIGHTS",
    "AccessProfile",
    "BEST_PRACTICES",
    "BestPractice",
    "HybridPlan",
    "HybridPlanner",
    "Insight",
    "Placement",
    "Structure",
    "StructureKind",
    "PlacementAdvisor",
    "Recommendation",
    "SensitivityReport",
    "TuningCandidate",
    "TuningResult",
    "TuningSpace",
    "WorkloadIntent",
    "get_insight",
    "get_practice",
    "practices_report",
    "sensitivity_analysis",
    "tune",
    "ssb_structures",
    "tuned_matches_best_practices",
    "verify_all",
    "verify_practices",
]
