"""Sensitivity analysis: are the conclusions calibration-robust?

The simulator's fitted constants (``repro.memsim.calibration``) carry
measurement and digitization uncertainty. A reproduction whose
conclusions flipped under a 10% recalibration would be fragile — so this
module perturbs the key fitted parameters and re-verifies the paper's
12 insights under each perturbation. The result quantifies which
conclusions are *structural* (hold under any plausible calibration) and
which depend on the exact numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import CalibrationError, ConfigurationError
from repro.core.insights import verify_all
from repro.memsim import BandwidthModel, MachineConfig
from repro.memsim.calibration import DeviceCalibration, paper_calibration

#: The fitted parameters whose uncertainty matters most, as
#: (group, field) pairs. Structural constants (line sizes, interleave
#: granularity) are deliberately excluded — they are facts, not fits.
PERTURBED_FIELDS: tuple[tuple[str, str], ...] = (
    ("pmem", "seq_read_max"),
    ("pmem", "seq_write_max"),
    ("pmem", "read_stream_rate"),
    ("pmem", "write_stream_rate"),
    ("pmem", "wc_pressure_coeff"),
    ("pmem", "cold_far_read_max"),
    ("pmem", "warm_far_read_max"),
    ("pmem", "far_write_max"),
    ("dram", "seq_read_max"),
    ("dram", "seq_write_max"),
    ("upi", "raw_per_direction"),
    ("mixed", "read_interference_coeff"),
    ("mixed", "write_interference_coeff"),
)


def perturb(
    calibration: DeviceCalibration, group: str, field_name: str, factor: float
) -> DeviceCalibration:
    """A copy of ``calibration`` with one field scaled by ``factor``."""
    if factor <= 0:
        raise ConfigurationError("perturbation factor must be positive")
    sub = getattr(calibration, group)
    value = getattr(sub, field_name)
    perturbed_sub = dataclasses.replace(sub, **{field_name: value * factor})
    return dataclasses.replace(calibration, **{group: perturbed_sub})


@dataclass
class SensitivityReport:
    """Outcome of the perturbation sweep."""

    magnitude: float
    #: (group.field, factor) -> {insight number: holds}
    outcomes: dict[tuple[str, float], dict[int, bool]] = field(default_factory=dict)
    #: Perturbations rejected by calibration validation (physically
    #: impossible combinations — e.g. PMEM reads overtaking DRAM).
    rejected: list[tuple[str, float]] = field(default_factory=list)

    @property
    def robust_insights(self) -> set[int]:
        """Insights that hold under every admissible perturbation."""
        if not self.outcomes:
            return set()
        numbers = set(next(iter(self.outcomes.values())))
        return {
            n for n in numbers
            if all(result[n] for result in self.outcomes.values())
        }

    @property
    def fragile_insights(self) -> dict[int, list[tuple[str, float]]]:
        """Insights that fail somewhere, with the perturbations at fault."""
        fragile: dict[int, list[tuple[str, float]]] = {}
        for key, result in self.outcomes.items():
            for number, holds in result.items():
                if not holds:
                    fragile.setdefault(number, []).append(key)
        return fragile

    def describe(self) -> str:
        lines = [
            f"sensitivity at ±{self.magnitude * 100:.0f}%: "
            f"{len(self.outcomes)} admissible perturbations, "
            f"{len(self.rejected)} rejected by validation"
        ]
        lines.append(
            f"  robust insights : {sorted(self.robust_insights)}"
        )
        fragile = self.fragile_insights
        if fragile:
            for number, causes in sorted(fragile.items()):
                shown = ", ".join(f"{name} x{factor:.2f}" for name, factor in causes[:3])
                lines.append(f"  insight #{number} fails under: {shown}")
        else:
            lines.append("  no insight fails under any admissible perturbation")
        return "\n".join(lines)


def analyze(
    magnitude: float = 0.10,
    fields: tuple[tuple[str, str], ...] = PERTURBED_FIELDS,
    base: DeviceCalibration | None = None,
) -> SensitivityReport:
    """Scale each fitted field by (1 ± magnitude) and re-verify insights.

    Perturbations that violate the calibration's physical-ordering
    validation (e.g. warm-far reads overtaking near reads) are recorded
    as rejected rather than evaluated — the validator exists precisely
    to exclude impossible devices.
    """
    if not 0 < magnitude < 1:
        raise ConfigurationError("magnitude must be in (0, 1)")
    base = base if base is not None else paper_calibration()
    report = SensitivityReport(magnitude=magnitude)
    for group, field_name in fields:
        for factor in (1.0 - magnitude, 1.0 + magnitude):
            key = (f"{group}.{field_name}", factor)
            candidate = perturb(base, group, field_name, factor)
            try:
                # MachineConfig validates on construction; an admissible
                # candidate becomes a hashable config whose evaluations
                # share the process-wide cache across perturbations.
                config = MachineConfig(calibration=candidate)
            except CalibrationError:
                report.rejected.append(key)
                continue
            report.outcomes[key] = verify_all(BandwidthModel(config=config))
    return report
