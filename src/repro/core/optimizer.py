"""Configuration auto-tuner: search the access-parameter space.

Given an operation and a set of allowed knob values, the tuner sweeps the
bandwidth model and returns the best configuration — the programmatic
version of what the paper's best practices tell a human to do. Used by
the :mod:`repro.core.advisor` and by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, DirectoryState, Layout, PinningPolicy
from repro.memsim.spec import Op, Pattern, StreamSpec

DEFAULT_ACCESS_SIZES: tuple[int, ...] = (64, 256, 1024, 4096, 16384, 65536)
DEFAULT_THREAD_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16, 18, 24, 36)


@dataclass(frozen=True)
class TuningSpace:
    """The knob values the tuner may combine."""

    access_sizes: tuple[int, ...] = DEFAULT_ACCESS_SIZES
    thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS
    layouts: tuple[Layout, ...] = (Layout.GROUPED, Layout.INDIVIDUAL)
    pinnings: tuple[PinningPolicy, ...] = (
        PinningPolicy.CORES,
        PinningPolicy.NUMA_REGION,
    )

    def __post_init__(self) -> None:
        if not (self.access_sizes and self.thread_counts and self.layouts and self.pinnings):
            raise ConfigurationError("tuning space must not be empty on any axis")

    @property
    def size(self) -> int:
        return (
            len(self.access_sizes)
            * len(self.thread_counts)
            * len(self.layouts)
            * len(self.pinnings)
        )


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration."""

    spec: StreamSpec
    gbps: float


@dataclass
class TuningResult:
    """Outcome of a tuning sweep, best-first."""

    op: Op
    best: TuningCandidate
    candidates: list[TuningCandidate] = field(default_factory=list)

    @property
    def best_gbps(self) -> float:
        """Bandwidth of the winning candidate in decimal GB/s."""
        return self.best.gbps

    def top(self, n: int = 5) -> list[TuningCandidate]:
        """The ``n`` best candidates, descending."""
        return sorted(self.candidates, key=lambda c: c.gbps, reverse=True)[:n]


def tune(
    op: Op,
    *,
    model: BandwidthModel | None = None,
    space: TuningSpace | None = None,
    pattern: Pattern = Pattern.SEQUENTIAL,
    **spec_overrides: object,
) -> TuningResult:
    """Exhaustively search ``space`` for the highest-bandwidth config.

    ``spec_overrides`` are fixed :class:`StreamSpec` fields (e.g. pin the
    media, the target socket, or the region size) applied to every
    candidate.
    """
    model = model if model is not None else BandwidthModel()
    space = space if space is not None else TuningSpace()
    config, service = model.config, model.service
    # Every candidate is scored against the same steady-state directory
    # (memoized in the shared evaluation cache), so the sweep is pure and
    # its order is irrelevant.
    directory = DirectoryState.warm(config.topology)
    candidates: list[TuningCandidate] = []
    for threads in space.thread_counts:
        for size in space.access_sizes:
            for layout in space.layouts:
                for pinning in space.pinnings:
                    spec = StreamSpec(
                        op=op,
                        threads=threads,
                        access_size=size,
                        layout=layout,
                        pinning=pinning,
                        pattern=pattern,
                        **spec_overrides,  # type: ignore[arg-type]
                    )
                    gbps = service.evaluate(config, (spec,), directory).total_gbps
                    candidates.append(TuningCandidate(spec=spec, gbps=gbps))
    top_gbps = max(c.gbps for c in candidates)
    # Among configurations within half a percent of the optimum, prefer
    # the one using the fewest threads (cheapest saturating config), then
    # the largest access size (fewest ops).
    near_optimal = [c for c in candidates if c.gbps >= 0.995 * top_gbps]
    best = min(near_optimal, key=lambda c: (c.spec.threads, -c.spec.access_size))
    return TuningResult(op=op, best=best, candidates=candidates)


def tuned_matches_best_practices(result: TuningResult) -> bool:
    """Sanity predicate: the tuner's optimum obeys the paper's practices.

    Reads: the optimum must actually saturate the device (practice 2's
    "scale up the number of threads when reading") with pinned threads.
    Writes: the optimum must use few threads (4-6 per socket) and a
    media-aligned access size. Used by tests to show the practices are
    *optimal* under the model, not merely adequate.
    """
    spec = result.best.spec
    if spec.pinning is PinningPolicy.NONE:
        return False
    if spec.op is Op.READ:
        return result.best_gbps >= 0.95 * 40.0 and spec.threads >= 8
    return spec.threads <= 8 and spec.access_size in (256, 1024, 2048, 4096)
