"""Price/performance analysis of PMEM vs. DRAM deployments (paper §7).

The paper closes with an illustrative cost argument: 1.5 TB of PMEM
(12 x 128 GB DIMMs at ~$575) costs ~$6,900, while 1.5 TB of DRAM (at
~$700 per 64 GB module) would cost ~$16,800 — 2.4x more — whereas the
average SSB query is only 1.6x faster on DRAM. This module makes that
trade-off a first-class computation over arbitrary capacities and
measured slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIB


@dataclass(frozen=True)
class MemoryPrice:
    """Street price of one memory module."""

    capacity: int
    usd: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("module capacity must be positive")
        if self.usd <= 0:
            raise ConfigurationError("module price must be positive")

    @property
    def usd_per_gib(self) -> float:
        return self.usd / (self.capacity / GIB)


#: Prices quoted in the paper (§7; PMEM from Handy 2020).
PAPER_PMEM_PRICE = MemoryPrice(capacity=128 * GIB, usd=575.0)
PAPER_DRAM_PRICE = MemoryPrice(capacity=64 * GIB, usd=700.0)


@dataclass(frozen=True)
class DeploymentCost:
    """Cost of provisioning a capacity with one memory technology."""

    capacity: int
    modules: int
    usd: float

    @property
    def usd_per_gib(self) -> float:
        return self.usd / (self.capacity / GIB)


def provision(capacity: int, price: MemoryPrice) -> DeploymentCost:
    """Modules and dollars needed to provision ``capacity`` bytes."""
    if capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    modules = -(-capacity // price.capacity)  # ceil division
    return DeploymentCost(
        capacity=capacity, modules=int(modules), usd=modules * price.usd
    )


@dataclass(frozen=True)
class PricePerformance:
    """The §7 comparison for a given capacity and measured slowdown."""

    capacity: int
    pmem: DeploymentCost
    dram: DeploymentCost
    #: PMEM/DRAM average query-runtime ratio (the paper measures 1.66x).
    slowdown: float

    @property
    def price_ratio(self) -> float:
        """DRAM cost over PMEM cost (the paper computes 2.4x)."""
        return self.dram.usd / self.pmem.usd

    @property
    def pmem_wins(self) -> bool:
        """PMEM offers better price/performance when its cost advantage
        exceeds its performance disadvantage."""
        return self.price_ratio > self.slowdown

    @property
    def performance_per_dollar_advantage(self) -> float:
        """How much more work-per-dollar PMEM delivers (>1 = PMEM wins)."""
        return self.price_ratio / self.slowdown

    def describe(self) -> str:
        winner = "PMEM" if self.pmem_wins else "DRAM"
        return (
            f"{self.capacity / GIB:.0f} GiB: "
            f"PMEM ${self.pmem.usd:,.0f} ({self.pmem.modules} DIMMs) vs "
            f"DRAM ${self.dram.usd:,.0f} ({self.dram.modules} DIMMs); "
            f"price ratio {self.price_ratio:.2f}x, slowdown {self.slowdown:.2f}x "
            f"=> {winner} wins "
            f"({self.performance_per_dollar_advantage:.2f}x work/$ for PMEM)"
        )


def compare(
    capacity: int,
    slowdown: float,
    pmem_price: MemoryPrice = PAPER_PMEM_PRICE,
    dram_price: MemoryPrice = PAPER_DRAM_PRICE,
) -> PricePerformance:
    """Price/performance comparison for a capacity and a slowdown factor.

    ``slowdown`` should come from a measured SSB run
    (:func:`repro.ssb.runner.average_slowdown`), not from assumptions.
    """
    if slowdown <= 0:
        raise ConfigurationError("slowdown must be positive")
    return PricePerformance(
        capacity=capacity,
        pmem=provision(capacity, pmem_price),
        dram=provision(capacity, dram_price),
        slowdown=slowdown,
    )


def paper_comparison() -> PricePerformance:
    """The paper's own 1.5 TB / 1.66x data point."""
    return compare(capacity=12 * 128 * GIB, slowdown=1.66)


def breakeven_slowdown(
    capacity: int,
    pmem_price: MemoryPrice = PAPER_PMEM_PRICE,
    dram_price: MemoryPrice = PAPER_DRAM_PRICE,
) -> float:
    """The slowdown at which PMEM stops winning for ``capacity``.

    As long as the measured slowdown stays below this value, PMEM has
    the better price/performance.
    """
    pmem = provision(capacity, pmem_price)
    dram = provision(capacity, dram_price)
    return dram.usd / pmem.usd
