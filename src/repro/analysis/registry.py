"""Checker registry.

Two kinds of analysis register here under the same rule namespace:

* A per-file *checker* — ``(module: ast.Module, ctx: FileContext) ->
  Iterable[Finding]`` — registered via :func:`register`.
* A whole-program *pass* — ``(program: Program) -> Iterable[Finding]``
  — registered via :func:`register_program` and run once per analysis
  over the shared :class:`~repro.analysis.program.graph.Program`.

Rule modules register themselves at import time; :func:`_ensure_loaded`
imports them all so that touching the registry is enough to populate it.
``--select``/``--disable`` references resolve across both registries, so
the CLI surface does not distinguish the two layers.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import SimlintConfig
from repro.analysis.finding import Finding, Fix, Rule
from repro.errors import AnalysisError

Checker = Callable[[ast.Module, "FileContext"], Iterable[Finding]]


@dataclass
class FileContext:
    """Everything a checker may need about the file under analysis."""

    path: Path
    relpath: str  # POSIX, relative to the config root
    source: str
    config: SimlintConfig
    lines: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-based ``line`` (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str,
                fix: Fix | None = None) -> Finding:
        """Build a :class:`Finding` for ``rule`` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col + 1,
            rule=rule.code,
            name=rule.name,
            message=message,
            snippet=self.snippet(line),
            fix=fix,
        )

    def fix_for(self, node: ast.AST, replacement: str,
                adds_import: str | None = None) -> Fix | None:
        """A :class:`Fix` replacing exactly ``node``'s source span."""
        if getattr(node, "end_lineno", None) is None:
            return None
        return Fix(
            line=node.lineno,
            col=node.col_offset,
            end_line=node.end_lineno,
            end_col=node.end_col_offset,
            replacement=replacement,
            adds_import=adds_import,
        )


#: Signature of a whole-program pass. Typed loosely to keep this module
#: free of an import cycle with :mod:`repro.analysis.program.graph`.
ProgramPass = Callable[[object], Iterable[Finding]]

_REGISTRY: dict[str, tuple[Rule, Checker]] = {}
_PROGRAM_REGISTRY: dict[str, tuple[Rule, ProgramPass]] = {}


def _check_unique(rule: Rule) -> None:
    if rule.code in _REGISTRY or rule.code in _PROGRAM_REGISTRY:
        raise AnalysisError(f"duplicate rule code {rule.code}")
    existing_names = {
        existing.name
        for existing, _ in (*_REGISTRY.values(), *_PROGRAM_REGISTRY.values())
    }
    if rule.name in existing_names:
        raise AnalysisError(f"duplicate rule name {rule.name}")


def register(rule: Rule) -> Callable[[Checker], Checker]:
    """Class/function decorator adding a per-file checker to the registry."""

    def decorate(checker: Checker) -> Checker:
        _check_unique(rule)
        _REGISTRY[rule.code] = (rule, checker)
        return checker

    return decorate


def register_program(rule: Rule) -> Callable[[ProgramPass], ProgramPass]:
    """Decorator adding a whole-program pass to the registry."""

    def decorate(program_pass: ProgramPass) -> ProgramPass:
        _check_unique(rule)
        _PROGRAM_REGISTRY[rule.code] = (rule, program_pass)
        return program_pass

    return decorate


def _ensure_loaded() -> None:
    # Imported lazily so registry.py itself stays import-cycle free.
    import repro.analysis.program.passes  # noqa: F401
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule (file and program), sorted by code."""
    _ensure_loaded()
    combined = (*_REGISTRY.values(), *_PROGRAM_REGISTRY.values())
    return [rule for rule, _ in sorted(combined, key=lambda rc: rc[0].code)]


def resolve_rule(rule_ref: str) -> Rule:
    """Resolve a code-or-name reference across both registries."""
    _ensure_loaded()
    for rule, _ in (*_REGISTRY.values(), *_PROGRAM_REGISTRY.values()):
        if rule.matches(rule_ref):
            return rule
    raise AnalysisError(
        f"unknown rule {rule_ref!r}; known rules: "
        f"{', '.join(f'{r.code}/{r.name}' for r in all_rules())}"
    )


def checker_for(rule_ref: str) -> tuple[Rule, Checker]:
    """Look up a per-file checker by rule code or name."""
    _ensure_loaded()
    for rule, checker in _REGISTRY.values():
        if rule.matches(rule_ref):
            return rule, checker
    raise AnalysisError(
        f"unknown rule {rule_ref!r}; known rules: "
        f"{', '.join(f'{r.code}/{r.name}' for r in all_rules())}"
    )


def _active(registry: dict[str, tuple[Rule, object]],
            config: SimlintConfig, select: Iterable[str] | None,
            disable: Iterable[str] | None) -> list[tuple[Rule, object]]:
    _ensure_loaded()
    if select:
        codes = {resolve_rule(ref).code for ref in select}
        chosen = [registry[code] for code in sorted(codes) if code in registry]
    else:
        chosen = sorted(registry.values(), key=lambda rc: rc[0].code)
    dropped = {resolve_rule(ref).code for ref in (*config.disable, *(disable or ()))}
    return [(rule, fn) for rule, fn in chosen if rule.code not in dropped]


def active_checkers(config: SimlintConfig, select: Iterable[str] | None = None,
                    disable: Iterable[str] | None = None) -> list[tuple[Rule, Checker]]:
    """Per-file checkers to run given config plus ``--select``/``--disable``.

    ``select`` (if given) whitelists rules; ``disable`` and the config's
    ``disable`` list are then removed. Unknown references raise
    :class:`~repro.errors.AnalysisError` rather than being ignored.
    A ``select`` naming only program rules simply yields no checkers.
    """
    return _active(_REGISTRY, config, select, disable)


def active_program_passes(
    config: SimlintConfig, select: Iterable[str] | None = None,
    disable: Iterable[str] | None = None,
) -> list[tuple[Rule, ProgramPass]]:
    """Whole-program passes to run, under the same selection semantics."""
    return _active(_PROGRAM_REGISTRY, config, select, disable)
