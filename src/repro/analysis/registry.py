"""Checker registry.

A *checker* is a callable ``(module: ast.Module, ctx: FileContext) ->
Iterable[Finding]`` registered under a :class:`~repro.analysis.finding.Rule`.
Rule modules register themselves at import time via the :func:`register`
decorator; :mod:`repro.analysis.rules` imports them all so that importing
that package is enough to populate the registry.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import SimlintConfig
from repro.analysis.finding import Finding, Rule
from repro.errors import AnalysisError

Checker = Callable[[ast.Module, "FileContext"], Iterable[Finding]]


@dataclass
class FileContext:
    """Everything a checker may need about the file under analysis."""

    path: Path
    relpath: str  # POSIX, relative to the config root
    source: str
    config: SimlintConfig
    lines: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-based ``line`` (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for ``rule`` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col + 1,
            rule=rule.code,
            name=rule.name,
            message=message,
            snippet=self.snippet(line),
        )


_REGISTRY: dict[str, tuple[Rule, Checker]] = {}


def register(rule: Rule) -> Callable[[Checker], Checker]:
    """Class/function decorator adding a checker to the registry."""

    def decorate(checker: Checker) -> Checker:
        if rule.code in _REGISTRY:
            raise AnalysisError(f"duplicate rule code {rule.code}")
        if any(existing.name == rule.name for existing, _ in _REGISTRY.values()):
            raise AnalysisError(f"duplicate rule name {rule.name}")
        _REGISTRY[rule.code] = (rule, checker)
        return checker

    return decorate


def _ensure_loaded() -> None:
    # Imported lazily so registry.py itself stays import-cycle free.
    import repro.analysis.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [rule for rule, _ in sorted(_REGISTRY.values(), key=lambda rc: rc[0].code)]


def checker_for(rule_ref: str) -> tuple[Rule, Checker]:
    """Look up a checker by rule code or name."""
    _ensure_loaded()
    for rule, checker in _REGISTRY.values():
        if rule.matches(rule_ref):
            return rule, checker
    raise AnalysisError(
        f"unknown rule {rule_ref!r}; known rules: "
        f"{', '.join(f'{r.code}/{r.name}' for r in all_rules())}"
    )


def active_checkers(config: SimlintConfig, select: Iterable[str] | None = None,
                    disable: Iterable[str] | None = None) -> list[tuple[Rule, Checker]]:
    """Checkers to run given config plus CLI ``--select``/``--disable``.

    ``select`` (if given) whitelists rules; ``disable`` and the config's
    ``disable`` list are then removed. Unknown references raise
    :class:`~repro.errors.AnalysisError` rather than being ignored.
    """
    _ensure_loaded()
    chosen = [checker_for(ref) for ref in select] if select else [
        (rule, checker)
        for rule, checker in sorted(_REGISTRY.values(), key=lambda rc: rc[0].code)
    ]
    dropped = {checker_for(ref)[0].code for ref in (*config.disable, *(disable or ()))}
    return [(rule, checker) for rule, checker in chosen if rule.code not in dropped]
