"""Apply the mechanical rewrites attached to findings (``repro lint --fix``).

Design constraints, in order:

1. **Exact spans.** A fix replaces precisely the source span of the
   diagnosed node — never a whole line, never a regex over the file — so
   applying fixes cannot disturb neighbouring code.
2. **Idempotence.** Applying fixes to already-fixed output is a no-op by
   construction: the rewrite removes the pattern the rule matches, so a
   second lint produces no fixes and therefore no edits. The test suite
   pins this (fix twice == fix once).
3. **No overlapping edits.** Two findings can, in pathological input,
   claim intersecting spans. Edits are applied bottom-up and an edit
   overlapping an already-applied one is skipped (and counted), leaving
   the file valid for the next ``--fix`` round to finish the job.

Import insertion: a replacement may declare one required import
(``from repro import units``). It is added once per file, after the last
top-level import (or after the module docstring when there are none) —
and only when no line of the file already is that exact statement.
"""

from __future__ import annotations

import ast
import difflib
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.finding import Finding, Fix


@dataclass
class FileFixResult:
    """Outcome of fixing one file."""

    path: str
    applied: int = 0
    skipped_overlap: int = 0
    before: str = ""
    after: str = ""

    @property
    def changed(self) -> bool:
        return self.before != self.after

    def diff(self) -> str:
        """Unified diff of the rewrite (empty when nothing changed)."""
        if not self.changed:
            return ""
        return "".join(difflib.unified_diff(
            self.before.splitlines(keepends=True),
            self.after.splitlines(keepends=True),
            fromfile=f"a/{self.path}",
            tofile=f"b/{self.path}",
        ))


@dataclass
class FixReport:
    """Outcome of one ``--fix`` run across all files."""

    files: list[FileFixResult] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return sum(f.applied for f in self.files)

    @property
    def skipped_overlap(self) -> int:
        return sum(f.skipped_overlap for f in self.files)

    @property
    def changed_files(self) -> list[FileFixResult]:
        return [f for f in self.files if f.changed]


def _line_offsets(source: str) -> list[int]:
    """Absolute offset of the start of each (1-based) line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span(fix: Fix, offsets: list[int]) -> tuple[int, int] | None:
    """Absolute ``(start, end)`` for a fix, or ``None`` if out of range."""
    if fix.line >= len(offsets) + 1 or fix.end_line >= len(offsets) + 1:
        return None
    start = offsets[fix.line - 1] + fix.col
    end = offsets[fix.end_line - 1] + fix.end_col
    if start > end:
        return None
    return start, end


def _insert_import(source: str, statement: str) -> str:
    """Ensure ``statement`` is a top-level import of ``source``."""
    if any(line.strip() == statement for line in source.splitlines()):
        return source
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    insert_after = 0  # line number to insert *after* (0 = top of file)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_after = max(insert_after, node.end_lineno or node.lineno)
    if insert_after == 0 and tree.body:
        first = tree.body[0]
        if isinstance(first, ast.Expr) and isinstance(
            first.value, ast.Constant
        ) and isinstance(first.value.value, str):
            insert_after = first.end_lineno or first.lineno
    lines = source.splitlines(keepends=True)
    if insert_after > len(lines):
        return source + statement + "\n"
    # A docstring with no imports gets a separating blank line.
    prefix = "\n" if insert_after > 0 and not any(
        isinstance(n, (ast.Import, ast.ImportFrom)) for n in tree.body
    ) else ""
    lines.insert(insert_after, f"{prefix}{statement}\n")
    return "".join(lines)


def fix_file(source: str, relpath: str, findings: Sequence[Finding]) -> FileFixResult:
    """Apply every fix for one file to ``source`` (pure; no IO)."""
    result = FileFixResult(path=relpath, before=source, after=source)
    offsets = _line_offsets(source)
    spans: list[tuple[int, int, Fix]] = []
    for finding in findings:
        if finding.fix is None:
            continue
        span = _span(finding.fix, offsets)
        if span is not None:
            spans.append((*span, finding.fix))
    # Bottom-up so earlier spans' offsets stay valid; dedupe identical
    # spans (two rules may attach the same rewrite).
    spans.sort(key=lambda s: (s[0], s[1]))
    deduped: list[tuple[int, int, Fix]] = []
    for span in spans:
        if deduped and (span[0], span[1]) == (deduped[-1][0], deduped[-1][1]):
            continue
        deduped.append(span)

    text = source
    imports_needed: list[str] = []
    last_applied_start: int | None = None
    for start, end, fix in reversed(deduped):
        if last_applied_start is not None and end > last_applied_start:
            result.skipped_overlap += 1
            continue
        text = text[:start] + fix.replacement + text[end:]
        last_applied_start = start
        result.applied += 1
        if fix.adds_import is not None and fix.adds_import not in imports_needed:
            imports_needed.append(fix.adds_import)
    for statement in imports_needed:
        text = _insert_import(text, statement)
    result.after = text
    return result


def apply_fixes(
    findings: Sequence[Finding],
    root: Path,
    *,
    dry_run: bool = False,
) -> FixReport:
    """Group findings by file, rewrite each, and (unless ``dry_run``)
    write the results back."""
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)

    report = FixReport()
    for relpath in sorted(by_path):
        path = root / relpath
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            continue
        result = fix_file(source, relpath, by_path[relpath])
        report.files.append(result)
        if result.changed and not dry_run:
            path.write_text(result.after, encoding="utf-8")
    return report
