"""Drive the checkers over files and fold in suppressions + baseline.

Two layers run per analysis: the per-file checkers (one module at a
time) and the whole-program passes (once, over a
:class:`~repro.analysis.program.graph.Program` built from the config's
full path set so cross-module edges exist even when only a subset of
files was requested). Program findings are filtered to the requested
scope and go through the same suppression and baseline machinery as
per-file ones, so the CLI surface does not distinguish the layers.
"""

from __future__ import annotations

import ast
import subprocess
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import SimlintConfig
from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import (
    Checker,
    FileContext,
    active_checkers,
    active_program_passes,
)
from repro.analysis.suppressions import Suppressions
from repro.errors import AnalysisError

#: Pseudo-rule for files that do not parse. Not in the registry (there is
#: nothing to disable: an unparseable file can't be analyzed at all), but
#: reported through the same Finding channel so CI surfaces it.
PARSE_ERROR = Rule(
    code="SIM000",
    name="parse-error",
    summary="the file could not be parsed as Python",
)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)  # new, actionable
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any non-baselined finding remains."""
        return 1 if self.findings else 0

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form for ``--json`` output."""
        return {
            "files": self.files,
            "findings": [finding.to_json() for finding in self.findings],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": self.stale_baseline,
        }


def iter_python_files(paths: Sequence[Path], config: SimlintConfig) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, honouring excludes."""
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
        candidates = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or candidate.suffix != ".py":
                continue
            if config.is_excluded(_relpath(resolved, config.root)):
                continue
            seen.add(resolved)
            yield resolved


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def analyze_file(
    path: Path,
    config: SimlintConfig,
    checkers: Iterable[tuple[Rule, Checker]] | None = None,
) -> tuple[list[Finding], int]:
    """Run the checkers on one file.

    Returns ``(findings, suppressed_count)`` — findings sorted by position,
    already filtered through the file's ``# simlint: ignore`` comments.
    """
    if checkers is None:
        checkers = active_checkers(config)
    source = path.read_text(encoding="utf-8")
    ctx = FileContext(
        path=path, relpath=_relpath(path, config.root), source=source, config=config
    )
    try:
        module = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        node = ast.Constant(value=None, lineno=exc.lineno or 1,
                            col_offset=(exc.offset or 1) - 1)
        return [ctx.finding(PARSE_ERROR, node, f"syntax error: {exc.msg}")], 0

    raw: list[Finding] = []
    for _rule, checker in checkers:
        raw.extend(checker(module, ctx))
    raw.sort()

    suppressions = Suppressions.scan(source)
    rules = {rule.code: rule for rule, _ in checkers}
    rules[PARSE_ERROR.code] = PARSE_ERROR
    kept = [f for f in raw if not suppressions.suppresses(f, rules)]
    return kept, len(raw) - len(kept)


def changed_files(root: Path) -> set[str]:
    """Relpaths touched vs ``HEAD`` (worktree + staged + untracked).

    Backs ``repro lint --changed``. Raises
    :class:`~repro.errors.AnalysisError` outside a git checkout.
    """
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    changed: set[str] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command, cwd=root, capture_output=True, text=True, check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise AnalysisError(
                f"--changed requires a git checkout at {root}: {exc}"
            ) from exc
        changed.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def _run_program_passes(
    config: SimlintConfig,
    targets: Sequence[Path],
    select: Sequence[str] | None,
    disable: Sequence[str] | None,
    scope: set[str],
    use_cache: bool,
) -> tuple[list[Finding], int]:
    """Run the whole-program passes; returns (kept findings, suppressed).

    The program is built from the config's full path set when it exists
    (cross-module edges need the whole tree) and from the requested
    targets otherwise (bare fixture directories). Findings are then
    filtered to the files actually requested, so linting a subtree does
    not report escapes anchored elsewhere.
    """
    passes = active_program_passes(config, select=select, disable=disable)
    if not passes:
        return [], 0
    from repro.analysis.program.graph import build_program

    roots = [config.root / p for p in config.paths]
    if not all(root.exists() for root in roots):
        roots = list(targets)
    program = build_program(roots, config, use_cache=use_cache)

    raw: list[Finding] = []
    for _rule, program_pass in passes:
        raw.extend(program_pass(program))
    raw.sort()

    rules = {rule.code: rule for rule, _ in passes}
    by_relpath = {m.relpath: m for m in program.modules.values()}
    suppression_cache: dict[str, Suppressions] = {}
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        if finding.path not in scope:
            continue
        if finding.path not in suppression_cache:
            module = by_relpath.get(finding.path)
            suppression_cache[finding.path] = (
                Suppressions.scan(module.source) if module is not None
                else Suppressions.scan("")
            )
        if suppression_cache[finding.path].suppresses(finding, rules):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def run_analysis(
    paths: Sequence[Path] | None = None,
    config: SimlintConfig | None = None,
    *,
    select: Sequence[str] | None = None,
    disable: Sequence[str] | None = None,
    use_baseline: bool = True,
    use_cache: bool = True,
    changed_only: bool = False,
) -> AnalysisReport:
    """Analyze ``paths`` (default: the config's) and apply the baseline.

    ``changed_only`` restricts reporting to files with uncommitted
    changes (per git); the whole-program passes still see the full tree,
    so a changed file breaking a cross-module contract is caught even
    when the finding's witness path runs through unchanged code.
    """
    if config is None:
        from repro.analysis.config import load_config

        config = load_config()
    targets = list(paths) if paths else [config.root / p for p in config.paths]
    checkers = active_checkers(config, select=select, disable=disable)

    changed: set[str] | None = None
    if changed_only:
        changed = changed_files(config.root)

    report = AnalysisReport()
    all_findings: list[Finding] = []
    scope: set[str] = set()
    for path in iter_python_files(targets, config):
        relpath = _relpath(path, config.root)
        if changed is not None and relpath not in changed:
            continue
        scope.add(relpath)
        findings, suppressed = analyze_file(path, config, checkers)
        all_findings.extend(findings)
        report.suppressed += suppressed
        report.files += 1

    program_findings, program_suppressed = _run_program_passes(
        config, targets, select, disable, scope, use_cache,
    )
    all_findings.extend(program_findings)
    report.suppressed += program_suppressed
    all_findings.sort()

    baseline_path = config.baseline_path() if use_baseline else None
    if baseline_path is not None and baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
        report.findings, report.baselined = baseline.split(all_findings)
        if not changed_only:
            # A changed-scoped run never scans most files, so absence of
            # a baselined finding proves nothing about staleness.
            report.stale_baseline = baseline.stale_entries(all_findings)
    else:
        report.findings = all_findings
    return report
