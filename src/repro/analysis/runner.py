"""Drive the checkers over files and fold in suppressions + baseline."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import SimlintConfig
from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import Checker, FileContext, active_checkers
from repro.analysis.suppressions import Suppressions
from repro.errors import AnalysisError

#: Pseudo-rule for files that do not parse. Not in the registry (there is
#: nothing to disable: an unparseable file can't be analyzed at all), but
#: reported through the same Finding channel so CI surfaces it.
PARSE_ERROR = Rule(
    code="SIM000",
    name="parse-error",
    summary="the file could not be parsed as Python",
)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)  # new, actionable
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any non-baselined finding remains."""
        return 1 if self.findings else 0

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form for ``--json`` output."""
        return {
            "files": self.files,
            "findings": [finding.to_json() for finding in self.findings],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": self.stale_baseline,
        }


def iter_python_files(paths: Sequence[Path], config: SimlintConfig) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, honouring excludes."""
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise AnalysisError(f"no such file or directory: {path}")
        candidates = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or candidate.suffix != ".py":
                continue
            if config.is_excluded(_relpath(resolved, config.root)):
                continue
            seen.add(resolved)
            yield resolved


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def analyze_file(
    path: Path,
    config: SimlintConfig,
    checkers: Iterable[tuple[Rule, Checker]] | None = None,
) -> tuple[list[Finding], int]:
    """Run the checkers on one file.

    Returns ``(findings, suppressed_count)`` — findings sorted by position,
    already filtered through the file's ``# simlint: ignore`` comments.
    """
    if checkers is None:
        checkers = active_checkers(config)
    source = path.read_text(encoding="utf-8")
    ctx = FileContext(
        path=path, relpath=_relpath(path, config.root), source=source, config=config
    )
    try:
        module = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        node = ast.Constant(value=None, lineno=exc.lineno or 1,
                            col_offset=(exc.offset or 1) - 1)
        return [ctx.finding(PARSE_ERROR, node, f"syntax error: {exc.msg}")], 0

    raw: list[Finding] = []
    for _rule, checker in checkers:
        raw.extend(checker(module, ctx))
    raw.sort()

    suppressions = Suppressions.scan(source)
    rules = {rule.code: rule for rule, _ in checkers}
    rules[PARSE_ERROR.code] = PARSE_ERROR
    kept = [f for f in raw if not suppressions.suppresses(f, rules)]
    return kept, len(raw) - len(kept)


def run_analysis(
    paths: Sequence[Path] | None = None,
    config: SimlintConfig | None = None,
    *,
    select: Sequence[str] | None = None,
    disable: Sequence[str] | None = None,
    use_baseline: bool = True,
) -> AnalysisReport:
    """Analyze ``paths`` (default: the config's) and apply the baseline."""
    if config is None:
        from repro.analysis.config import load_config

        config = load_config()
    targets = list(paths) if paths else [config.root / p for p in config.paths]
    checkers = active_checkers(config, select=select, disable=disable)

    report = AnalysisReport()
    all_findings: list[Finding] = []
    for path in iter_python_files(targets, config):
        findings, suppressed = analyze_file(path, config, checkers)
        all_findings.extend(findings)
        report.suppressed += suppressed
        report.files += 1

    baseline_path = config.baseline_path() if use_baseline else None
    if baseline_path is not None and baseline_path.is_file():
        baseline = Baseline.load(baseline_path)
        report.findings, report.baselined = baseline.split(all_findings)
        report.stale_baseline = baseline.stale_entries(all_findings)
    else:
        report.findings = all_findings
    return report
