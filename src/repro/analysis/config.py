"""Configuration for the simlint pass.

Configuration lives in the ``[tool.simlint]`` block of ``pyproject.toml``,
discovered by walking up from the analysis root. Every knob has a default
so the analyzer also works on a bare directory of Python files (the test
fixtures rely on this).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.errors import AnalysisError

#: Files allowed to define magic unit literals: the unit vocabulary itself,
#: the structural hardware constants, and the paper's digitised figures.
DEFAULT_UNIT_LITERAL_FILES: tuple[str, ...] = (
    "repro/units.py",
    "repro/memsim/constants.py",
    "repro/experiments/paperdata.py",
)

#: Exceptions library code may raise without going through the
#: :mod:`repro.errors` taxonomy. The taxonomy itself is always allowed;
#: these builtins cover idiomatic protocol signalling (``__getattr__``
#: raising ``AttributeError``, mappings raising ``KeyError``, ...).
DEFAULT_ALLOWED_RAISES: tuple[str, ...] = (
    "AssertionError",
    "AttributeError",
    "IndexError",
    "KeyError",
    "NotImplementedError",
    "StopIteration",
    "ZeroDivisionError",
)

#: Purity roots for SIM201: fnmatch patterns over fully-qualified function
#: names. Everything reachable from a root through the call graph must be
#: free of shared-state writes — this is the contract the memo cache, the
#: parallel backend, and the bit-identity tests all assume.
DEFAULT_PURITY_ROOTS: tuple[str, ...] = (
    "repro.memsim.evaluation.evaluate",
    "repro.memsim.kernels.*",
    "repro.memsim.context.EvalContext.*",
    "repro.memsim.context.eval_context",
    "repro.memsim.context._build_context",
)

#: Types that cross the :mod:`repro.sweep.procpool` process boundary
#: (pickled into workers or back): SIM202 checks them — and every type
#: reachable through their field annotations — for pickle-hostile state.
DEFAULT_PICKLE_BOUNDARY: tuple[str, ...] = (
    "repro.memsim.config.MachineConfig",
    "repro.memsim.config.DirectoryState",
    "repro.memsim.evaluation.BandwidthResult",
    "repro.memsim.evaluation.StreamResult",
    "repro.memsim.kernels.columns.ResultColumns",
    "repro.workloads.grids.SweepPoint",
    "repro.errors.SweepError",
    "repro.errors.GridPointError",
)

#: Module defining the counter catalogue (``CATALOG`` of specs) that
#: SIM203 round-trips emitted names against.
DEFAULT_COUNTER_CATALOG = "repro.obs.catalog"


@dataclass(frozen=True)
class SimlintConfig:
    """Resolved simlint configuration.

    ``root`` anchors relative paths (finding paths are reported relative
    to it); it is the directory containing ``pyproject.toml`` when the
    config was loaded from one, else the analysis working directory.
    """

    root: Path = field(default_factory=Path.cwd)
    #: Default analysis targets when the CLI is given none.
    paths: tuple[str, ...] = ("src",)
    #: Path fragments to skip entirely (POSIX, substring match).
    exclude: tuple[str, ...] = ()
    #: Files (POSIX suffix match) exempt from the unit-literal rule.
    unit_literal_files: tuple[str, ...] = DEFAULT_UNIT_LITERAL_FILES
    #: Path fragments the determinism rules are confined to; empty means
    #: every analyzed file (the deterministic core is ``memsim`` + ``ssb``,
    #: but fixtures and small projects want the rules everywhere).
    determinism_paths: tuple[str, ...] = ()
    #: Path fragments the vectorization rule is confined to; empty means
    #: every analyzed file (the kernel modules here, where a scalar
    #: element-wise loop defeats the point of the batched fast paths).
    vector_paths: tuple[str, ...] = ()
    #: Path fragments the async-blocking rule (SIM109) is confined to;
    #: empty means every analyzed file (the serving layer here, where one
    #: blocking call stalls every coalesced request on the loop).
    serve_paths: tuple[str, ...] = ()
    #: Path fragments the unbounded-read rule (SIM110) is confined to;
    #: empty means every analyzed file (the wire-protocol modules here,
    #: where a reader without a frame-size bound lets one peer grow an
    #: unbounded buffer).
    transport_paths: tuple[str, ...] = ()
    #: Exception names allowed outside the ``repro.errors`` taxonomy.
    allowed_raises: tuple[str, ...] = DEFAULT_ALLOWED_RAISES
    #: Baseline file of grandfathered findings, relative to ``root``.
    baseline: str | None = None
    #: Rules (codes or names) disabled outright.
    disable: tuple[str, ...] = ()
    #: SIM201 roots (fnmatch patterns over full function names).
    purity_roots: tuple[str, ...] = DEFAULT_PURITY_ROOTS
    #: SIM202 seed types (full class names) crossing the pickle boundary.
    pickle_boundary: tuple[str, ...] = DEFAULT_PICKLE_BOUNDARY
    #: SIM203 catalogue module (dotted); empty string disables the pass.
    counter_catalog: str = DEFAULT_COUNTER_CATALOG

    def baseline_path(self) -> Path | None:
        """Absolute path of the configured baseline file, if any."""
        if self.baseline is None:
            return None
        return self.root / self.baseline

    def is_unit_literal_file(self, relpath: str) -> bool:
        """Whether ``relpath`` may define magic unit literals."""
        return any(relpath.endswith(allowed) for allowed in self.unit_literal_files)

    def in_determinism_scope(self, relpath: str) -> bool:
        """Whether the determinism rules apply to ``relpath``."""
        if not self.determinism_paths:
            return True
        return any(fragment in relpath for fragment in self.determinism_paths)

    def in_vector_scope(self, relpath: str) -> bool:
        """Whether the vectorization rule applies to ``relpath``."""
        if not self.vector_paths:
            return True
        return any(fragment in relpath for fragment in self.vector_paths)

    def in_serve_scope(self, relpath: str) -> bool:
        """Whether the async-blocking rule applies to ``relpath``."""
        if not self.serve_paths:
            return True
        return any(fragment in relpath for fragment in self.serve_paths)

    def in_transport_scope(self, relpath: str) -> bool:
        """Whether the unbounded-read rule applies to ``relpath``."""
        if not self.transport_paths:
            return True
        return any(fragment in relpath for fragment in self.transport_paths)

    def is_excluded(self, relpath: str) -> bool:
        """Whether ``relpath`` is excluded from analysis entirely."""
        return any(fragment in relpath for fragment in self.exclude)


_LIST_KEYS = {
    "paths",
    "exclude",
    "unit_literal_files",
    "determinism_paths",
    "vector_paths",
    "serve_paths",
    "transport_paths",
    "allowed_raises",
    "disable",
    "purity_roots",
    "pickle_boundary",
}

_STR_KEYS = {"baseline", "counter_catalog"}


def _parse_block(block: dict[str, object], root: Path) -> SimlintConfig:
    known = {f.name for f in fields(SimlintConfig)} - {"root"}
    updates: dict[str, object] = {}
    for raw_key, value in block.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            raise AnalysisError(
                f"unknown [tool.simlint] key {raw_key!r}; known keys: "
                f"{', '.join(sorted(known))}"
            )
        if key in _LIST_KEYS:
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise AnalysisError(
                    f"[tool.simlint] {raw_key!r} must be a list of strings"
                )
            updates[key] = tuple(value)
        elif key in _STR_KEYS:
            if not isinstance(value, str):
                raise AnalysisError(f"[tool.simlint] {raw_key!r} must be a string")
            updates[key] = value
    return replace(SimlintConfig(root=root), **updates)


def find_pyproject(start: Path) -> Path | None:
    """Return the nearest ``pyproject.toml`` at or above ``start``."""
    start = start.resolve()
    for directory in (start, *start.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Path | None = None, explicit: Path | None = None) -> SimlintConfig:
    """Load simlint configuration.

    ``explicit`` names a specific TOML file (the CLI's ``--config``);
    otherwise the nearest ``pyproject.toml`` above ``start`` (default: the
    current directory) is used. A missing ``[tool.simlint]`` block — or no
    pyproject at all — yields the defaults.
    """
    pyproject = explicit if explicit is not None else find_pyproject(start or Path.cwd())
    if pyproject is None:
        return SimlintConfig(root=(start or Path.cwd()).resolve())
    if not pyproject.is_file():
        raise AnalysisError(f"config file not found: {pyproject}")
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise AnalysisError(f"could not parse {pyproject}: {exc}") from exc
    block = data.get("tool", {}).get("simlint", {})
    if not isinstance(block, dict):
        raise AnalysisError("[tool.simlint] must be a table")
    return _parse_block(block, pyproject.parent.resolve())
