"""Whole-program passes: importing this package registers SIM201-SIM204."""

from __future__ import annotations

from repro.analysis.program.passes import (  # noqa: F401
    counters,
    pickle_safety,
    purity,
    units_flow,
)
