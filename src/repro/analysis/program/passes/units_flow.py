"""SIM204: mixed-unit arithmetic across assignments and call boundaries.

The per-file unit rules police *literals* (SIM001) and derivable
constants (SIM105); what they cannot see is a value changing scale as it
flows — ``elapsed_ns + transfer_seconds`` is silently off by 1e9, and
``region_gib + size_bytes`` by 2**30. The summaries already tag
identifiers by the repo's suffix convention, propagate tags through
assignments, scale-constant multiplies (``x * units.GIB`` is bytes) and
divisions, and record every additive expression or comparison whose
operand tags disagree.

This pass is the cross-function half: a recorded operand may be a
*deferred* reference (``@call:media_seconds``) whose tag is the callee's
return tag. The callee is resolved through the call graph and its
return tag substituted; only a mix whose two sides resolve to distinct
*concrete* tags becomes a finding — an unresolvable side stays silent,
because a guessed unit is worse than no verdict.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import register_program

RULE = Rule(
    code="SIM204",
    name="unit-flow-mix",
    summary="arithmetic combines values carrying different unit tags",
)

#: Tag pairs that are legitimately combined: dimensionless-ish scales
#: the convention does not separate strictly enough to enforce.
_COMPATIBLE: frozenset[frozenset[str]] = frozenset()


def _resolve_side(program, ref, tag: str) -> str | None:
    """Concrete tag for one operand; ``None`` when unresolvable."""
    if not tag.startswith("@call:"):
        return tag
    callee = tag[len("@call:"):]
    resolved = program.resolve_call(ref, callee)
    if resolved is None or resolved not in program.functions:
        return None
    return program.functions[resolved].summary.return_tag


@register_program(RULE)
def check_unit_flow(program) -> Iterable[Finding]:
    for full in sorted(program.functions):
        ref = program.functions[full]
        for mix in ref.summary.unit_mixes:
            left = _resolve_side(program, ref, mix.left)
            right = _resolve_side(program, ref, mix.right)
            if left is None or right is None or left == right:
                continue
            if frozenset((left, right)) in _COMPATIBLE:
                continue
            yield program.finding(
                RULE, ref.module, mix.line, mix.col,
                f"'{mix.text}' combines '{left}' with '{right}' in "
                f"'{full}' — same dimension, different scale is a silent "
                f"corruption bug",
            )
