"""SIM203: bidirectional drift between emitted counters and the catalogue.

The counter catalogue (:mod:`repro.obs.catalog`) is the contract the
observability layer offers its consumers: every name a recorder can see
is documented with a unit and a meaning. That contract rots in two
directions — an emit site starts using a name the catalogue never heard
of (dashboards silently miss it), or a catalogue entry outlives its last
emit site (documentation promises a counter that never arrives).

This pass closes the loop statically. Emitted names come from the
summaries' :class:`~repro.analysis.program.summary.EmitSite` records,
including f-string names resolved to ``*``-patterns (``f"memsim.dimm.
s{s}.d{d}.issued_bytes"`` resolves to ``memsim.dimm.*.*.issued_bytes``,
which still carries its full segment shape). Catalogue patterns are read
from the catalogue module's own AST — the first string argument of each
spec constructor inside the ``CATALOG`` assignment — so the pass works
on fixture projects with their own miniature catalogues too.

Sites whose name flows in through a parameter are skipped rather than
resolved: every such helper in the tree (``CountersRecorder.observe``
forwarding to ``incr``, ``merge_snapshot`` replaying a snapshot) is
re-emitting a name that some literal/f-string site already produced, so
chasing callers would only duplicate verdicts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import register_program

RULE = Rule(
    code="SIM203",
    name="counter-drift",
    summary="emitted counter names and the catalogue disagree",
)


def _catalog_patterns(module) -> list[tuple[str, int, int]]:
    """(pattern, line, col) for each spec in the module's ``CATALOG``."""
    try:
        tree = ast.parse(module.source)
    except SyntaxError:
        return []
    patterns: list[tuple[str, int, int]] = []
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if value is None or not any(
            isinstance(t, ast.Name) and t.id == "CATALOG" for t in targets
        ):
            continue
        for node in ast.walk(value):
            if isinstance(node, ast.Call) and node.args and isinstance(
                node.args[0], ast.Constant
            ) and isinstance(node.args[0].value, str):
                patterns.append(
                    (node.args[0].value, node.lineno, node.col_offset)
                )
    return patterns


def _compatible(pattern: str, name: str) -> bool:
    """Segment-aware match where ``*`` wildcards either side."""
    spec_segments = pattern.split(".")
    name_segments = name.split(".")
    if len(spec_segments) != len(name_segments):
        return False
    return all(
        s == n or s == "*" or n == "*"
        for s, n in zip(spec_segments, name_segments)
    )


@register_program(RULE)
def check_counter_drift(program) -> Iterable[Finding]:
    catalog_module = program.modules.get(program.config.counter_catalog)
    if catalog_module is None:
        return
    patterns = _catalog_patterns(catalog_module)
    if not patterns:
        return

    emitted: list[tuple[str, object, int, int]] = []
    for full in sorted(program.functions):
        ref = program.functions[full]
        if ref.module.name == catalog_module.name:
            continue
        for emit in ref.summary.emits:
            if emit.name is not None:
                emitted.append((emit.name, ref.module, emit.line, emit.col))

    live: set[str] = set()
    for name, module, line, col in emitted:
        matches = [p for p, _, _ in patterns if _compatible(p, name)]
        if matches:
            live.update(matches)
        else:
            yield program.finding(
                RULE, module, line, col,
                f"emitted counter '{name}' matches no catalogue entry in "
                f"'{catalog_module.name}'",
            )
    for pattern, line, col in patterns:
        if pattern not in live:
            yield program.finding(
                RULE, catalog_module, line, col,
                f"catalogue entry '{pattern}' matches no emit site "
                f"anywhere in the program (dead entry)",
            )
