"""SIM201: mutation of shared state reachable from a purity root.

The repo's correctness story leans on :func:`repro.memsim.evaluation.
evaluate` being a pure function of ``(config, directory, spec)``: the
memo cache replays results by digest, the process pool assumes workers
are interchangeable, and the bit-identity tests compare backends point
by point. Those tests *sample* purity; this pass proves the static half
of it: no function reachable from a purity root writes module-level or
nonlocal state, prints, or touches the filesystem.

What counts as an escape is deliberately narrow — the facts recorded by
:class:`~repro.analysis.program.summary.FunctionSummary.effects`:
``global``/``nonlocal`` rebinding, writes *into* module-level bindings
(attribute/subscript stores, mutator-method calls, ``setattr``), writes
to stdout, and filesystem writes. Mutating ``self`` or a parameter is
*not* flagged: ``_Evaluator`` mutates itself freely while ``evaluate``
stays pure from the outside, and flagging it would teach people to
ignore the rule.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import register_program

RULE = Rule(
    code="SIM201",
    name="purity-escape",
    summary="function reachable from a purity root mutates shared state",
)

#: Human phrasing per effect kind, leading the finding message.
_KIND_LABEL = {
    "global-write": "rebinds global state",
    "module-mutation": "mutates module-level state",
    "io-write": "writes to the filesystem",
    "stdout": "writes to stdout",
}


def _witness(path: tuple[str, ...]) -> str:
    """Render a BFS call chain compactly (roots can be deep)."""
    if len(path) <= 4:
        return " -> ".join(path)
    return " -> ".join((*path[:2], "...", *path[-2:]))


@register_program(RULE)
def check_purity(program) -> Iterable[Finding]:
    roots = program.config.purity_roots
    if not roots:
        return
    reachable = program.reachable_from(tuple(roots))
    for full in sorted(reachable):
        ref = program.functions[full]
        path = reachable[full]
        for effect in ref.summary.effects:
            label = _KIND_LABEL.get(effect.kind, effect.kind)
            yield program.finding(
                RULE, ref.module, effect.line, effect.col,
                f"'{full}' {label} ({effect.detail}) but is reachable "
                f"from a purity root: {_witness(path)}",
            )
