"""SIM202: pickle-hostile state in types that cross the procpool boundary.

The process-parallel sweep backend ships configs and grid points *into*
workers and results and counter snapshots *out* — every one of those
objects is pickled. A lambda default, a ``threading.Lock`` field, an
open file handle, or a field referencing a module-level mutable all
either fail to pickle outright (a crash on first parallel sweep) or,
worse, pickle a *copy* so each worker silently diverges from the parent.
Those are the distributed heisenbugs ISSUE 6 exists to prevent.

The pass seeds from the configured boundary types (``pickle_boundary``)
and closes over field annotations: if ``MachineConfig`` carries a
``SystemTopology``, the topology's fields are held to the same contract.
Findings anchor at the offending field so the fix is local.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.finding import Finding, Rule
from repro.analysis.program.summary import unpicklable_annotation
from repro.analysis.registry import register_program

RULE = Rule(
    code="SIM202",
    name="pickle-safety",
    summary="procpool-crossing type holds pickle-hostile state",
)

_KIND_LABEL = {
    "lambda": "holds a lambda (unpicklable)",
    "nested-function": "holds a nested function (unpicklable)",
    "lock": "holds a threading lock (unpicklable)",
    "open-handle": "holds an open file handle (unpicklable)",
    "generator": "holds a generator (unpicklable)",
    "mutable-module-ref": (
        "references module-level mutable state (pickles as a copy; "
        "workers silently diverge)"
    ),
}

#: Annotation tokens that never name a program class worth chasing.
_SKIP_TOKENS = frozenset({
    "str", "int", "float", "bool", "bytes", "object", "None",
    "tuple", "list", "dict", "set", "frozenset", "Optional", "Union",
})


def _annotation_tokens(annotation: str | None) -> list[str]:
    if annotation is None:
        return []
    tokens, current = [], []
    for ch in annotation:
        if ch.isalnum() or ch in "_.":
            current.append(ch)
        else:
            if current:
                tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return [t for t in tokens if t not in _SKIP_TOKENS]


def _resolve_class(program, module, token: str) -> str | None:
    """Resolve an annotation token to a program class, if it names one."""
    head, _, rest = token.partition(".")
    if head in module.summary.imports:
        base = module.summary.imports[head]
        target = f"{base}.{rest}" if rest else base
        resolved = program.resolve_absolute(target)
    else:
        candidate = f"{module.name}.{token}"
        resolved = candidate if candidate in program.classes else None
    if resolved is not None and resolved in program.classes:
        return resolved
    return None


def _closure(program, seeds: tuple[str, ...]) -> dict[str, str]:
    """Boundary classes mapped to the seed that pulls them across."""
    via: dict[str, str] = {}
    stack: list[tuple[str, str]] = []
    for pattern in seeds:
        for full in sorted(program.classes):
            if full == pattern:
                via[full] = full
                stack.append((full, full))
    while stack:
        full, seed = stack.pop()
        cls = program.classes[full]
        for site in cls.summary.fields:
            for token in _annotation_tokens(site.annotation):
                nested = _resolve_class(program, cls.module, token)
                if nested is not None and nested not in via:
                    via[nested] = seed
                    stack.append((nested, seed))
    return via


@register_program(RULE)
def check_pickle_safety(program) -> Iterable[Finding]:
    seeds = tuple(program.config.pickle_boundary)
    if not seeds:
        return
    via = _closure(program, seeds)
    for full in sorted(via):
        cls = program.classes[full]
        seed = via[full]
        crossing = (
            "crosses the procpool boundary"
            if seed == full
            else f"crosses the procpool boundary via '{seed}'"
        )
        for site in (*cls.summary.fields, *cls.summary.init_attrs):
            reasons: list[str] = []
            if site.kind is not None:
                reasons.append(_KIND_LABEL.get(site.kind, site.kind))
            hostile = unpicklable_annotation(site.annotation)
            if hostile is not None:
                reasons.append(f"is annotated with unpicklable '{hostile}'")
            for reason in reasons:
                yield program.finding(
                    RULE, cls.module, site.line, site.col,
                    f"field '{site.name}' of '{full}' ({crossing}) {reason}",
                )
