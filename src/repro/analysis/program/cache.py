"""Content-hash keyed store for module summaries.

Whole-program analysis wants every module's summary on every run, even
when only one file changed (``repro lint --changed`` still needs the
full call graph). Re-parsing ~200 unchanged files per pre-commit run is
the kind of constant tax that gets a linter turned off, so summaries are
cached under ``.simlint-cache/`` keyed by the SHA-256 of the file's
*content* — not its mtime, so branch switches and checkouts never serve
a stale summary, and a byte-identical file is a guaranteed hit.

Entries are one JSON file per content hash, written atomically
(tmp + rename) so concurrent lint runs — the test suite runs several —
can share a cache directory without torn reads. A cache is an
optimisation, never a correctness input: any unreadable, unparsable or
version-mismatched entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis.program.summary import ModuleSummary

#: Directory name, relative to the config root.
CACHE_DIR_NAME = ".simlint-cache"

#: Subdirectory for summary entries (leaves room for future artifacts).
_SUMMARIES = "summaries"


def content_key(source: str, relpath: str) -> str:
    """Cache key for one file: content hash salted with its relpath.

    The relpath participates because the module *name* (and therefore
    import resolution) derives from the path: the same bytes at a
    different location are a different module.
    """
    digest = hashlib.sha256()
    digest.update(relpath.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


class SummaryCache:
    """On-disk summary store. All failures degrade to cache misses."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._dir = root / _SUMMARIES
        self.hits = 0
        self.misses = 0

    def _entry_path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def get(self, source: str, relpath: str) -> ModuleSummary | None:
        """The cached summary for this exact content, or ``None``."""
        path = self._entry_path(content_key(source, relpath))
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        summary = ModuleSummary.from_json(data) if isinstance(data, dict) else None
        if summary is None:
            self.misses += 1
        else:
            self.hits += 1
        return summary

    def put(self, source: str, relpath: str, summary: ModuleSummary) -> None:
        """Store ``summary`` atomically; IO errors are swallowed."""
        path = self._entry_path(content_key(source, relpath))
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(summary.to_json(), separators=(",", ":")),
                encoding="utf-8",
            )
            tmp.replace(path)
        except OSError:
            # A read-only checkout or a full disk must not fail the lint.
            return
