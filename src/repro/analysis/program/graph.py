"""The :class:`Program`: module table, name resolution, call graph.

Built once per analysis run from every file in scope, then shared by
all whole-program passes. Construction is the only part of the program
layer that touches the filesystem; everything after operates on
:class:`~repro.analysis.program.summary.ModuleSummary` facts.

Name resolution is intentionally *syntactic*: a dotted callee is
resolved through the import table and re-export chains to a function
the program defines, or it is not resolved at all. No type inference,
no duck typing — an unresolved call contributes no call-graph edge,
which makes every pass conservative in the direction of silence rather
than false alarms (DESIGN.md discusses the trade).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.analysis.config import SimlintConfig
from repro.analysis.finding import Finding, Rule
from repro.analysis.program.cache import CACHE_DIR_NAME, SummaryCache
from repro.analysis.program.summary import (
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

#: Maximum re-export hops (``from repro.obs import merge_snapshot`` in an
#: ``__init__`` that itself imports from ``recorder``) followed during
#: resolution before giving up.
_MAX_REEXPORT_HOPS = 5


@dataclass
class ModuleInfo:
    """One analyzed module: identity, source, and its summary."""

    name: str
    path: Path
    relpath: str
    source: str
    summary: ModuleSummary
    lines: list[str] = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()

    def snippet(self, line: int) -> str:
        """Stripped source text of 1-based ``line`` (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass(frozen=True)
class FunctionRef:
    """A function in the program: ``module.qual`` plus its facts."""

    full: str  # "repro.memsim.evaluation.evaluate" / "...config.MachineConfig.scaled"
    module: ModuleInfo
    summary: FunctionSummary


@dataclass(frozen=True)
class ClassRef:
    """A class in the program."""

    full: str
    module: ModuleInfo
    summary: ClassSummary


class Program:
    """The whole-program view the interprocedural passes share."""

    def __init__(self, modules: list[ModuleInfo], config: SimlintConfig) -> None:
        self.config = config
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: dict[str, FunctionRef] = {}
        self.classes: dict[str, ClassRef] = {}
        for info in modules:
            for func in info.summary.functions:
                full = f"{info.name}.{func.qual}"
                self.functions[full] = FunctionRef(full, info, func)
            for cls in info.summary.classes:
                full = f"{info.name}.{cls.name}"
                self.classes[full] = ClassRef(full, info, cls)
        self._edges: dict[str, tuple[str, ...]] | None = None
        self._callers: dict[str, list[tuple[FunctionRef, CallSite]]] | None = None
        # Filled in by build_program; zero for directly-constructed programs.
        self.cache_hits = 0
        self.cache_misses = 0

    # -- construction ------------------------------------------------------

    def finding(self, rule: Rule, module: ModuleInfo, line: int, col: int,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored in ``module``."""
        return Finding(
            path=module.relpath,
            line=line,
            col=col + 1,
            rule=rule.code,
            name=rule.name,
            message=message,
            snippet=module.snippet(line),
        )

    # -- name resolution ---------------------------------------------------

    def resolve_absolute(self, target: str) -> str | None:
        """Resolve an absolute dotted name to a program function/class.

        Follows re-export chains: if the name lands on a module whose
        import table binds the next component, resolution continues at
        the import's target.
        """
        for _ in range(_MAX_REEXPORT_HOPS):
            if target in self.functions or target in self.classes:
                return target
            module = self._longest_module_prefix(target)
            if module is None:
                return None
            remainder = target[len(module.name):].lstrip(".")
            if not remainder:
                return None  # a bare module reference
            qualified = f"{module.name}.{remainder}"
            if qualified in self.functions or qualified in self.classes:
                return qualified
            head = remainder.split(".")[0]
            rest = remainder[len(head):].lstrip(".")
            imported = module.summary.imports.get(head)
            if imported is None:
                return None
            target = f"{imported}.{rest}" if rest else imported
        return None

    def _longest_module_prefix(self, dotted: str) -> ModuleInfo | None:
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            name = ".".join(parts[:end])
            if name in self.modules:
                return self.modules[name]
        return None

    def resolve_call(self, caller: FunctionRef, callee: str) -> str | None:
        """Resolve a call as written in ``caller`` to a program symbol."""
        module = caller.module
        head, _, rest = callee.partition(".")
        if head in ("self", "cls"):
            if "." not in caller.summary.qual or not rest or "." in rest:
                return None
            cls_name = caller.summary.qual.rsplit(".", 1)[0]
            candidate = f"{module.name}.{cls_name}.{rest}"
            return candidate if candidate in self.functions else None
        if head in module.summary.imports:
            base = module.summary.imports[head]
            target = f"{base}.{rest}" if rest else base
            return self.resolve_absolute(target)
        # A module-local function, class, or method of a local class.
        candidate = f"{module.name}.{callee}"
        if candidate in self.functions or candidate in self.classes:
            return candidate
        return None

    def construction_targets(self, full: str) -> tuple[str, ...]:
        """For a class, the methods that run at construction time."""
        if full not in self.classes:
            return ()
        targets = []
        for method in ("__init__", "__post_init__", "__new__"):
            candidate = f"{full}.{method}"
            if candidate in self.functions:
                targets.append(candidate)
        return tuple(targets)

    # -- the call graph ----------------------------------------------------

    def callees(self, full: str) -> tuple[str, ...]:
        """Resolved program functions ``full`` calls (constructors expanded)."""
        if self._edges is None:
            self._build_graph()
        return self._edges.get(full, ())

    def callers_of(self, full: str) -> list[tuple[FunctionRef, CallSite]]:
        """Every resolved call site targeting ``full``."""
        if self._callers is None:
            self._build_graph()
        return self._callers.get(full, [])

    def _build_graph(self) -> None:
        edges: dict[str, tuple[str, ...]] = {}
        callers: dict[str, list[tuple[FunctionRef, CallSite]]] = {}
        for ref in self.functions.values():
            out: list[str] = []
            for call in ref.summary.calls:
                resolved = self.resolve_call(ref, call.callee)
                if resolved is None:
                    continue
                if resolved in self.classes:
                    expanded = self.construction_targets(resolved)
                else:
                    expanded = (resolved,)
                for target in expanded:
                    out.append(target)
                    callers.setdefault(target, []).append((ref, call))
            edges[ref.full] = tuple(out)
        self._edges = edges
        self._callers = callers

    def reachable_from(self, root_patterns: tuple[str, ...]
                       ) -> dict[str, tuple[str, ...]]:
        """Functions reachable from any root, mapped to a witness path.

        ``root_patterns`` are :func:`fnmatch.fnmatch` patterns over full
        function names (``repro.memsim.kernels.*``). The witness path is
        the BFS chain from the matching root — short, stable, and enough
        to explain *why* a function is held to the root's contract.
        """
        paths: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for full in sorted(self.functions):
            if any(fnmatch(full, pattern) for pattern in root_patterns):
                paths[full] = (full,)
                queue.append(full)
        while queue:
            current = queue.popleft()
            for callee in self.callees(current):
                if callee not in paths:
                    paths[callee] = (*paths[current], callee)
                    queue.append(callee)
        return paths


def build_program(
    paths: list[Path],
    config: SimlintConfig,
    *,
    use_cache: bool = True,
) -> Program:
    """Parse/summarize every file under ``paths`` into a :class:`Program`.

    With ``use_cache`` (the default) summaries come from the
    ``.simlint-cache/`` content-hash store when the file's bytes are
    unchanged; files that fail to parse are skipped (the per-file layer
    reports SIM000 for them).
    """
    from repro.analysis.runner import _relpath, iter_python_files

    cache = SummaryCache(config.root / CACHE_DIR_NAME) if use_cache else None
    infos: list[ModuleInfo] = []
    for path in iter_python_files(paths, config):
        source = path.read_text(encoding="utf-8")
        relpath = _relpath(path, config.root)
        summary = cache.get(source, relpath) if cache is not None else None
        if summary is None:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            summary = summarize_module(tree, relpath)
            if cache is not None:
                cache.put(source, relpath, summary)
        infos.append(ModuleInfo(
            name=summary.module, path=path, relpath=relpath,
            source=source, summary=summary,
        ))
    program = Program(infos, config)
    program.cache_hits = cache.hits if cache is not None else 0
    program.cache_misses = cache.misses if cache is not None else 0
    return program
