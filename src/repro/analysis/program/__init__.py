"""Whole-program analysis layer.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time; the contracts they guard, however, are *program* properties: the
purity of :func:`repro.memsim.evaluation.evaluate` depends on every
function it transitively calls, the pickle-safety of a sweep depends on
every type that crosses the :mod:`repro.sweep.procpool` boundary, and
the counter catalogue is only honest if every emitted name — wherever
it is built — round-trips against :mod:`repro.obs.catalog`.

This package adds that layer:

* :mod:`~repro.analysis.program.summary` — a serialisable
  :class:`ModuleSummary` per file: imports, functions with their calls,
  side-effect sites, counter emissions and unit-tagged arithmetic,
  classes with their fields. Summaries are *facts*, not verdicts.
* :mod:`~repro.analysis.program.cache` — a content-hash keyed store
  under ``.simlint-cache/`` so unchanged files never re-parse.
* :mod:`~repro.analysis.program.graph` — the :class:`Program`: the
  module table, import/name resolution, the call graph, and
  reachability queries the passes share.
* Four interprocedural passes registered like any other rule:
  **SIM201** purity-escape, **SIM202** pickle-safety, **SIM203**
  counter-catalogue drift, **SIM204** units-flow.

The analyses are deliberately *summary-based* rather than full dataflow
(see DESIGN.md): each function is reduced to a small fact record once,
and the passes combine records over the call graph. That keeps a
whole-repo run under the benchmarked 5-second budget and keeps every
verdict explainable by at most two facts (a site and a path to a root).
"""

from __future__ import annotations

from repro.analysis.program.graph import Program, build_program
from repro.analysis.program.summary import ModuleSummary, summarize_module

__all__ = [
    "ModuleSummary",
    "Program",
    "build_program",
    "summarize_module",
]
