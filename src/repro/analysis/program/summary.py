"""Per-module fact extraction: the :class:`ModuleSummary`.

One pass over a module's AST reduces it to a small, JSON-serialisable
record of *facts* — imports, module-level bindings, functions with their
calls, side-effect sites, counter emissions and unit-tagged arithmetic,
classes with their fields. The whole-program passes never re-visit the
AST: they combine summaries over the call graph, which is what makes the
content-hash cache (:mod:`repro.analysis.program.cache`) sound — a file
whose bytes did not change contributes exactly the same facts.

Verdicts live in the passes, not here. A recorded fact ("function ``f``
mutates module-level ``_CACHE`` at line 12") only becomes a finding if a
pass decides it matters (``f`` is reachable from a purity root).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: Bump when the extracted shape changes so stale cache entries are ignored.
SUMMARY_VERSION = 1

#: Mutating container/obj methods: calling one on a module-level binding
#: is a shared-state write.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
})

#: ``threading`` constructors whose instances cannot cross a pickle
#: boundary (and whose presence in a shipped type is a design smell).
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "Barrier",
})

#: Recorder methods whose first argument is a catalogue-governed name.
EMIT_METHODS = frozenset({"incr", "observe"})

#: Identifier suffix -> unit tag. The vocabulary matches the repo's
#: naming convention (README "Units"): ``*_bytes`` holds bytes,
#: ``*_gib`` holds gibibytes, ``*_ns`` holds nanoseconds, and so on —
#: same dimension, different scale, is exactly the class of silent
#: off-by-2**30 / off-by-1e9 bug SIM204 exists to catch.
_TAG_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("bytes", "bytes"),
    ("gib", "gib"),
    ("mib", "mib"),
    ("kib", "kib"),
    ("seconds", "seconds"),
    ("ns", "ns"),
    ("us", "us"),
    ("ms", "ms"),
    ("gbps", "gbps"),
)

#: Unit-constant names (from :mod:`repro.units`) acting as conversion
#: factors: multiplying by one lands in the given tag; dividing a value
#: of that tag by one lands back in the scale named by the constant.
_SCALE_CONSTANTS: dict[str, tuple[str, str]] = {
    "KIB": ("bytes", "kib"),
    "MIB": ("bytes", "mib"),
    "GIB": ("bytes", "gib"),
    "TIB": ("bytes", "tib"),
    "GB": ("bytes", "gb"),
    "NS": ("seconds", "ns"),
    "US": ("seconds", "us"),
    "MS": ("seconds", "ms"),
}

#: Unit-returning helpers from :mod:`repro.units`.
_UNIT_FUNCTIONS: dict[str, str] = {
    "gbps": "gbps",
    "seconds_for": "seconds",
    "gib": "bytes",
    "mib": "bytes",
    "kib": "bytes",
}


def tag_for_name(identifier: str) -> str | None:
    """Unit tag implied by an identifier's suffix, or ``None``."""
    lowered = identifier.lower()
    for suffix, tag in _TAG_SUFFIXES:
        if lowered == suffix or lowered.endswith(f"_{suffix}"):
            return tag
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    callee: str  # dotted form as written ("np.maximum", "self._solo", "f")
    line: int
    col: int
    #: Positional string arguments resolved to literals/patterns
    #: (``None`` per position when not statically a string).
    string_args: tuple[str | None, ...] = ()


@dataclass(frozen=True)
class EffectSite:
    """One statically-visible write to shared (non-local) state."""

    kind: str  # "global-write" | "module-mutation" | "io-write" | "stdout"
    line: int
    col: int
    detail: str


@dataclass(frozen=True)
class EmitSite:
    """One ``recorder.incr(...)`` / ``recorder.observe(...)`` call."""

    method: str
    line: int
    col: int
    #: Resolved counter name; ``*`` segments stand for runtime values.
    name: str | None = None
    #: Set when the name flows in through this parameter of the
    #: enclosing function — resolved interprocedurally by SIM203.
    param: str | None = None
    #: True when the name cannot be resolved statically at all.
    dynamic: bool = False


@dataclass(frozen=True)
class UnitMix:
    """An additive expression whose operand unit tags disagree.

    ``left``/``right`` are either concrete tags (``bytes``) or deferred
    callee references (``@call:media_seconds``) the units-flow pass
    resolves against the callee's return tag.
    """

    line: int
    col: int
    left: str
    right: str
    text: str


@dataclass(frozen=True)
class AttrSite:
    """A class-body field or an ``__init__`` ``self.x = ...`` attribute."""

    name: str
    line: int
    col: int
    #: Pickle-hostile value shape, if any: "lambda" | "nested-function" |
    #: "lock" | "open-handle" | "generator" | "mutable-module-ref".
    kind: str | None = None
    annotation: str | None = None


@dataclass(frozen=True)
class FunctionSummary:
    """Facts about one function or method."""

    qual: str  # within-module qualname: "f" or "Cls.m"
    name: str
    line: int
    col: int
    params: tuple[str, ...] = ()
    decorators: tuple[str, ...] = ()
    calls: tuple[CallSite, ...] = ()
    effects: tuple[EffectSite, ...] = ()
    emits: tuple[EmitSite, ...] = ()
    unit_mixes: tuple[UnitMix, ...] = ()
    return_tag: str | None = None


@dataclass(frozen=True)
class ClassSummary:
    """Facts about one top-level class."""

    name: str
    line: int
    col: int
    bases: tuple[str, ...] = ()
    fields: tuple[AttrSite, ...] = ()
    init_attrs: tuple[AttrSite, ...] = ()


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the program passes need to know about one module."""

    module: str  # dotted module name ("repro.memsim.config")
    relpath: str
    #: alias -> absolute dotted target ("np" -> "numpy",
    #: "MachineConfig" -> "repro.memsim.config.MachineConfig").
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable containers.
    mutable_bindings: tuple[str, ...] = ()
    #: module-level string constants (for counter-name resolution).
    str_constants: dict[str, str] = field(default_factory=dict)
    functions: tuple[FunctionSummary, ...] = ()
    classes: tuple[ClassSummary, ...] = ()

    def to_json(self) -> dict[str, object]:
        """Serialisable form for the on-disk summary cache."""
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "relpath": self.relpath,
            "imports": self.imports,
            "mutable_bindings": list(self.mutable_bindings),
            "str_constants": self.str_constants,
            "functions": [_func_to_json(f) for f in self.functions],
            "classes": [_class_to_json(c) for c in self.classes],
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ModuleSummary | None":
        """Rebuild from :meth:`to_json` output; ``None`` on any mismatch."""
        try:
            if data["version"] != SUMMARY_VERSION:
                return None
            return cls(
                module=data["module"],
                relpath=data["relpath"],
                imports=dict(data["imports"]),
                mutable_bindings=tuple(data["mutable_bindings"]),
                str_constants=dict(data["str_constants"]),
                functions=tuple(_func_from_json(f) for f in data["functions"]),
                classes=tuple(_class_from_json(c) for c in data["classes"]),
            )
        except (KeyError, TypeError):
            return None


def _func_to_json(f: FunctionSummary) -> dict[str, object]:
    return {
        "qual": f.qual, "name": f.name, "line": f.line, "col": f.col,
        "params": list(f.params), "decorators": list(f.decorators),
        "calls": [[c.callee, c.line, c.col, list(c.string_args)] for c in f.calls],
        "effects": [[e.kind, e.line, e.col, e.detail] for e in f.effects],
        "emits": [[e.method, e.line, e.col, e.name, e.param, e.dynamic]
                  for e in f.emits],
        "unit_mixes": [[m.line, m.col, m.left, m.right, m.text]
                       for m in f.unit_mixes],
        "return_tag": f.return_tag,
    }


def _func_from_json(data: dict[str, object]) -> FunctionSummary:
    return FunctionSummary(
        qual=data["qual"], name=data["name"], line=data["line"], col=data["col"],
        params=tuple(data["params"]), decorators=tuple(data["decorators"]),
        calls=tuple(
            CallSite(callee=c[0], line=c[1], col=c[2],
                     string_args=tuple(c[3]))
            for c in data["calls"]
        ),
        effects=tuple(
            EffectSite(kind=e[0], line=e[1], col=e[2], detail=e[3])
            for e in data["effects"]
        ),
        emits=tuple(
            EmitSite(method=e[0], line=e[1], col=e[2], name=e[3],
                     param=e[4], dynamic=e[5])
            for e in data["emits"]
        ),
        unit_mixes=tuple(
            UnitMix(line=m[0], col=m[1], left=m[2], right=m[3], text=m[4])
            for m in data["unit_mixes"]
        ),
        return_tag=data["return_tag"],
    )


def _class_to_json(c: ClassSummary) -> dict[str, object]:
    return {
        "name": c.name, "line": c.line, "col": c.col, "bases": list(c.bases),
        "fields": [[a.name, a.line, a.col, a.kind, a.annotation]
                   for a in c.fields],
        "init_attrs": [[a.name, a.line, a.col, a.kind, a.annotation]
                       for a in c.init_attrs],
    }


def _class_from_json(data: dict[str, object]) -> ClassSummary:
    def site(raw: list[object]) -> AttrSite:
        return AttrSite(name=raw[0], line=raw[1], col=raw[2], kind=raw[3],
                        annotation=raw[4])

    return ClassSummary(
        name=data["name"], line=data["line"], col=data["col"],
        bases=tuple(data["bases"]),
        fields=tuple(site(a) for a in data["fields"]),
        init_attrs=tuple(site(a) for a in data["init_attrs"]),
    )


# --------------------------------------------------------------------------
# extraction helpers


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` expressions; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_container(node: ast.expr | None) -> bool:
    if isinstance(node, (ast.List, ast.ListComp, ast.Dict, ast.DictComp,
                         ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def _package_of(module: str, relpath: str) -> str:
    """The package a module's relative imports resolve against."""
    if relpath.endswith("__init__.py"):
        return module
    return module.rpartition(".")[0]


def _collect_imports(tree: ast.Module, module: str, relpath: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    package = _package_of(module, relpath)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted usage keeps the
                    # tail, so mapping the head to itself suffices.
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package
                for _ in range(node.level - 1):
                    anchor = anchor.rpartition(".")[0]
                base = anchor if node.module is None else f"{anchor}.{node.module}"
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


class _StrResolver:
    """Resolve string-valued expressions to literals or ``*``-patterns."""

    def __init__(self, local_strs: dict[str, str | None],
                 module_strs: dict[str, str]) -> None:
        self.local_strs = local_strs
        self.module_strs = module_strs

    def resolve(self, node: ast.expr) -> str | None:
        """A literal/pattern for ``node``, or ``None`` if dynamic.

        Unresolvable *full-segment* placeholders make the whole name
        dynamic (their expansion could span any number of dotted
        segments); unresolvable placeholders embedded in literal text
        wildcard just their own segment.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self.local_strs:
                return self.local_strs[node.id]
            return self.module_strs.get(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.resolve(node.left)
            right = self.resolve(node.right)
            if left is not None and right is not None:
                return left + right
            return None
        if isinstance(node, ast.JoinedStr):
            return self._resolve_joined(node)
        return None

    def _resolve_joined(self, node: ast.JoinedStr) -> str | None:
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                inner = self.resolve(value.value)
                if inner is not None:
                    parts.append(inner)
                else:
                    parts.append("\x00")  # unresolved placeholder
            else:
                return None
        raw = "".join(parts)
        segments = []
        for segment in raw.split("."):
            if segment == "\x00":
                return None  # full-segment placeholder: arity unknown
            segments.append("*" if "\x00" in segment else segment)
        return ".".join(segments)


def _attr_value_kind(node: ast.expr | None, imports: dict[str, str],
                     mutable_bindings: set[str]) -> str | None:
    """Pickle-hostile value classification for a field/attribute value."""
    if node is None:
        return None
    if isinstance(node, ast.Lambda):
        return "lambda"
    if isinstance(node, ast.GeneratorExp):
        return "generator"
    if isinstance(node, ast.Name) and node.id in mutable_bindings:
        return "mutable-module-ref"
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted is not None:
            tail = dotted.rpartition(".")[2]
            head = dotted.rpartition(".")[0]
            resolved_head = imports.get(head, head)
            if tail in LOCK_CONSTRUCTORS and (
                resolved_head == "threading"
                or imports.get(dotted, "").startswith("threading.")
                or (head == "" and imports.get(tail, "").startswith("threading."))
            ):
                return "lock"
            if dotted == "open":
                return "open-handle"
            if tail == "field":
                for kw in node.keywords:
                    if kw.arg == "default" and isinstance(kw.value, ast.Lambda):
                        return "lambda"
    return None


#: Annotation identifiers that never survive (or should never cross) a
#: pickle boundary.
_UNPICKLABLE_ANNOTATIONS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "TextIO", "BinaryIO", "IO", "TextIOWrapper", "Generator", "Iterator",
})


def unpicklable_annotation(annotation: str | None) -> str | None:
    """The first pickle-hostile identifier in an annotation, if any."""
    if annotation is None:
        return None
    for token in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation):
        if token in _UNPICKLABLE_ANNOTATIONS:
            return token
    return None


# --------------------------------------------------------------------------
# unit-tag inference (the intra-function half of SIM204)


class _UnitTagger:
    """Infer unit tags for expressions inside one function."""

    def __init__(self, env: dict[str, str], imports: dict[str, str],
                 local_functions: set[str]) -> None:
        self.env = env
        self.imports = imports
        self.local_functions = local_functions
        self.mixes: list[UnitMix] = []

    def _scale_constant(self, dotted: str) -> tuple[str, str] | None:
        tail = dotted.rpartition(".")[2]
        if tail not in _SCALE_CONSTANTS:
            return None
        # Accept ``units.GIB``, a bare imported ``GIB``, or any dotted
        # path through a module named ``units``.
        head = dotted.rpartition(".")[0]
        if head:
            resolved = self.imports.get(head.split(".")[0], head)
            if "units" not in resolved and "units" not in head:
                return None
        else:
            target = self.imports.get(tail, "")
            if target and "units" not in target:
                return None
        return _SCALE_CONSTANTS[tail]

    def tag(self, node: ast.expr) -> str | None:
        """Concrete tag, ``@call:<dotted>`` deferred ref, or ``None``."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return tag_for_name(node.id)
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None and self._scale_constant(dotted) is not None:
                return None  # a conversion factor, not a quantity
            return tag_for_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.tag(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.tag(node.body), self.tag(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            return self._call_tag(node)
        if isinstance(node, ast.BinOp):
            return self._binop_tag(node)
        return None

    def _call_tag(self, node: ast.Call) -> str | None:
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        tail = dotted.rpartition(".")[2]
        if tail in _UNIT_FUNCTIONS:
            return _UNIT_FUNCTIONS[tail]
        if tail in ("min", "max", "abs", "sum", "round", "float", "int"):
            # Shape-preserving builtins: tag of the first argument.
            if node.args:
                return self.tag(node.args[0])
            return None
        named = tag_for_name(tail)
        if named is not None:
            return named
        # A program-local callee: defer to its return tag (resolved by
        # the units-flow pass against the callee's summary).
        head = dotted.split(".")[0]
        if dotted in self.local_functions or head in self.imports or (
            head in ("self", "cls")
        ):
            return f"@call:{dotted}"
        return None

    def _binop_tag(self, node: ast.BinOp) -> str | None:
        left, right = self.tag(node.left), self.tag(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                self.mixes.append(UnitMix(
                    line=node.lineno, col=node.col_offset,
                    left=left, right=right, text=ast.unparse(node),
                ))
                return None
            return left if left == right else (left or right)
        if isinstance(node.op, ast.Mult):
            for own, other_node in ((node.left, node.right),
                                    (node.right, node.left)):
                dotted = _dotted(own) if isinstance(
                    own, (ast.Name, ast.Attribute)) else None
                if dotted is not None:
                    scale = self._scale_constant(dotted)
                    if scale is not None:
                        return scale[0]  # x * GIB -> bytes, x * NS -> seconds
            if isinstance(node.left, ast.Constant):
                return right
            if isinstance(node.right, ast.Constant):
                return left
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            dotted = _dotted(node.right) if isinstance(
                node.right, (ast.Name, ast.Attribute)) else None
            if dotted is not None:
                scale = self._scale_constant(dotted)
                if scale is not None and left == scale[0]:
                    return scale[1]  # bytes / GIB -> gib, seconds / NS -> ns
            return None
        return None


# --------------------------------------------------------------------------
# the extractor


def _local_names(func: ast.AST) -> set[str]:
    """Names bound locally inside ``func`` (assignments, loops, withs)."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                # Only Store-context names bind: in ``d[k] = v`` or
                # ``obj.attr = v`` the base name is a Load, not a binding.
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) and isinstance(
                        leaf.ctx, ast.Store
                    ):
                        names.add(leaf.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for leaf in ast.walk(node.optional_vars):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, ast.comprehension):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


def _walk_own(func: ast.AST):
    """``ast.walk`` over a function including nested defs and lambdas.

    Nested functions share the enclosing summary: their effects and
    calls are attributed to the function that defines them, which is
    conservative for purity (defining an impure closure is treated like
    running it) and keeps the summary table flat.
    """
    yield from ast.walk(func)


class _FunctionExtractor:
    """Extract one :class:`FunctionSummary`."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 qual: str, module_summary_ctx: "_ModuleCtx") -> None:
        self.func = func
        self.qual = qual
        self.ctx = module_summary_ctx

    def extract(self) -> FunctionSummary:
        func, ctx = self.func, self.ctx
        params = tuple(
            arg.arg
            for arg in (*func.args.posonlyargs, *func.args.args,
                        *func.args.kwonlyargs)
        )
        locals_ = _local_names(func)
        str_env = self._string_env(locals_)
        resolver = _StrResolver(str_env, ctx.str_constants)

        calls: list[CallSite] = []
        effects: list[EffectSite] = []
        emits: list[EmitSite] = []
        global_names = self._declared_globals()
        for node in _walk_own(func):
            if isinstance(node, ast.Call):
                self._visit_call(node, params, locals_, resolver, calls,
                                 effects, emits)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._visit_assign(node, params, locals_, global_names, effects)
        unit_env = self._unit_env(params, func)
        tagger = _UnitTagger(unit_env, ctx.imports, ctx.local_callables)
        self._run_units(func, tagger)
        return_tag = self._return_tag(func, tagger)
        seen_mixes: set[tuple[int, int, str]] = set()
        unit_mixes: list[UnitMix] = []
        for mix in tagger.mixes:
            key = (mix.line, mix.col, mix.text)
            if key not in seen_mixes:
                seen_mixes.add(key)
                unit_mixes.append(mix)
        return FunctionSummary(
            qual=self.qual,
            name=func.name,
            line=func.lineno,
            col=func.col_offset,
            params=params,
            decorators=tuple(
                d for d in (_dotted(dec) for dec in func.decorator_list)
                if d is not None
            ),
            calls=tuple(calls),
            effects=tuple(effects),
            emits=tuple(emits),
            unit_mixes=tuple(unit_mixes),
            return_tag=return_tag,
        )

    # -- strings -----------------------------------------------------------

    def _string_env(self, locals_: set[str]) -> dict[str, str | None]:
        """Locally-assigned string values; ambiguous names map to None."""
        assigns: dict[str, list[str | None]] = {}
        base = _StrResolver({}, self.ctx.str_constants)
        for node in _walk_own(self.func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, (ast.Constant, ast.JoinedStr, ast.BinOp)):
                resolved = base.resolve(node.value)
                if resolved is not None or isinstance(
                    node.value, (ast.JoinedStr,)
                ) or (isinstance(node.value, ast.Constant)
                      and isinstance(node.value.value, str)):
                    assigns.setdefault(target.id, []).append(resolved)
        env: dict[str, str | None] = {}
        for name, values in assigns.items():
            distinct = set(values)
            env[name] = values[0] if len(distinct) == 1 else None
        return {name: value for name, value in env.items() if name in locals_}

    # -- effects -----------------------------------------------------------

    def _declared_globals(self) -> set[str]:
        names: set[str] = set()
        for node in _walk_own(self.func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                names.update(node.names)
        return names

    def _shared_base(self, node: ast.expr, params: tuple[str, ...],
                     locals_: set[str]) -> str | None:
        """The module-level/imported name a write target is rooted in."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if name in ("self", "cls") or name in params or name in locals_:
            return None
        if name in self.ctx.module_bindings or name in self.ctx.imports:
            return name
        return None

    def _visit_assign(self, node: ast.stmt, params: tuple[str, ...],
                      locals_: set[str], global_names: set[str],
                      effects: list[EffectSite]) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in global_names:
                effects.append(EffectSite(
                    kind="global-write", line=node.lineno,
                    col=node.col_offset,
                    detail=f"rebinds global/nonlocal '{target.id}'",
                ))
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                base = self._shared_base(target, params, locals_)
                if base is not None:
                    effects.append(EffectSite(
                        kind="module-mutation", line=node.lineno,
                        col=node.col_offset,
                        detail=f"writes into module-level '{base}'",
                    ))

    def _visit_call(self, node: ast.Call, params: tuple[str, ...],
                    locals_: set[str], resolver: _StrResolver,
                    calls: list[CallSite], effects: list[EffectSite],
                    emits: list[EmitSite]) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            string_args = tuple(resolver.resolve(arg) for arg in node.args)
            calls.append(CallSite(
                callee=dotted, line=node.lineno, col=node.col_offset,
                string_args=string_args,
            ))
            tail = dotted.rpartition(".")[2]
            if tail in EMIT_METHODS and isinstance(node.func, ast.Attribute):
                emits.append(self._emit_site(node, tail, params, resolver))
            if tail in MUTATOR_METHODS and isinstance(node.func, ast.Attribute):
                base = self._shared_base(node.func.value, params, locals_)
                if base is not None:
                    effects.append(EffectSite(
                        kind="module-mutation", line=node.lineno,
                        col=node.col_offset,
                        detail=f"mutates module-level '{base}' via .{tail}()",
                    ))
            if dotted == "print":
                effects.append(EffectSite(
                    kind="stdout", line=node.lineno, col=node.col_offset,
                    detail="writes to stdout via print()",
                ))
            elif dotted == "setattr" and node.args:
                base = self._shared_base(node.args[0], params, locals_)
                if base is not None:
                    effects.append(EffectSite(
                        kind="module-mutation", line=node.lineno,
                        col=node.col_offset,
                        detail=f"setattr() on module-level '{base}'",
                    ))
            elif dotted == "open":
                mode = self._open_mode(node)
                if mode is not None and any(ch in mode for ch in "wax+"):
                    effects.append(EffectSite(
                        kind="io-write", line=node.lineno, col=node.col_offset,
                        detail=f"opens a file for writing (mode {mode!r})",
                    ))
            # Unambiguously-filesystem method names only: ``.touch()``,
            # ``.replace()`` and ``.rename()`` also name pure operations
            # (DirectoryState.touch, dataclasses.replace, str.replace).
            elif tail in ("write_text", "write_bytes", "unlink", "mkdir",
                          "rmdir"):
                effects.append(EffectSite(
                    kind="io-write", line=node.lineno, col=node.col_offset,
                    detail=f"filesystem write via .{tail}()",
                ))

    @staticmethod
    def _open_mode(node: ast.Call) -> str | None:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            if isinstance(node.args[1].value, str):
                return node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    return kw.value.value
        return None

    def _emit_site(self, node: ast.Call, method: str, params: tuple[str, ...],
                   resolver: _StrResolver) -> EmitSite:
        if not node.args:
            return EmitSite(method=method, line=node.lineno,
                            col=node.col_offset, dynamic=True)
        first = node.args[0]
        resolved = resolver.resolve(first)
        if resolved is not None:
            return EmitSite(method=method, line=node.lineno,
                            col=node.col_offset, name=resolved)
        if isinstance(first, ast.Name) and first.id in params:
            return EmitSite(method=method, line=node.lineno,
                            col=node.col_offset, param=first.id)
        return EmitSite(method=method, line=node.lineno, col=node.col_offset,
                        dynamic=True)

    # -- units -------------------------------------------------------------

    def _unit_env(self, params: tuple[str, ...],
                  func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
        env: dict[str, str] = {}
        for param in params:
            tag = tag_for_name(param)
            if tag is not None:
                env[param] = tag
        return env

    def _run_units(self, func: ast.AST, tagger: _UnitTagger) -> None:
        """Two passes: build the assignment env, then tag every additive
        expression and comparison. Nested expressions are visited more
        than once; mixes are deduplicated by position in ``extract``."""
        for node in _walk_own(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)
            ):
                tag = tagger.tag(node.value)
                name = node.targets[0].id
                if tag is not None:
                    tagger.env[name] = tag
                else:
                    named = tag_for_name(name)
                    if named is not None:
                        tagger.env[name] = named
        for node in _walk_own(func):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                tagger.tag(node)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ) and isinstance(node.target, ast.Name):
                left = tagger.tag(node.target)
                right = tagger.tag(node.value)
                if left is not None and right is not None and left != right:
                    tagger.mixes.append(UnitMix(
                        line=node.lineno, col=node.col_offset,
                        left=left, right=right, text=ast.unparse(node),
                    ))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                left = tagger.tag(node.left)
                right = tagger.tag(node.comparators[0])
                if left is not None and right is not None and left != right:
                    tagger.mixes.append(UnitMix(
                        line=node.lineno, col=node.col_offset,
                        left=left, right=right, text=ast.unparse(node),
                    ))

    def _return_tag(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                    tagger: _UnitTagger) -> str | None:
        tags: set[str] = set()
        for node in _walk_own(func):
            if isinstance(node, ast.Return) and node.value is not None:
                tag = tagger.tag(node.value)
                if tag is not None and not tag.startswith("@call:"):
                    tags.add(tag)
        if len(tags) == 1:
            return tags.pop()
        return tag_for_name(func.name)


@dataclass
class _ModuleCtx:
    """Shared module facts the function extractor reads."""

    imports: dict[str, str]
    module_bindings: set[str]
    mutable_bindings: set[str]
    str_constants: dict[str, str]
    local_callables: set[str]


def module_name_for(relpath: str) -> str:
    """Dotted module name for a POSIX relpath (``src/`` layout aware)."""
    parts = relpath.split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def summarize_module(tree: ast.Module, relpath: str) -> ModuleSummary:
    """Reduce one parsed module to its :class:`ModuleSummary`."""
    module = module_name_for(relpath)
    imports = _collect_imports(tree, module, relpath)

    module_bindings: set[str] = set()
    mutable_bindings: list[str] = []
    str_constants: dict[str, str] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            module_bindings.add(target.id)
            if _is_mutable_container(value):
                mutable_bindings.append(target.id)
            elif isinstance(value, ast.Constant) and isinstance(value.value, str):
                str_constants[target.id] = value.value

    local_callables = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    ctx = _ModuleCtx(
        imports=imports,
        module_bindings=module_bindings | local_callables,
        mutable_bindings=set(mutable_bindings),
        str_constants=str_constants,
        local_callables=local_callables,
    )

    functions: list[FunctionSummary] = []
    classes: list[ClassSummary] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _FunctionExtractor(node, node.name, ctx).extract()
            )
        elif isinstance(node, ast.ClassDef):
            classes.append(_summarize_class(node, ctx, functions))
    return ModuleSummary(
        module=module,
        relpath=relpath,
        imports=imports,
        mutable_bindings=tuple(mutable_bindings),
        str_constants=str_constants,
        functions=tuple(functions),
        classes=tuple(classes),
    )


def _summarize_class(node: ast.ClassDef, ctx: _ModuleCtx,
                     functions: list[FunctionSummary]) -> ClassSummary:
    mutable = ctx.mutable_bindings
    fields: list[AttrSite] = []
    init_attrs: list[AttrSite] = []
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _FunctionExtractor(stmt, f"{node.name}.{stmt.name}", ctx).extract()
            )
            if stmt.name in ("__init__", "__post_init__", "__new__"):
                for inner in ast.walk(stmt):
                    if not isinstance(inner, ast.Assign):
                        continue
                    for target in inner.targets:
                        if isinstance(target, ast.Attribute) and isinstance(
                            target.value, ast.Name
                        ) and target.value.id == "self":
                            init_attrs.append(AttrSite(
                                name=target.attr, line=inner.lineno,
                                col=inner.col_offset,
                                kind=_attr_value_kind(
                                    inner.value, ctx.imports, mutable),
                            ))
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            annotation = (
                ast.unparse(stmt.annotation)
                if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None
                else None
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    fields.append(AttrSite(
                        name=target.id, line=stmt.lineno, col=stmt.col_offset,
                        kind=_attr_value_kind(stmt.value, ctx.imports, mutable),
                        annotation=annotation,
                    ))
    return ClassSummary(
        name=node.name,
        line=node.lineno,
        col=node.col_offset,
        bases=tuple(
            b for b in (_dotted(base) for base in node.bases) if b is not None
        ),
        fields=tuple(fields),
        init_attrs=tuple(init_attrs),
    )
