"""The :class:`Finding` record emitted by every checker, and rule metadata."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rule:
    """Identity of one simlint check.

    ``code`` is the stable machine id (``SIM107``); ``name`` is the short
    human slug used in suppression comments (``float-equality``). Either
    form is accepted wherever a rule is referenced (``--disable``,
    ``# simlint: ignore[...]``, config lists).
    """

    code: str
    name: str
    summary: str

    def matches(self, ref: str) -> bool:
        """Return whether ``ref`` (a code or a name) refers to this rule."""
        return ref in (self.code, self.name)


@dataclass(frozen=True)
class Fix:
    """A mechanical, exact-span rewrite that resolves a finding.

    Spans are ``(line, col)`` .. ``(end_line, end_col)`` with 1-based
    lines and 0-based columns — the AST node convention — and replace
    exactly the flagged expression, so applying a fix can never touch
    code the rule did not diagnose. ``adds_import`` optionally names one
    import statement the replacement relies on; the fixer inserts it
    only if the module does not already have it.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str
    adds_import: str | None = None


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violated at a specific place in a file.

    ``path`` is stored POSIX-style relative to the project root so that
    findings, suppressor comments and baseline entries compare equal
    regardless of the machine the analysis ran on. ``snippet`` is the
    stripped source line, which doubles as the line-number-insensitive
    part of the baseline key.
    """

    path: str
    line: int
    col: int
    rule: str = field(compare=False)
    name: str = field(compare=False)
    message: str = field(compare=False)
    snippet: str = field(compare=False)
    #: Mechanical rewrite applied by ``repro lint --fix``, when the rule
    #: has one. Excluded from ordering and from the baseline key.
    fix: Fix | None = field(default=None, compare=False)

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Key used to match this finding against a baseline entry.

        Deliberately excludes the line number: a baselined finding should
        survive unrelated edits above it in the same file.
        """
        return (self.path, self.rule, self.snippet)

    def render(self) -> str:
        """One-line ``path:line:col: CODE[name] message`` diagnostic."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (used by ``--json`` output)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
            "snippet": self.snippet,
            "fixable": self.fix is not None,
        }
