"""Per-line ``# simlint: ignore[...]`` suppression comments.

Syntax, on the line the finding is reported at::

    x = eps == 0.0          # simlint: ignore[float-equality]
    y = 1e-9                # simlint: ignore[unit-literal] -- epsilon, not a unit
    z = risky()             # simlint: ignore

A bare ``ignore`` suppresses every rule on that line; the bracketed form
lists rule names or codes, comma-separated. Anything after ``--`` is a
free-text justification and is not parsed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.finding import Finding, Rule

_IGNORE_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)

#: Sentinel rule set meaning "every rule".
_ALL = frozenset({"*"})


@dataclass(frozen=True)
class Suppressions:
    """Map of 1-based line number to the rule references suppressed there."""

    by_line: dict[int, frozenset[str]]

    @classmethod
    def scan(cls, source: str) -> Suppressions:
        """Collect suppression comments from ``source``.

        A plain string scan (rather than :mod:`tokenize`) is sufficient
        because a false positive requires the literal marker inside a
        string on the same line as a finding — and suppressing one line
        too many in that pathological case is harmless.
        """
        by_line: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            listed = match.group("rules")
            if listed is None:
                by_line[lineno] = _ALL
            else:
                refs = frozenset(ref.strip() for ref in listed.split(",") if ref.strip())
                by_line[lineno] = refs or _ALL
        return cls(by_line=by_line)

    def suppresses(self, finding: Finding, rules: dict[str, Rule]) -> bool:
        """Whether ``finding`` is silenced by a comment on its line.

        ``rules`` maps rule code to :class:`Rule` so that either the code
        or the short name matches.
        """
        refs = self.by_line.get(finding.line)
        if refs is None:
            return False
        if refs == _ALL:
            return True
        rule = rules.get(finding.rule)
        return any(rule is not None and rule.matches(ref) for ref in refs)
