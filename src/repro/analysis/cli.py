"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: **0** clean (every finding fixed, suppressed, or baselined),
**1** at least one new finding, **2** usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import load_config
from repro.analysis.fix import apply_fixes
from repro.analysis.registry import all_rules
from repro.analysis.runner import AnalysisReport, run_analysis
from repro.errors import AnalysisError

#: Exit status for usage/configuration problems (vs. 1 = findings).
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simlint: unit-safety, determinism and hygiene checks "
        "for the repro package",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: [tool.simlint] paths)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON instead of text")
    parser.add_argument("--config", type=Path, default=None,
                        help="explicit pyproject.toml (default: discovered upward)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rules to run (codes or names)")
    parser.add_argument("--disable", metavar="RULES",
                        help="comma-separated rules to skip")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings as if new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline file")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="treat stale baseline entries as an error")
    parser.add_argument("--fix", action="store_true",
                        help="apply the mechanical rewrites attached to findings")
    parser.add_argument("--dry-run", action="store_true",
                        help="with --fix: print the diff instead of writing files")
    parser.add_argument("--changed", action="store_true",
                        help="only report findings in files changed vs git HEAD")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the .simlint-cache summary store")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def _split_rules(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [ref.strip() for ref in raw.split(",") if ref.strip()]


def _print_text(report: AnalysisReport, out) -> None:
    for finding in report.findings:
        print(finding.render(), file=out)
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
        f" ({len(report.baselined)} baselined, {report.suppressed} suppressed)"
    )
    print(summary, file=out)
    for entry in report.stale_baseline:
        print(
            f"note: stale baseline entry {entry['path']} [{entry['rule']}] "
            f"{entry['snippet']!r} no longer matches anything",
            file=out,
        )


def _run(args, config) -> AnalysisReport:
    return run_analysis(
        paths=args.paths or None,
        config=config,
        select=_split_rules(args.select),
        disable=_split_rules(args.disable),
        use_baseline=not (args.no_baseline or args.write_baseline),
        use_cache=not args.no_cache,
        changed_only=args.changed,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Run the analyzer; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<18} {rule.summary}")
        return 0
    if args.dry_run and not args.fix:
        print("simlint: error: --dry-run only makes sense with --fix",
              file=sys.stderr)
        return EXIT_ERROR

    try:
        config = load_config(explicit=args.config)
        report = _run(args, config)
        if args.write_baseline:
            baseline_path = config.baseline_path()
            if baseline_path is None:
                raise AnalysisError(
                    "no baseline file configured; set [tool.simlint] baseline"
                )
            Baseline.from_findings(
                report.findings, reason="grandfathered by --write-baseline"
            ).save(baseline_path)
            print(
                f"wrote {len(report.findings)} entries to {baseline_path}",
                file=sys.stderr,
            )
            return 0
        if args.fix:
            fix_report = apply_fixes(
                report.findings, config.root, dry_run=args.dry_run,
            )
            if args.dry_run:
                for result in fix_report.changed_files:
                    print(result.diff(), end="")
                print(
                    f"would fix {fix_report.applied} finding(s) in "
                    f"{len(fix_report.changed_files)} file(s)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"fixed {fix_report.applied} finding(s) in "
                    f"{len(fix_report.changed_files)} file(s)",
                    file=sys.stderr,
                )
                if fix_report.applied:
                    # Re-analyze so the report (and exit code) describe
                    # what is still wrong after the rewrites.
                    report = _run(args, config)
    except AnalysisError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        _print_text(report, sys.stdout)
    exit_code = report.exit_code
    if args.strict_baseline and report.stale_baseline:
        print(
            f"simlint: error: {len(report.stale_baseline)} stale baseline "
            "entry(ies) under --strict-baseline (prune simlint-baseline.json)",
            file=sys.stderr,
        )
        exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
