"""Transport-hygiene rule: every wire read needs a frame-size bound.

The serving layer and the cluster sweep backend both speak
newline-framed JSON over asyncio streams. ``StreamReader.readline``
honours the stream's ``limit`` — but only if the stream was *created*
with one sized to the protocol's frames; the 64 KiB default silently
truncates legitimate large frames, and a raw ``read()``/``recv()``
accumulation loop has no bound at all, so one peer that never sends a
newline (or never stops sending) grows the buffer without limit.

* **SIM110 unbounded-read** — one of three shapes inside the configured
  ``transport-paths``:

  1. ``asyncio.open_connection(...)`` / ``asyncio.start_server(...)`` /
     ``asyncio.StreamReader(...)`` without an explicit ``limit=``
     keyword — the stream's reads are bounded only by the default,
     which no protocol here fits under;
  2. a zero-argument ``.read()`` method call — read-to-EOF with no
     size bound;
  3. a ``while`` loop growing a buffer via ``buf += x.recv(...)`` or
     ``buf += x.read(...)`` with no ``len(buf)`` check in the loop's
     test or body — an accumulation loop with no frame-size bound.

Forwarded limits count: ``open_connection(host, port, limit=n)`` is fine
whatever ``n`` is — the rule checks that a bound *exists*, it does not
guess protocol sizes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

UNBOUNDED_READ = Rule(
    code="SIM110",
    name="unbounded-read",
    summary="transport read without a frame-size bound",
)

#: Stream factories that accept (and should be given) a ``limit=``.
_LIMIT_FACTORIES = frozenset(
    {
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.StreamReader",
    }
)

#: Method names that pull bytes off a transport.
_RECV_METHODS = frozenset({"read", "recv", "recv_into", "readline"})


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _has_limit_kwarg(call: ast.Call) -> bool:
    return any(kw.arg == "limit" for kw in call.keywords)


def _is_recv_call(node: ast.expr) -> bool:
    """Whether ``node`` is a ``x.recv(...)`` / ``x.read(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RECV_METHODS
    )


def _mentions_len_of(name: str, node: ast.AST) -> bool:
    """Whether ``len(<name>)`` appears anywhere under ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
            and len(sub.args) == 1
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id == name
        ):
            return True
    return False


def _accumulation_findings(
    loop: ast.While, ctx: FileContext
) -> Iterator[Finding]:
    """Flag ``buf += x.recv(...)`` loops with no ``len(buf)`` bound."""
    for node in ast.walk(loop):
        if not isinstance(node, ast.AugAssign):
            continue
        if not isinstance(node.op, ast.Add):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        if not _is_recv_call(node.value):
            continue
        buf = node.target.id
        if _mentions_len_of(buf, loop):
            continue
        yield ctx.finding(
            UNBOUNDED_READ, node,
            f"receive loop grows '{buf}' without a frame-size bound; "
            f"check len({buf}) against a limit (or use a limited "
            "StreamReader)",
        )


@register(UNBOUNDED_READ)
def check_unbounded_read(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_transport_scope(ctx.relpath):
        return
    for node in ast.walk(module):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in _LIMIT_FACTORIES and not _has_limit_kwarg(node):
                yield ctx.finding(
                    UNBOUNDED_READ, node,
                    f"'{dotted}(...)' without limit= leaves reads bounded "
                    "only by the 64 KiB default; pass the protocol's "
                    "max frame size",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "read"
                and not node.args
                and not node.keywords
            ):
                yield ctx.finding(
                    UNBOUNDED_READ, node,
                    "zero-argument '.read()' reads to EOF with no bound; "
                    "pass a size (or read line-framed via a limited "
                    "StreamReader)",
                )
        elif isinstance(node, ast.While):
            yield from _accumulation_findings(node, ctx)
