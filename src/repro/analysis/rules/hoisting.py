"""Hot-path hoisting rule.

* **SIM105 context-derivable-constant** — a simulation hot path calls a
  topology derived-query method (``interleave_ways``, ``socket``,
  ``physical_core_count``, ...) whose answer depends only on the
  :class:`~repro.memsim.config.MachineConfig`. Those queries linear-scan
  the topology tables; recomputing them per evaluation is exactly the
  cost :class:`~repro.memsim.context.EvalContext` exists to hoist —
  derive the value once in ``context.py`` and read the precomputed table
  instead.

Confined to the configured ``determinism-paths`` (the simulation hot
paths); :mod:`repro.memsim.topology` itself and
:mod:`repro.memsim.context` — the two modules whose *job* is answering
these queries — are exempt. Matches attribute calls whose receiver chain
mentions ``topology`` (``self.topology.socket(...)``,
``config.topology.interleave_ways(...)``), so unrelated methods that
happen to share a name do not fire.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

CONTEXT_DERIVABLE = Rule(
    code="SIM105",
    name="context-derivable-constant",
    summary="per-call recomputation of a MachineConfig-derived table in a hot path",
)

#: SystemTopology derived queries whose results EvalContext precomputes.
_DERIVED_QUERIES = frozenset({
    "socket", "node", "imc", "core",
    "dimms_of", "interleave_ways",
    "physical_cores", "logical_cores", "physical_core_count",
    "far_socket", "upi_between",
    "capacity", "socket_capacity", "socket_count",
})

#: Files whose purpose is computing these queries: the topology itself
#: and the context layer that hoists them.
_EXEMPT_SUFFIXES = ("memsim/topology.py", "memsim/context.py")


def _receiver_mentions_topology(node: ast.expr) -> bool:
    """Whether the attribute chain under a call names ``topology``."""
    while isinstance(node, ast.Attribute):
        if node.attr == "topology":
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id == "topology"


@register(CONTEXT_DERIVABLE)
def check_context_derivable(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_determinism_scope(ctx.relpath):
        return
    if ctx.relpath.endswith(_EXEMPT_SUFFIXES):
        return
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _DERIVED_QUERIES:
            continue
        if not _receiver_mentions_topology(func.value):
            continue
        yield ctx.finding(
            CONTEXT_DERIVABLE, node,
            f"'{func.attr}' recomputes a MachineConfig-derived table per "
            "call; hoist it into the per-config EvalContext "
            "(repro.memsim.context) and read the precomputed value",
        )
