"""Async-hygiene rule for the serving layer.

The bandwidth server (:mod:`repro.serve`) runs everything — admission,
gather windows, batch dispatch, every connection — on one event loop. A
single synchronous sleep or blocking I/O call inside a coroutine stalls
*all* of it: coalesced batch-mates, unrelated connections, the frame
timeout that is supposed to defend against slow clients.

* **SIM109 async-blocking-call** — a known-blocking call inside an
  ``async def`` body: ``time.sleep`` (use the loop's sleep, or the
  injected one so fake-clock tests stay deterministic), synchronous file
  I/O (``open``, ``io.open``, ``Path.read_text``-style methods),
  synchronous socket work (``socket.socket``, ``socket.create_connection``),
  and ``subprocess`` calls. Confined to the configured ``serve-paths``.

Only the coroutine's own statements are inspected: a nested ``def`` is a
callback that may legitimately block somewhere else, and awaited helpers
are checked where they are defined.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

ASYNC_BLOCKING = Rule(
    code="SIM109",
    name="async-blocking-call",
    summary="blocking call inside an async def stalls the whole event loop",
)

#: Dotted call targets that block the calling thread, with the hint the
#: finding message carries.
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "await the injected sleep (or asyncio.sleep) instead",
    "open": "do file I/O outside the loop or via a worker thread",
    "io.open": "do file I/O outside the loop or via a worker thread",
    "socket.socket": "use asyncio.open_connection / start_server",
    "socket.create_connection": "use asyncio.open_connection",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
}

#: Method names that are synchronous file I/O regardless of the object
#: (``Path.read_text`` and friends).
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_statements(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk the coroutine body without descending into nested functions."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register(ASYNC_BLOCKING)
def check_async_blocking(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_serve_scope(ctx.relpath):
        return
    for func in ast.walk(module):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _own_statements(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            hint = _BLOCKING_CALLS.get(dotted) if dotted is not None else None
            if hint is not None:
                yield ctx.finding(
                    ASYNC_BLOCKING, node,
                    f"'{dotted}(...)' blocks the event loop inside async "
                    f"def '{func.name}'; {hint}",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield ctx.finding(
                    ASYNC_BLOCKING, node,
                    f"'.{node.func.attr}(...)' does synchronous file I/O "
                    f"inside async def '{func.name}'; move it off the loop",
                )
