"""Determinism rules.

The simulator's contract is bit-for-bit repeatability under a fixed seed
(the determinism regression test in ``tests/test_determinism.py`` pins
it). Two rules guard the code paths that contract depends on, confined to
the configured ``determinism-paths`` (``memsim`` and ``ssb`` here):

* **SIM101 unseeded-random** — entropy or wall-clock leaking into a
  simulation: ``np.random.default_rng()`` with no seed, the seeded-by-
  nobody module-level ``random.*`` functions, ``time.time()`` /
  ``perf_counter()`` / ``monotonic()``, and ``datetime.now()``.
* **SIM102 set-iteration** — iterating a ``set``/``frozenset`` directly.
  Python's set order varies with insertion history and hash seeding, so a
  set feeding results must be sorted first. (Dict iteration is fine:
  insertion order is guaranteed.)
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

UNSEEDED_RANDOM = Rule(
    code="SIM101",
    name="unseeded-random",
    summary="unseeded RNG or wall-clock read inside a simulation path",
)

SET_ITERATION = Rule(
    code="SIM102",
    name="set-iteration",
    summary="iteration over an unordered set inside a simulation path",
)

#: ``random.<fn>`` module-level functions that mutate/read global RNG state.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "lognormvariate", "normalvariate", "paretovariate", "randbytes", "randint",
    "random", "randrange", "sample", "seed", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: ``time.<fn>`` reads that differ between runs.
_CLOCK_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _clock_message(dotted: str) -> str | None:
    head, _, tail = dotted.rpartition(".")
    if head in ("time",) and tail in _CLOCK_FNS:
        return f"'{dotted}()' reads the wall clock"
    if tail in ("now", "utcnow") and head.split(".")[-1] == "datetime":
        return f"'{dotted}()' reads the wall clock"
    return None


@register(UNSEEDED_RANDOM)
def check_unseeded_random(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_determinism_scope(ctx.relpath):
        return
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        tail = dotted.rpartition(".")[2]
        if tail == "default_rng" and not node.args and not node.keywords:
            yield ctx.finding(
                UNSEEDED_RANDOM, node,
                "'default_rng()' without a seed draws OS entropy; thread the "
                "simulation seed through (e.g. np.random.default_rng(config.seed))",
            )
            continue
        head = dotted.rpartition(".")[0]
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            yield ctx.finding(
                UNSEEDED_RANDOM, node,
                f"'{dotted}()' uses the process-global RNG; use a seeded "
                "np.random.Generator owned by the simulation instead",
            )
            continue
        clock = _clock_message(dotted)
        if clock is not None:
            yield ctx.finding(
                UNSEEDED_RANDOM, node,
                f"{clock}; simulated time must come from the simulation clock, "
                "and measured time must stay out of result dicts",
            )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register(SET_ITERATION)
def check_set_iteration(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_determinism_scope(ctx.relpath):
        return
    for node in ast.walk(module):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                yield ctx.finding(
                    SET_ITERATION, it,
                    "iterating a set feeds its nondeterministic order into the "
                    "simulation; wrap it in sorted(...)",
                    fix=ctx.fix_for(it, f"sorted({ast.unparse(it)})"),
                )
