"""Vectorization rules.

The batched kernels in :mod:`repro.memsim.kernels` exist to replace
per-element Python with NumPy array expressions, and the columnar result
path exists to keep whole sweeps structure-of-arrays from kernel to
consumer; scalar loops or per-point object churn creeping back into
those modules silently erode the speedup the vector backend promises.
Two rules guard the hot paths, confined to the configured
``vector-paths`` (the kernels, the DES engines, and the sweep layer):

* **SIM106 scalar-loop-over-array** — an element-wise Python loop where
  an array expression would do: a ``for`` iterating a NumPy array (or
  ``range(len(arr))`` over one, or a ``np.*`` call result), a ``while``
  whose condition indexes into an array, and ``list.pop(0)`` inside a
  loop body (O(n) per removal — ``collections.deque.popleft()`` is O(1);
  the engine's retirement queue regression in
  ``tests/memsim/test_engine_retirement.py`` pins the fix).
* **SIM108 point-materialization** — per-point result materialization
  on a column batch inside a loop or comprehension: iterating a
  :class:`~repro.memsim.kernels.ResultColumns` batch (or its
  ``.views()``) row-by-row, or calling ``.view()``/``.views()`` on one
  inside a loop body. Each view constructs a ``BandwidthResult`` — the
  ~4.7 µs/point floor the columnar refactor removed. Read the columns
  (``gbps``, ``total_gbps()``, ``point_total_gbps()``) or move rows
  with ``append_from``/``extend`` instead; a single ``.views()`` at an
  API boundary (outside any loop) is the sanctioned escape hatch.

Array-ness and batch-ness are inferred locally and conservatively: a
name counts as a NumPy array only when the module assigns it from a
``np.*``/``numpy.*`` call, and as a column batch only when assigned
from one of the known batch producers (``ResultColumns(...)``,
``from_results``, ``evaluate_batch_columns``, ``evaluate_grid_columns``,
``run_columns``, ...). Loops the kernels legitimately need (per-stream
setup, fixed-point iteration over epochs) iterate plain Python
structures and never match; a reasoned exception belongs in the simlint
baseline or behind a suppression comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

SCALAR_LOOP = Rule(
    code="SIM106",
    name="scalar-loop-over-array",
    summary="element-wise Python loop over a NumPy array in a kernel path",
)

POINT_MATERIALIZATION = Rule(
    code="SIM108",
    name="point-materialization",
    summary="per-point result materialization on a columnar batch path",
)

#: Call names that produce a ``ResultColumns`` batch, mapped to which
#: assignment target receives the batch: ``None`` for a plain
#: ``batch = producer(...)``, else the tuple-unpack index of the batch
#: (``evaluate_batch_columns`` returns ``(columns, emit)``;
#: ``run_columns``/``run_grid_columns``/``_vector_columns`` return
#: ``(labels, columns)``).
_BATCH_PRODUCERS: dict[str, int | None] = {
    "ResultColumns": None,
    "from_results": None,
    "assemble": None,
    "evaluate_grid_columns": None,
    "evaluate_batch_columns": 0,
    "evaluate_points_columns": 0,
    "run_columns": -1,
    "run_grid_columns": -1,
    "_vector_columns": -1,
}

#: Heads recognised as the NumPy module in dotted call targets.
_NP_HEADS = ("np", "numpy")


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_numpy_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted is not None and dotted.split(".")[0] in _NP_HEADS


def _array_names(module: ast.Module) -> frozenset[str]:
    """Names assigned from a ``np.*`` call anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(module):
        value: ast.expr | None
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            value, targets = node.value, [node.target]
        else:
            continue
        if value is None or not _is_numpy_call(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _is_range_len_of(node: ast.expr, arrays: frozenset[str]) -> bool:
    """``range(len(arr))`` where ``arr`` is a tracked array name."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return False
    if node.func.id != "range" or len(node.args) != 1:
        return False
    inner = node.args[0]
    return (
        isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Name)
        and inner.func.id == "len"
        and len(inner.args) == 1
        and isinstance(inner.args[0], ast.Name)
        and inner.args[0].id in arrays
    )


def _subscripted_arrays(node: ast.expr, arrays: frozenset[str]) -> Iterator[str]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in arrays
        ):
            yield sub.value.id


def _pop_zero_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """``something.pop(0)`` calls anywhere under ``body``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                yield node


@register(SCALAR_LOOP)
def check_scalar_loop(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_vector_scope(ctx.relpath):
        return
    arrays = _array_names(module)
    seen_pops: set[ast.Call] = set()
    for node in ast.walk(module):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if isinstance(it, ast.Name) and it.id in arrays:
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"loop iterates NumPy array '{it.id}' element-wise; "
                    "replace the loop body with an array expression",
                )
            elif _is_range_len_of(it, arrays):
                name = it.args[0].args[0].id  # type: ignore[attr-defined]
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"loop indexes NumPy array '{name}' element-wise via "
                    "range(len(...)); replace with an array expression",
                )
            elif _is_numpy_call(it):
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    "loop iterates a NumPy call result element-wise; "
                    "replace the loop body with an array expression",
                )
        elif isinstance(node, ast.While):
            for name in _subscripted_arrays(node.test, arrays):
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"while-loop steps through NumPy array '{name}' one "
                    "element per iteration; replace with an array expression",
                )
                break
        else:
            continue
        for call in _pop_zero_calls(node.body + getattr(node, "orelse", [])):
            if call in seen_pops:
                continue
            seen_pops.add(call)
            yield ctx.finding(
                SCALAR_LOOP, call,
                "'.pop(0)' inside a loop shifts the whole list each "
                "iteration (O(n^2) drain); use collections.deque.popleft()",
            )


def _batch_names(module: ast.Module) -> frozenset[str]:
    """Names assigned from a known column-batch producer call."""
    names: set[str] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        dotted = _dotted(value.func)
        if dotted is None:
            continue
        position = _BATCH_PRODUCERS.get(dotted.split(".")[-1], "absent")
        if position == "absent":
            continue
        for target in targets:
            if position is None and isinstance(target, ast.Name):
                names.add(target.id)
            elif (
                position is not None
                and isinstance(target, ast.Tuple)
                and isinstance(position, int)
                and -len(target.elts) <= position < len(target.elts)
                and isinstance(target.elts[position], ast.Name)
            ):
                names.add(target.elts[position].id)  # type: ignore[attr-defined]
    return frozenset(names)


def _view_calls(nodes: list[ast.AST], batches: frozenset[str]) -> Iterator[ast.Call]:
    """``batch.view(...)`` / ``batch.views()`` calls anywhere under ``nodes``."""
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("view", "views")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in batches
            ):
                yield node


_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@register(POINT_MATERIALIZATION)
def check_point_materialization(
    module: ast.Module, ctx: FileContext
) -> Iterator[Finding]:
    if not ctx.config.in_vector_scope(ctx.relpath):
        return
    batches = _batch_names(module)
    if not batches:
        return
    seen: set[ast.Call] = set()
    for node in ast.walk(module):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if isinstance(it, ast.Name) and it.id in batches:
                yield ctx.finding(
                    POINT_MATERIALIZATION, node,
                    f"loop iterates column batch '{it.id}' row-by-row; "
                    "read the columns (total_gbps(), gbps) or move rows "
                    "with append_from/extend instead",
                )
            elif (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr == "views"
                and isinstance(it.func.value, ast.Name)
                and it.func.value.id in batches
            ):
                seen.add(it)
                yield ctx.finding(
                    POINT_MATERIALIZATION, node,
                    f"loop materializes every point of column batch "
                    f"'{it.func.value.id}' via .views(); read the columns "
                    "directly and keep views for the API boundary",
                )
            body: list[ast.AST] = list(node.body + node.orelse)
        elif isinstance(node, ast.While):
            body = list(node.body + node.orelse)
        elif isinstance(node, _COMPREHENSIONS):
            body = [node]
        else:
            continue
        for call in _view_calls(body, batches):
            if call in seen:
                continue
            seen.add(call)
            target = call.func.value.id  # type: ignore[attr-defined]
            yield ctx.finding(
                POINT_MATERIALIZATION, call,
                f"'.{call.func.attr}()' on column batch '{target}' inside "  # type: ignore[attr-defined]
                "a loop materializes per-point results; read "
                "point_total_gbps()/gbps or hoist the materialization to "
                "the API boundary",
            )
