"""Vectorization rule.

The batched kernels in :mod:`repro.memsim.kernels` exist to replace
per-element Python with NumPy array expressions; a scalar loop creeping
back into those modules silently erodes the speedup the vector backend
promises. One rule guards the hot paths, confined to the configured
``vector-paths`` (the kernels and the DES engines here):

* **SIM106 scalar-loop-over-array** — an element-wise Python loop where
  an array expression would do: a ``for`` iterating a NumPy array (or
  ``range(len(arr))`` over one, or a ``np.*`` call result), a ``while``
  whose condition indexes into an array, and ``list.pop(0)`` inside a
  loop body (O(n) per removal — ``collections.deque.popleft()`` is O(1);
  the engine's retirement queue regression in
  ``tests/memsim/test_engine_retirement.py`` pins the fix).

Array-ness is inferred locally and conservatively: a name counts as a
NumPy array only when the module assigns it from a ``np.*``/``numpy.*``
call. Loops the kernels legitimately need (per-stream setup, fixed-point
iteration over epochs) iterate plain Python structures and never match;
a reasoned exception belongs in the simlint baseline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

SCALAR_LOOP = Rule(
    code="SIM106",
    name="scalar-loop-over-array",
    summary="element-wise Python loop over a NumPy array in a kernel path",
)

#: Heads recognised as the NumPy module in dotted call targets.
_NP_HEADS = ("np", "numpy")


def _dotted(node: ast.expr) -> str | None:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_numpy_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted is not None and dotted.split(".")[0] in _NP_HEADS


def _array_names(module: ast.Module) -> frozenset[str]:
    """Names assigned from a ``np.*`` call anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(module):
        value: ast.expr | None
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            value, targets = node.value, [node.target]
        else:
            continue
        if value is None or not _is_numpy_call(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _is_range_len_of(node: ast.expr, arrays: frozenset[str]) -> bool:
    """``range(len(arr))`` where ``arr`` is a tracked array name."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return False
    if node.func.id != "range" or len(node.args) != 1:
        return False
    inner = node.args[0]
    return (
        isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Name)
        and inner.func.id == "len"
        and len(inner.args) == 1
        and isinstance(inner.args[0], ast.Name)
        and inner.args[0].id in arrays
    )


def _subscripted_arrays(node: ast.expr, arrays: frozenset[str]) -> Iterator[str]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in arrays
        ):
            yield sub.value.id


def _pop_zero_calls(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """``something.pop(0)`` calls anywhere under ``body``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                yield node


@register(SCALAR_LOOP)
def check_scalar_loop(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if not ctx.config.in_vector_scope(ctx.relpath):
        return
    arrays = _array_names(module)
    seen_pops: set[ast.Call] = set()
    for node in ast.walk(module):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if isinstance(it, ast.Name) and it.id in arrays:
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"loop iterates NumPy array '{it.id}' element-wise; "
                    "replace the loop body with an array expression",
                )
            elif _is_range_len_of(it, arrays):
                name = it.args[0].args[0].id  # type: ignore[attr-defined]
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"loop indexes NumPy array '{name}' element-wise via "
                    "range(len(...)); replace with an array expression",
                )
            elif _is_numpy_call(it):
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    "loop iterates a NumPy call result element-wise; "
                    "replace the loop body with an array expression",
                )
        elif isinstance(node, ast.While):
            for name in _subscripted_arrays(node.test, arrays):
                yield ctx.finding(
                    SCALAR_LOOP, node,
                    f"while-loop steps through NumPy array '{name}' one "
                    "element per iteration; replace with an array expression",
                )
                break
        else:
            continue
        for call in _pop_zero_calls(node.body + getattr(node, "orelse", [])):
            if call in seen_pops:
                continue
            seen_pops.add(call)
            yield ctx.finding(
                SCALAR_LOOP, call,
                "'.pop(0)' inside a loop shifts the whole list each "
                "iteration (O(n^2) drain); use collections.deque.popleft()",
            )
