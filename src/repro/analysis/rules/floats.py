"""Float-hygiene rule.

**SIM107 float-equality** — ``==`` / ``!=`` where either side is visibly a
float: a float literal, a ``float(...)`` call, or a true division. The
simulator accumulates service times as floats, so exact comparison is a
latent bug even when it happens to work today (the seed tree's
``media_bytes == 0.0`` comparisons only held because one branch assigned
the literal ``0.0``). Use ``math.isclose``, an epsilon, or an ordered
comparison (``<= 0.0``) instead.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

FLOAT_EQUALITY = Rule(
    code="SIM107",
    name="float-equality",
    summary="exact == / != comparison on a float expression",
)


def _floatish(node: ast.expr) -> bool:
    """Whether ``node`` is syntactically certain to produce a float."""
    if isinstance(node, ast.Constant):
        return type(node.value) is float
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields a float
        return _floatish(node.left) or _floatish(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@register(FLOAT_EQUALITY)
def check_float_equality(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _floatish(left) or _floatish(right)
            ):
                yield ctx.finding(
                    FLOAT_EQUALITY, node,
                    f"exact float comparison {ast.unparse(node)!r}; use "
                    "math.isclose, an epsilon, or an ordered comparison",
                )
                break
            left = right
