"""Rule modules; importing this package populates the checker registry."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    async_io,
    determinism,
    docstrings,
    exceptions,
    floats,
    hoisting,
    obs,
    purity,
    transport,
    units,
    vectorization,
)
