"""Unit-safety rules.

The package-wide convention (see :mod:`repro.units`) is: sizes are integer
bytes built from ``KIB``/``MIB``/``GIB``, bandwidths are decimal-GB/s
floats, times are float seconds. Two rules police it:

* **SIM001 unit-literal** — magic byte/bandwidth/latency literals
  (``1024**3``, ``1 << 20``, ``1e9``, ``10e-9``, ...) outside the files
  that define the unit vocabulary. A bare ``1024`` is deliberately *not*
  flagged: the paper's access-size sweeps legitimately enumerate
  ``(64, 256, 1024, 4096, ...)`` byte sizes.
* **SIM002 unit-mix** — arithmetic that combines a byte-count identifier
  with a GB/s identifier directly (e.g. ``chunk_bytes / rate_gbps``),
  which is off by 1e9 unless routed through :func:`repro.units.gbps` /
  :func:`repro.units.seconds_for` or an explicit ``* GB`` rescale.
"""

from __future__ import annotations

import ast
import math
import re
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register
from repro.units import GB, GIB, MIB, MS, NS, TIB, US

UNIT_LITERAL = Rule(
    code="SIM001",
    name="unit-literal",
    summary="magic size/bandwidth/latency literal outside the unit-definition files",
)

UNIT_MIX = Rule(
    code="SIM002",
    name="unit-mix",
    summary="byte quantity combined with a GB/s quantity without a units helper",
)

#: Replacement hint per magic value.
_INT_SUGGESTIONS = {
    MIB: "units.MIB",
    GIB: "units.GIB",
    TIB: "units.TIB",
    GB: "units.GB",
}
_FLOAT_SUGGESTIONS = {
    float(GB): "units.GB",
    MS: "units.MS",
    US: "units.US",
}

#: Exponents of 2 that correspond to the binary size constants.
_POW2_EXPONENTS = {10, 20, 30, 40}


def _magic_float(value: float) -> str | None:
    """Suggestion for a magic float literal, or ``None`` if it is fine."""
    if value in _FLOAT_SUGGESTIONS:
        return _FLOAT_SUGGESTIONS[value]
    # Nanosecond-scale latencies written as raw floats: 1e-9 .. 1000e-9
    # with an integral nanosecond count (catches 10e-9, 500e-9, ...).
    if NS <= value <= 1000 * NS:
        nanos = value / NS
        if math.isclose(nanos, round(nanos), rel_tol=1e-12):
            return f"{round(nanos)} * units.NS"
    return None


def _magic_binop(node: ast.BinOp) -> str | None:
    """Suggestion for ``1024**k`` / ``2**k`` / ``1 << k`` shapes."""
    left, right = node.left, node.right
    if not isinstance(left, ast.Constant) or not isinstance(right, ast.Constant):
        return None
    if isinstance(node.op, ast.Pow) and left.value == 1024 and right.value in (2, 3, 4):
        return {2: "units.MIB", 3: "units.GIB", 4: "units.TIB"}[right.value]
    if isinstance(node.op, ast.Pow) and left.value == 2 and right.value in _POW2_EXPONENTS:
        exponent = right.value
    elif isinstance(node.op, ast.Pow) and left.value == 10 and right.value == 9:
        return "units.GB"
    elif isinstance(node.op, ast.LShift) and left.value == 1 and (
        isinstance(right.value, int) and right.value >= 10
    ):
        exponent = right.value
    else:
        return None
    value = 1 << exponent
    for base_exp, name in ((10, "units.KIB"), (20, "units.MIB"),
                           (30, "units.GIB"), (40, "units.TIB")):
        if exponent == base_exp:
            return name
        if exponent > base_exp and exponent - base_exp < 10:
            return f"{1 << (exponent - base_exp)} * {name}"
    return f"{value} bytes via the units module"


#: Import the SIM001 autofix replacements rely on.
_UNITS_IMPORT = "from repro import units"


#: Drop-in suggestion shapes: ``units.GIB`` or ``4 * units.MIB``. Prose
#: suggestions ("... bytes via the units module") have no rewrite.
_FIXABLE_SUGGESTION_RE = re.compile(r"^(\d+ \* )?units\.[A-Z]+$")


def _suggestion_fix(ctx: FileContext, node: ast.AST, suggestion: str):
    """A :class:`Fix` when the suggestion is a drop-in expression.

    Multi-token replacements are parenthesised so they bind at least as
    tightly as the literal they replace (``x / 500e-9`` must become
    ``x / (500 * units.NS)``, not ``x / 500 * units.NS``).
    """
    if _FIXABLE_SUGGESTION_RE.match(suggestion) is None:
        return None
    replacement = f"({suggestion})" if " " in suggestion else suggestion
    return ctx.fix_for(node, replacement, adds_import=_UNITS_IMPORT)


@register(UNIT_LITERAL)
def check_unit_literals(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    if ctx.config.is_unit_literal_file(ctx.relpath):
        return
    flagged_constants: set[tuple[int, int]] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.BinOp):
            suggestion = _magic_binop(node)
            if suggestion is not None:
                # Remember the operand constants so they are not re-flagged
                # individually (1024**3 contains no magic leaf, but 10**9's
                # folded value would otherwise double-report).
                for leaf in (node.left, node.right):
                    flagged_constants.add((leaf.lineno, leaf.col_offset))
                yield ctx.finding(
                    UNIT_LITERAL, node,
                    f"magic unit expression {ast.unparse(node)!r}; "
                    f"use {suggestion} from repro.units",
                    fix=_suggestion_fix(ctx, node, suggestion),
                )
    for node in ast.walk(module):
        if not isinstance(node, ast.Constant):
            continue
        if (node.lineno, node.col_offset) in flagged_constants:
            continue
        suggestion: str | None = None
        if type(node.value) is int and node.value in _INT_SUGGESTIONS:
            suggestion = _INT_SUGGESTIONS[node.value]
        elif type(node.value) is float:
            suggestion = _magic_float(node.value)
        if suggestion is not None:
            yield ctx.finding(
                UNIT_LITERAL, node,
                f"magic unit literal {node.value!r}; use {suggestion} "
                "from repro.units",
                fix=_suggestion_fix(ctx, node, suggestion),
            )


#: Identifier shapes for "this is an integer byte count".
_SIZE_RE = re.compile(r"(^|_)(bytes|size|capacity|footprint)($|_)|_bytes$")
#: Identifier shapes for "this is a decimal-GB/s bandwidth".
_BANDWIDTH_RE = re.compile(r"gbps|bandwidth|(^|_)bw($|_)")


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a bare ``Name``/``Attribute`` operand ends in."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register(UNIT_MIX)
def check_unit_mix(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if not isinstance(node, ast.BinOp):
            continue
        if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Add, ast.Sub)):
            continue
        left = _terminal_name(node.left)
        right = _terminal_name(node.right)
        if left is None or right is None:
            continue
        pairs = ((left, right), (right, left)) if not isinstance(
            node.op, (ast.Div, ast.FloorDiv)
        ) else ((left, right),)
        for size_name, bw_name in pairs:
            if _SIZE_RE.search(size_name) and _BANDWIDTH_RE.search(bw_name):
                yield ctx.finding(
                    UNIT_MIX, node,
                    f"{ast.unparse(node)!r} mixes a byte count ({size_name}) "
                    f"with a GB/s bandwidth ({bw_name}); use units.gbps() / "
                    "units.seconds_for() or rescale with units.GB explicitly",
                )
                break
