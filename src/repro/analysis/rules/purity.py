"""Purity rule.

The pure-core refactor (DESIGN.md §4) makes every evaluation a function
of ``(MachineConfig, streams, DirectoryState)`` so results can be
memoized and fanned out across threads. That contract breaks silently if
a simulation module keeps *mutable* state at module or class level: a
list or dict shared across evaluations turns cache keys into lies and
makes parallel sweeps order-dependent.

* **SIM103 mutable-shared-state** — a module-level or class-level
  assignment whose value is a mutable container (``list``/``dict``/
  ``set`` literal or comprehension, or a bare ``list()``/``dict()``/
  ``set()``/``bytearray()`` call) inside the configured determinism
  paths. Use a tuple/frozenset/``MappingProxyType`` instead, or move the
  container into the function that needs it. Dunder names (``__all__``)
  are exempt, as are annotation-only declarations with no value.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

MUTABLE_SHARED_STATE = Rule(
    code="SIM103",
    name="mutable-shared-state",
    summary="mutable module- or class-level container inside a simulation path",
)

#: Constructor calls that build an (empty or filled) mutable container.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _mutable_container(node: ast.expr | None) -> str | None:
    """The container kind if ``node`` builds a mutable container, else None."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in _MUTABLE_CONSTRUCTORS:
            return node.func.id
    return None


def _target_names(node: ast.stmt) -> list[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _scope_findings(
    body: list[ast.stmt], scope: str, prefix: str, ctx: FileContext
) -> Iterator[Finding]:
    for stmt in body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        kind = _mutable_container(stmt.value)
        if kind is None:
            continue
        names = _target_names(stmt)
        if names and all(_is_dunder(name) for name in names):
            continue
        label = ", ".join(prefix + name for name in names) or "<target>"
        yield ctx.finding(
            MUTABLE_SHARED_STATE, stmt,
            f"{scope} '{label}' is a mutable {kind} shared across "
            "evaluations; use a tuple/frozenset/immutable mapping, or build "
            "the container inside the function that uses it",
        )


@register(MUTABLE_SHARED_STATE)
def check_mutable_shared_state(
    module: ast.Module, ctx: FileContext
) -> Iterator[Finding]:
    if not ctx.config.in_determinism_scope(ctx.relpath):
        return
    yield from _scope_findings(module.body, "module-level", "", ctx)
    for node in ast.walk(module):
        if isinstance(node, ast.ClassDef):
            yield from _scope_findings(
                node.body, "class-level", f"{node.name}.", ctx
            )
