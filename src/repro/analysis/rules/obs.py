"""Observability naming rule.

* **SIM104 counter-name** — string literals passed to ``.incr(...)`` /
  ``.observe(...)`` must follow the counter catalogue convention
  (:mod:`repro.obs.catalog`): at least two dotted ``lower_snake``
  segments with a unit suffix (``_bytes``, ``_count``, ``_seconds``,
  ``_ratio``, ``_gbps``). A misspelt unit suffix silently forks a
  counter — the golden tests would pin the typo, and the report renderer
  would scale it wrongly — so the name is checked where it is written.

Only literal first arguments are checked: dynamically built names
(f-strings such as the per-DIMM counters) cannot be validated
statically and are instead validated at runtime by the obs test suite.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register
from repro.obs.catalog import validate_name

COUNTER_NAME = Rule(
    code="SIM104",
    name="counter-name",
    summary="recorder counter name violates the dotted lower_snake + unit-suffix convention",
)

#: Recorder methods whose first argument is a catalogue-governed name.
_COUNTER_METHODS = frozenset({"incr", "observe"})

#: Near-miss unit suffixes with their canonical spelling: the typo class
#: SIM104 can fix mechanically (anything else needs a human to decide
#: what the counter actually measures).
_SUFFIX_TYPOS = {
    "byte": "bytes",
    "counts": "count",
    "cnt": "count",
    "num": "count",
    "sec": "seconds",
    "secs": "seconds",
    "second": "seconds",
    "ratios": "ratio",
    "gb_s": "gbps",
    "gbit": "gbps",
}


def _typo_fix(ctx: FileContext, node: ast.Constant):
    """A rewrite for a misspelt unit suffix, when one clearly applies."""
    segments = node.value.split(".")
    last = segments[-1]
    for typo, canonical in _SUFFIX_TYPOS.items():
        if last == typo or last.endswith(f"_{typo}"):
            fixed_last = canonical if last == typo else (
                last[: -len(typo)] + canonical
            )
            fixed = ".".join((*segments[:-1], fixed_last))
            if validate_name(fixed) is None:
                return ctx.fix_for(node, repr(fixed))
    return None


@register(COUNTER_NAME)
def check_counter_names(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _COUNTER_METHODS:
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            continue
        reason = validate_name(first.value)
        if reason is not None:
            yield ctx.finding(
                COUNTER_NAME, first,
                f"counter name {first.value!r} {reason}; expected "
                "dotted.lower_snake segments ending in a unit suffix "
                "(_bytes, _count, _seconds, _ratio, _gbps)",
                fix=_typo_fix(ctx, first),
            )
