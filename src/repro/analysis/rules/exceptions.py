"""Exception-hygiene rules.

The package promises callers a single catchable root
(:class:`repro.errors.ReproError`). Three rules keep error handling
honest:

* **SIM301 bare-except** — ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit`` too; name the exception.
* **SIM302 silent-except** — a handler whose entire body is ``pass``
  swallows failures invisibly; at minimum record why ignoring is safe
  (and suppress the finding on that line).
* **SIM303 foreign-raise** — library code raising exception types outside
  the :mod:`repro.errors` taxonomy (plus the idiomatic builtins in
  ``allowed-raises``: ``KeyError`` from mappings, ``AttributeError`` from
  ``__getattr__``, ...). Callers can only rely on ``except ReproError``
  if the library keeps this discipline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

import repro.errors as _errors
from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register
from repro.errors import ReproError

BARE_EXCEPT = Rule(
    code="SIM301",
    name="bare-except",
    summary="bare 'except:' clause",
)

SILENT_EXCEPT = Rule(
    code="SIM302",
    name="silent-except",
    summary="exception handler that silently passes",
)

FOREIGN_RAISE = Rule(
    code="SIM303",
    name="foreign-raise",
    summary="raises an exception type outside the repro.errors taxonomy",
)

#: Names of the taxonomy classes, derived from the module so the rule can
#: never drift out of sync with ``errors.py``.
_TAXONOMY = frozenset(
    name
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
)


@register(BARE_EXCEPT)
def check_bare_except(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.finding(
                BARE_EXCEPT, node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "catch a named exception (ReproError for library failures)",
            )


@register(SILENT_EXCEPT)
def check_silent_except(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if isinstance(node, ast.ExceptHandler) and all(
            isinstance(stmt, ast.Pass) for stmt in node.body
        ):
            yield ctx.finding(
                SILENT_EXCEPT, node,
                "handler swallows the exception with 'pass'; handle it, "
                "re-raise as a ReproError, or justify with a suppression",
            )


def _raised_name(node: ast.Raise) -> str | None:
    """Class name of the raised exception, when statically visible."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        # ``raise exc`` re-raising a caught variable is out of scope; only
        # CamelCase names are treated as class references.
        return exc.id if exc.id[:1].isupper() else None
    return None


@register(FOREIGN_RAISE)
def check_foreign_raise(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    allowed = _TAXONOMY | set(ctx.config.allowed_raises)
    for node in ast.walk(module):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        name = _raised_name(node)
        if name is not None and name not in allowed:
            yield ctx.finding(
                FOREIGN_RAISE, node,
                f"raises {name}, which is outside the repro.errors taxonomy; "
                "use a ReproError subclass so 'except ReproError' stays "
                "sufficient for callers",
            )
