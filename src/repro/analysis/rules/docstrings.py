"""Docstring/units-contract rule.

**SIM401 units-docstring** — a public function whose *name* advertises a
physical quantity (``..._seconds``, ``..._gbps``, ``bandwidth...``,
``..._bytes``, ``latency``, ``duration``) is an API boundary where unit
mistakes are made. Its docstring must therefore say which unit the value
is in — "GB/s", "seconds", "bytes", "ns", ... — so callers never have to
guess between binary and decimal, or between seconds and nanoseconds.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import FileContext, register

UNITS_DOCSTRING = Rule(
    code="SIM401",
    name="units-docstring",
    summary="public quantity-returning function whose docstring names no unit",
)

#: Function names that advertise a physical quantity.
_QUANTITY_NAME_RE = re.compile(
    r"gbps|bandwidth|latency|duration|(^|_)seconds($|_)|_bytes$|_ns$|_nanos$"
)

#: Words that count as naming a unit (checked case-insensitively).
_UNIT_WORDS = (
    "gb/s", "gbps", "gib/s", "mb/s", "b/s",
    "second", "millisecond", "microsecond", "nanosecond", " ns", "(ns)",
    "byte", "kib", "mib", "gib", "tib",
)


def _mentions_unit(docstring: str) -> bool:
    lowered = docstring.lower()
    return any(word in lowered for word in _UNIT_WORDS)


@register(UNITS_DOCSTRING)
def check_units_docstring(module: ast.Module, ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(module):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        if not _QUANTITY_NAME_RE.search(node.name):
            continue
        docstring = ast.get_docstring(node)
        if docstring is None:
            yield ctx.finding(
                UNITS_DOCSTRING, node,
                f"public function '{node.name}' returns a physical quantity "
                "but has no docstring; document the unit (GB/s, seconds, bytes)",
            )
        elif not _mentions_unit(docstring):
            yield ctx.finding(
                UNITS_DOCSTRING, node,
                f"docstring of '{node.name}' never names the unit of the "
                "quantity it deals in; say GB/s, seconds, bytes, ns, ...",
            )
