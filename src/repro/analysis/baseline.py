"""The baseline of grandfathered findings.

The baseline lets the analyzer gate *new* violations without requiring
every historical one to be fixed first. It is a checked-in JSON file; each
entry records the finding's path, rule, exact source snippet, and a
human-written ``reason`` explaining why the finding is accepted rather
than fixed. Matching is by ``(path, rule, snippet)`` — deliberately not by
line number, so baselined findings survive unrelated edits — and is
count-aware: two identical violations need two entries.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.finding import Finding
from repro.errors import AnalysisError

_VERSION = 1


@dataclass
class Baseline:
    """A multiset of accepted findings keyed like ``Finding.baseline_key``."""

    entries: list[dict[str, str]] = field(default_factory=list)

    @staticmethod
    def _key(entry: dict[str, str]) -> tuple[str, str, str]:
        return (entry["path"], entry["rule"], entry["snippet"])

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a baseline file, validating its schema."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise AnalysisError(
                f"baseline {path} has unsupported format (want version {_VERSION})"
            )
        entries = data.get("entries", [])
        for entry in entries:
            missing = {"path", "rule", "snippet"} - set(entry)
            if missing:
                raise AnalysisError(
                    f"baseline {path}: entry {entry!r} missing {sorted(missing)}"
                )
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding], reason: str) -> Baseline:
        """Build a baseline accepting ``findings``, all with one ``reason``.

        Used by ``--write-baseline``; the expectation is that the reasons
        are then edited by hand to justify each entry individually.
        """
        return cls(entries=[
            {
                "path": finding.path,
                "rule": finding.rule,
                "snippet": finding.snippet,
                "reason": reason,
            }
            for finding in findings
        ])

    def save(self, path: Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {"version": _VERSION, "entries": self.entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, baselined).

        Count-aware: each baseline entry absorbs at most one finding with
        its key, in file order.
        """
        budget = Counter(self._key(entry) for entry in self.entries)
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in findings:
            if budget[finding.baseline_key] > 0:
                budget[finding.baseline_key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def stale_entries(self, findings: list[Finding]) -> list[dict[str, str]]:
        """Baseline entries no longer matched by any finding.

        Stale entries are reported (so the baseline shrinks over time) but
        are not an error: a fix landing should not require a lockstep
        baseline edit to keep CI green.
        """
        present = Counter(finding.baseline_key for finding in findings)
        stale: list[dict[str, str]] = []
        for entry in self.entries:
            key = self._key(entry)
            if present[key] > 0:
                present[key] -= 1
            else:
                stale.append(entry)
        return stale
