"""``repro.analysis`` — "simlint", a repo-specific static-analysis pass.

The reproduction's numbers are only trustworthy if two invariants hold
everywhere in the tree:

* **unit safety** — sizes are integer bytes, bandwidths are decimal GB/s
  floats, times are float seconds (the conventions of :mod:`repro.units`),
  and every conversion between them goes through the helpers in that
  module rather than ad-hoc ``1024**3`` arithmetic;
* **determinism** — a simulation or SSB run with a fixed seed is
  bit-for-bit repeatable, which forbids unseeded RNGs, wall-clock reads,
  and set-ordering dependence inside the simulation paths.

Both used to live only in docstrings. This package enforces them (plus
float hygiene and exception hygiene) with a small linter built on the
stdlib :mod:`ast` module: a registry of checkers walks every module, each
emitting :class:`~repro.analysis.finding.Finding` records, which are then
filtered through per-line ``# simlint: ignore[rule]`` suppressions and a
checked-in baseline of grandfathered findings.

Entry points
------------
* ``python -m repro.analysis [paths]`` / ``repro lint`` — the CLI.
* :func:`run_analysis` — the same pass, in-process (used by the tier-1
  test ``tests/test_lint.py``).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import SimlintConfig, load_config
from repro.analysis.finding import Finding, Rule
from repro.analysis.registry import all_rules, checker_for, register
from repro.analysis.runner import AnalysisReport, analyze_file, run_analysis

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "SimlintConfig",
    "all_rules",
    "analyze_file",
    "checker_for",
    "load_config",
    "register",
    "run_analysis",
]
