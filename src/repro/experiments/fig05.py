"""Figure 5: read NUMA effects — near vs. cold far vs. warm far.

The first multi-threaded far traversal is capped by coherence-directory
remapping (~8 GB/s, best with only 4 threads); the second run jumps to
~33 GB/s; near reads hit the 40 GB/s device peak.

This is the one experiment that studies the *cold* path, so it threads
explicit :class:`DirectoryState` values through the evaluation service:
each thread count starts from :meth:`DirectoryState.cold`, and the
"2nd Far" series re-evaluates against the first run's
``directory_after`` — no model mutation anywhere.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, DirectoryState, Op, StreamSpec


THREADS = (1, 4, 8, 18, 24, 36)


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    config, service = model.config, model.service
    result = ExperimentResult(exp_id="fig5", title="Read NUMA effects")

    near = {str(t): model.sequential_read(t, 4096) for t in THREADS}
    cold = {}
    warm = {}
    for threads in THREADS:
        far_spec = StreamSpec(
            op=Op.READ, threads=threads, access_size=4096,
            issuing_socket=0, target_socket=1,
        )
        first = service.evaluate(config, (far_spec,), DirectoryState.cold())
        # Second run against the now-warm state (the paper's "2nd Far").
        second = service.evaluate(config, (far_spec,), first.directory_after)
        cold[str(threads)] = first.total_gbps
        warm[str(threads)] = second.total_gbps
    result.add_series("near", near)
    result.add_series("far (1st run)", cold)
    result.add_series("far (2nd run)", warm)

    result.compare("near peak", paperdata.READ_PEAK_GBPS, max(near.values()))
    result.compare(
        "cold far peak (Fig. 5: ~8 GB/s)",
        paperdata.READ_COLD_FAR_PEAK_GBPS,
        max(cold.values()),
    )
    best_cold = max(cold, key=cold.get)
    result.compare(
        "cold far optimal thread count (Fig. 5: 4)",
        paperdata.READ_COLD_FAR_BEST_THREADS,
        float(best_cold),
        unit="thr",
    )
    result.compare(
        "warm far bandwidth (Fig. 5: ~33 GB/s)",
        paperdata.READ_WARM_FAR_GBPS,
        max(warm.values()),
    )
    result.notes.append(
        "single-thread priming also warms the directory (verified in tests)"
    )
    return result
