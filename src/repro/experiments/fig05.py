"""Figure 5: read NUMA effects — near vs. cold far vs. warm far.

The first multi-threaded far traversal is capped by coherence-directory
remapping (~8 GB/s, best with only 4 threads); the second run jumps to
~33 GB/s; near reads hit the 40 GB/s device peak.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel


THREADS = (1, 4, 8, 18, 24, 36)


def run(model: BandwidthModel | None = None) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(exp_id="fig5", title="Read NUMA effects")

    near = {str(t): model.sequential_read(t, 4096) for t in THREADS}
    cold = {}
    warm = {}
    for threads in THREADS:
        model.reset_directory()
        cold[str(threads)] = model.sequential_read(threads, 4096, far=True, warm=False)
        # Second run on the now-warm directory (the paper's "2nd Far").
        warm[str(threads)] = model.sequential_read(threads, 4096, far=True, warm=False)
    result.add_series("near", near)
    result.add_series("far (1st run)", cold)
    result.add_series("far (2nd run)", warm)

    result.compare("near peak", paperdata.READ_PEAK_GBPS, max(near.values()))
    result.compare(
        "cold far peak (Fig. 5: ~8 GB/s)",
        paperdata.READ_COLD_FAR_PEAK_GBPS,
        max(cold.values()),
    )
    best_cold = max(cold, key=cold.get)
    result.compare(
        "cold far optimal thread count (Fig. 5: 4)",
        paperdata.READ_COLD_FAR_BEST_THREADS,
        float(best_cold),
        unit="thr",
    )
    result.compare(
        "warm far bandwidth (Fig. 5: ~33 GB/s)",
        paperdata.READ_WARM_FAR_GBPS,
        max(warm.values()),
    )
    result.notes.append(
        "single-thread priming also warms the directory (verified in tests)"
    )
    return result
