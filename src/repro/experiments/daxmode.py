"""Section 2.3: devdax vs. fsdax.

devdax is consistently 5-10% faster (no page faults, no page-cache);
a pre-faulted fsdax mapping matches devdax exactly; a cold 2 MB page
fault costs ~0.5 ms, so pre-faulting 1 GB takes at least 0.25 s.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, DaxMode
from repro.memsim.address import MappedRegion
from repro.units import GIB


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(exp_id="daxmode", title="devdax vs fsdax (§2.3)")

    devdax = {str(t): model.sequential_read(t, 4096) for t in (4, 8, 18, 36)}
    fsdax = {
        str(t): model.sequential_read(t, 4096, dax_mode=DaxMode.FSDAX)
        for t in (4, 8, 18, 36)
    }
    prefaulted = {
        str(t): model.sequential_read(
            t, 4096, dax_mode=DaxMode.FSDAX, prefaulted=True
        )
        for t in (4, 8, 18, 36)
    }
    result.add_series("devdax", devdax)
    result.add_series("fsdax", fsdax)
    result.add_series("fsdax (prefaulted)", prefaulted)

    advantage = devdax["18"] / fsdax["18"] - 1.0
    low, high = paperdata.DEVDAX_ADVANTAGE_RANGE
    result.compare(
        "devdax advantage (§2.3: 5-10%)",
        (low + high) / 2,
        advantage,
        unit="frac",
    )
    result.compare(
        "prefaulted fsdax matches devdax",
        1.0,
        prefaulted["18"] / devdax["18"],
        unit="x",
    )
    region = MappedRegion(size=GIB, dax_mode=DaxMode.FSDAX)
    result.compare(
        "pre-faulting 1 GB (§2.3: >= 0.25 s)",
        paperdata.PAGE_FAULT_SECONDS_PER_GIB,
        region.fault_cost(model.calibration.pmem.page_fault_cost),
        unit="s",
    )
    return result
