"""Registry of all reproduced experiments, keyed by figure/table id."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments import (
    bestpractices,
    daxmode,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    table1,
)
from repro.experiments.result import ExperimentResult


@dataclass(frozen=True)
class Experiment:
    """One reproduced figure/table of the paper."""

    exp_id: str
    title: str
    paper_section: str
    runner: Callable[..., ExperimentResult]


_EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("fig3", "Read bandwidth: access size x thread count", "3.1-3.2", fig03.run),
    Experiment("fig4", "Read bandwidth: thread pinning", "3.3", fig04.run),
    Experiment("fig5", "Read NUMA effects (near/far, cold/warm)", "3.4", fig05.run),
    Experiment("fig6", "Read from multiple sockets (PMEM/DRAM)", "3.5", fig06.run),
    Experiment("fig7", "Write bandwidth: access size x thread count", "4.1-4.2", fig07.run),
    Experiment("fig8", "Write bandwidth heatmap (boomerang)", "4.2", fig08.run),
    Experiment("fig9", "Write bandwidth: thread pinning", "4.3", fig09.run),
    Experiment("fig10", "Writing to multiple sockets", "4.4-4.5", fig10.run),
    Experiment("fig11", "Mixed read/write workloads", "5.1", fig11.run),
    Experiment("fig12", "Random read bandwidth (PMEM/DRAM)", "5.2", fig12.run),
    Experiment("fig13", "Random write bandwidth (PMEM/DRAM)", "5.2", fig13.run),
    Experiment("fig14", "Star Schema Benchmark (Hyrise/handcrafted)", "6", fig14.run),
    Experiment("table1", "Q2.1 optimization ladder + SSD contrast", "6.2", table1.run),
    Experiment("bestpractices", "The 7 best practices hold", "7", bestpractices.run),
    Experiment("daxmode", "devdax vs fsdax", "2.3", daxmode.run),
)

REGISTRY: dict[str, Experiment] = {e.exp_id: e for e in _EXPERIMENTS}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return REGISTRY[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {sorted(REGISTRY)}"
        ) from None


def run_experiment(exp_id: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by id (e.g. ``'fig7'``)."""
    return get_experiment(exp_id).runner(**kwargs)


def all_experiment_ids() -> list[str]:
    return [e.exp_id for e in _EXPERIMENTS]


def run_all(**kwargs: object) -> dict[str, ExperimentResult]:
    """Run every registered experiment (used by the report generator)."""
    return {e.exp_id: e.runner(**kwargs) for e in _EXPERIMENTS}
