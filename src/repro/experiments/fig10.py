"""Figure 10: writing to multiple sockets.

Near writes double across sockets (25 GB/s); far writes need more
threads, peak at half the near bandwidth (7 GB/s) and amplify up to 10x
internally; near+far writers on the same PMEM cap at ~8 GB/s.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, DirectoryState, Op, PinningPolicy, StreamSpec
from repro.workloads import MULTISOCKET_WRITE_LABELS, multisocket_write_scenarios


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    grid = multisocket_write_scenarios()
    values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
    result = ExperimentResult(exp_id="fig10", title="Writing data to multiple sockets")
    for label in MULTISOCKET_WRITE_LABELS:
        curve = {
            str(point.params["threads"]): values[point.label]
            for point in grid
            if point.params["scenario"] == label
        }
        result.add_series(label, curve)

    near = result.series_values("1 Near")
    far = result.series_values("1 Far")
    result.compare("1 Near peak (Fig. 10: ~12.5 GB/s)", 12.5, max(near.values()))
    result.compare(
        "1 Far peak (Fig. 10: ~7 GB/s)",
        paperdata.WRITE_FAR_PEAK_GBPS,
        max(far.values()),
    )
    best_far = int(max(far, key=far.get))
    result.compare(
        "far-write optimal thread count (§4.4: 6-8)",
        paperdata.WRITE_FAR_BEST_THREADS,
        float(best_far),
        unit="thr",
    )
    result.compare(
        "2 Near total", paperdata.WRITE_2NEAR_GBPS,
        max(result.series_values("2 Near").values()),
    )
    result.compare(
        "2 Far total", paperdata.WRITE_2FAR_GBPS,
        max(result.series_values("2 Far").values()),
    )
    result.compare(
        "near+far on same PMEM (Fig. 10: ~8 GB/s)",
        paperdata.WRITE_SHARED_TARGET_GBPS,
        max(result.series_values("1 Near 1 Far").values()),
    )

    far_run = model.service.evaluate(
        model.config,
        (
            StreamSpec(
                op=Op.WRITE,
                threads=18,
                pinning=PinningPolicy.NUMA_REGION,
                issuing_socket=0,
                target_socket=1,
            ),
        ),
        DirectoryState.warm(model.topology),
    )
    result.compare(
        "far-write internal amplification (§4.4: up to 10x)",
        paperdata.FAR_WRITE_AMPLIFICATION,
        far_run.counters.write_amplification,
        unit="x",
    )
    return result
