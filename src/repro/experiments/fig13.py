"""Figure 13: random write bandwidth, PMEM vs. DRAM.

PMEM random writes peak with 4-6 threads at ~2/3 of the sequential
maximum and improve with larger accesses; DRAM keeps scaling with
threads and is nearly size-insensitive.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import curves_by, evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, MediaKind, Op
from repro.workloads import random_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(exp_id="fig13", title="Random write bandwidth (PMEM/DRAM)")
    for media, panel in ((MediaKind.PMEM, "a-pmem"), (MediaKind.DRAM, "b-dram")):
        grid = random_sweep(Op.WRITE, media=media)
        values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
        for threads, curve in curves_by(values, grid, "threads", "access_size").items():
            result.add_series(f"{panel}/{threads}T", curve)

    peaks_by_threads = {
        int(name.split("/")[1].rstrip("T")): max(series.values())
        for name, series in result.series.items()
        if name.startswith("a-pmem/")
    }
    best_threads = max(peaks_by_threads, key=peaks_by_threads.get)
    result.compare(
        "PMEM random-write optimal thread count (§5.2: 4-6)",
        5.0,
        float(best_threads),
        unit="thr",
    )
    seq_peak = max(model.sequential_write(t, 4096) for t in (4, 6))
    result.compare(
        "PMEM random-write peak fraction of sequential (§5.2: ~2/3)",
        paperdata.RANDOM_PEAK_FRACTION_PMEM,
        peaks_by_threads[best_threads] / seq_peak,
        unit="frac",
    )
    dram_36 = result.series_values("b-dram/36T")
    dram_1 = result.series_values("b-dram/1T")
    result.compare(
        "DRAM random writes scale with threads (36T/1T)",
        5.0,
        max(dram_36.values()) / max(dram_1.values()),
        unit="x",
    )
    result.notes.append(
        "larger access sizes improve PMEM random writes; DRAM is nearly "
        "size-insensitive beyond ~1 KB"
    )
    return result
