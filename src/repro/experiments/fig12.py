"""Figure 12: random read bandwidth, PMEM vs. DRAM.

Random PMEM reads top out at ~2/3 of the sequential maximum and keep
profiting from more threads (hyperthreads included). DRAM's random
bandwidth depends on the allocation size: the paper's 2 GB hash region
lives on one NUMA node and reaches only half the channels.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import curves_by, evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, MediaKind, Op
from repro.units import GIB
from repro.workloads import random_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(exp_id="fig12", title="Random read bandwidth (PMEM/DRAM)")
    for media, panel in ((MediaKind.PMEM, "a-pmem"), (MediaKind.DRAM, "b-dram")):
        grid = random_sweep(Op.READ, media=media)
        values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
        for threads, curve in curves_by(values, grid, "threads", "access_size").items():
            result.add_series(f"{panel}/{threads}T", curve)

    pmem_peak = max(result.series_values("a-pmem/36T").values())
    seq_peak = model.sequential_read(18, 4096)
    result.compare(
        "PMEM random peak fraction of sequential (§5.2: ~2/3)",
        paperdata.RANDOM_PEAK_FRACTION_PMEM,
        pmem_peak / seq_peak,
        unit="frac",
    )
    dram_small = max(result.series_values("b-dram/36T").values())
    dram_seq = model.sequential_read(18, 4096, media=MediaKind.DRAM)
    result.compare(
        "DRAM random fraction on the 2 GB region (§5.2: ~50%)",
        paperdata.RANDOM_PEAK_FRACTION_DRAM_SMALL,
        dram_small / dram_seq,
        unit="frac",
    )
    dram_large = model.random_read(
        36, 8192, media=MediaKind.DRAM, region_bytes=90 * GIB
    )
    result.compare(
        "DRAM random fraction on a 90 GB region (§5.2: ~90%)",
        paperdata.RANDOM_LARGE_REGION_FRACTION_DRAM,
        dram_large / dram_seq,
        unit="frac",
    )
    dram_512 = model.random_read(36, 512, media=MediaKind.DRAM, region_bytes=90 * GIB)
    pmem_512 = model.random_read(36, 512)
    result.compare(
        "large-region DRAM over PMEM at 512 B (§5.2: ~4x)",
        paperdata.RANDOM_DRAM_OVER_PMEM_512B,
        dram_512 / pmem_512,
        unit="x",
    )
    result.notes.append(
        "hyperthreading helps random reads (36T > 18T), unlike sequential"
    )
    return result
