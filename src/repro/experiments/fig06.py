"""Figure 6: reading from multiple sockets, PMEM (a) and DRAM (b).

Five configurations: 1/2 sockets x near/far plus the shared-target case.
Near reads scale linearly with sockets (80 GB/s PMEM, 185 GB/s DRAM);
far reads are UPI-bound; both sockets reading the same PMEM collapses.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import (
    BandwidthModel,
    DirectoryState,
    MediaKind,
    Op,
    PinningPolicy,
    StreamSpec,
)
from repro.workloads import MULTISOCKET_READ_LABELS, multisocket_read_scenarios


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(
        exp_id="fig6", title="Read from multiple sockets (PMEM and DRAM)"
    )
    for media, panel in ((MediaKind.PMEM, "a-pmem"), (MediaKind.DRAM, "b-dram")):
        grid = multisocket_read_scenarios(media=media)
        values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
        for label in MULTISOCKET_READ_LABELS:
            curve = {
                str(point.params["threads"]): values[point.label]
                for point in grid
                if point.params["scenario"] == label
            }
            result.add_series(f"{panel}/{label}", curve)

    def peak(panel: str, label: str) -> float:
        return max(result.series_values(f"{panel}/{label}").values())

    result.compare("PMEM 2 Near", paperdata.READ_2NEAR_PMEM_GBPS, peak("a-pmem", "2 Near"))
    result.compare("PMEM 2 Far", paperdata.READ_2FAR_PMEM_GBPS, peak("a-pmem", "2 Far"))
    result.compare("PMEM 1 Far (warm)", paperdata.READ_WARM_FAR_GBPS, peak("a-pmem", "1 Far"))
    result.compare("DRAM 1 Near", paperdata.READ_1NEAR_DRAM_GBPS, peak("b-dram", "1 Near"))
    result.compare("DRAM 2 Near", paperdata.READ_2NEAR_DRAM_GBPS, peak("b-dram", "2 Near"))
    result.compare("DRAM 1 Far", paperdata.READ_1FAR_DRAM_GBPS, peak("b-dram", "1 Far"))
    result.compare("DRAM 2 Far", paperdata.READ_2FAR_DRAM_GBPS, peak("b-dram", "2 Far"))

    # UPI utilization in the 2-Far scenario (§3.5: VTune shows 90%+),
    # evaluated against an explicit warm directory state.
    spec = StreamSpec(op=Op.READ, threads=18, pinning=PinningPolicy.NUMA_REGION)
    two_far = model.service.evaluate(
        model.config,
        (
            spec.with_(issuing_socket=0, target_socket=1),
            spec.with_(issuing_socket=1, target_socket=0),
        ),
        DirectoryState.warm(model.topology),
    )
    result.compare(
        "UPI utilization, 2 Far (§3.5: 90%+)",
        paperdata.UPI_UTILIZATION_2FAR,
        two_far.counters.upi_utilization,
        unit="frac",
    )
    result.notes.append(
        "PMEM shared-target (1 Near 1 Far) collapses to "
        f"{peak('a-pmem', '1 Near 1 Far'):.0f} GB/s — 'very low' per §3.5"
    )
    return result
