"""Figure 4: read bandwidth under the three pinning policies.

Explicit core pinning > NUMA-region pinning > no pinning; unpinned
threads land on the far socket and crawl at ~9 GB/s.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, Op, PinningPolicy
from repro.workloads import pinning_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    grid = pinning_sweep(Op.READ)
    values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
    result = ExperimentResult(
        exp_id="fig4", title="Read bandwidth dependent on thread pinning"
    )
    for policy in (PinningPolicy.NONE, PinningPolicy.NUMA_REGION, PinningPolicy.CORES):
        curve = {
            str(point.params["threads"]): values[point.label]
            for point in grid
            if point.params["policy"] is policy
        }
        result.add_series(policy.value, curve)

    none_peak = max(result.series_values("none").values())
    cores_peak = max(result.series_values("cores").values())
    result.compare(
        "unpinned peak (Fig. 4: ~9 GB/s)",
        paperdata.READ_UNPINNED_PEAK_GBPS,
        none_peak,
    )
    result.compare(
        "core-pinned peak (Fig. 4: ~41 GB/s)",
        paperdata.READ_PINNED_PEAK_GBPS,
        cores_peak,
    )
    result.compare(
        "pinned/unpinned ratio (§4.3: ~4x)",
        4.0,
        cores_peak / none_peak,
        unit="x",
    )
    return result
