"""Figure 3: sequential read bandwidth vs. access size and thread count.

Grouped access (a): bandwidth depends strongly on the access size; 4 KB
is the global maximum, 1-2 KB dips (L2 prefetcher), sub-256 B accesses
keep too few DIMMs busy. Individual access (b): nearly size-independent,
close to the 40 GB/s peak for high thread counts.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import curves_by, evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, Layout, Op
from repro.workloads import sequential_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(
        exp_id="fig3",
        title="Read bandwidth vs access size and thread count (grouped/individual)",
    )
    for layout, panel in ((Layout.GROUPED, "a-grouped"), (Layout.INDIVIDUAL, "b-individual")):
        grid = sequential_sweep(Op.READ, layout=layout)
        values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
        for threads, curve in curves_by(values, grid, "threads", "access_size").items():
            result.add_series(f"{panel}/{threads}T", curve)

    grouped = result.series_values("a-grouped/36T")
    individual = result.series_values("b-individual/36T")
    result.compare(
        "grouped 4 KB peak, 36 threads (Fig. 3a)",
        paperdata.READ_PEAK_GBPS,
        grouped["4096"],
    )
    result.compare(
        "grouped 64 B minimum, 36 threads (§3.1)",
        paperdata.READ_GROUPED_36T_MIN_GBPS,
        grouped["64"],
    )
    result.compare(
        "individual reads at 4 KB, 18 threads (§3.2)",
        paperdata.READ_PEAK_GBPS,
        result.series_values("b-individual/18T")["4096"],
    )
    result.compare(
        "8-thread fraction of the peak (§3.2: ~85%)",
        paperdata.READ_8T_OF_PEAK,
        result.series_values("b-individual/8T")["4096"] / individual["4096"],
        unit="frac",
    )
    result.notes.append(
        "1-2 KB grouped dip present: "
        f"1 KB={grouped['1024']:.1f} vs 4 KB={grouped['4096']:.1f} GB/s"
    )
    return result
