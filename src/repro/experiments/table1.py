"""Table 1: the optimization ladder of query Q2.1.

Five cumulative optimizations — 1 thread, 18 threads, both sockets,
NUMA-aware placement, explicit core pinning — on PMEM and DRAM, plus the
"traditional" NVMe-SSD deployment from the surrounding text.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel
from repro.ssb.runner import SsbRunner


def run(
    model: BandwidthModel | None = None,
    runner: SsbRunner | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    runner = runner if runner is not None else SsbRunner(model=model)
    result = ExperimentResult(
        exp_id="table1", title="Optimization of Q2.1 (seconds, sf 100)", unit="s"
    )
    ladder = runner.table1()
    result.add_series("pmem", {k: round(v, 2) for k, v in ladder["pmem"].items()})
    result.add_series("dram", {k: round(v, 2) for k, v in ladder["dram"].items()})

    for media, reference in (
        ("pmem", paperdata.TABLE1_PMEM),
        ("dram", paperdata.TABLE1_DRAM),
    ):
        for step, paper_seconds in reference.items():
            result.compare(
                f"Q2.1 {media} {step}",
                paper_seconds,
                ladder[media][step],
                unit="s",
            )

    ssd = runner.q21_on_ssd()
    result.add_series("ssd", {"Pinning": round(ssd, 2)})
    result.compare("Q2.1 on NVMe SSD (§6.2: 22.8 s)", paperdata.Q21_SSD_SECONDS, ssd, unit="s")
    result.compare(
        "SSD/PMEM ratio (§6.2: 2.6x)",
        paperdata.SSD_OVER_PMEM,
        ssd / ladder["pmem"]["Pinning"],
        unit="x",
    )
    return result
