"""Section 7: the seven best practices, verified against the model.

The reproduction's headline deliverable: every numbered insight and every
best practice must *hold as a consequence of the modeled mechanisms*.
"""

from __future__ import annotations

from repro.core.best_practices import BEST_PRACTICES, verify_practices
from repro.core.insights import ALL_INSIGHTS, verify_all
from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(
        exp_id="bestpractices",
        title="Best practices for OLAP on PMEM (§7)",
        unit="bool",
    )
    insight_results = verify_all(model)
    practice_results = verify_practices(model)
    result.add_series(
        "insights hold", {f"#{n}": float(ok) for n, ok in insight_results.items()}
    )
    result.add_series(
        "practices hold", {f"({n})": float(ok) for n, ok in practice_results.items()}
    )
    result.compare(
        "insights derivable from the model (12 of 12)",
        float(len(ALL_INSIGHTS)),
        float(sum(insight_results.values())),
        unit="count",
    )
    result.compare(
        "practices derivable from the model (7 of 7)",
        float(len(BEST_PRACTICES)),
        float(sum(practice_results.values())),
        unit="count",
    )
    for practice in BEST_PRACTICES:
        result.notes.append(f"({practice.number}) {practice.statement}")
    return result
