"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from functools import lru_cache

from repro.memsim import BandwidthModel, DirectoryState
from repro.sweep import SweepRunner
from repro.workloads.grids import SweepGrid


@lru_cache(maxsize=1)
def _default_model() -> BandwidthModel:
    # One shared façade over the cached paper MachineConfig: every
    # default-invoked experiment reuses the same validated calibration
    # and the same evaluation-cache keys.
    return BandwidthModel()


def model_or_default(model: BandwidthModel | None) -> BandwidthModel:
    return model if model is not None else _default_model()


def evaluate_grid(
    model: BandwidthModel,
    grid: SweepGrid,
    *,
    directory: DirectoryState | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> dict[str, float]:
    """Evaluate every sweep point; returns {label: total GB/s}.

    Points are evaluated against an explicit warm
    :class:`DirectoryState` (not by mutating the model), so far-access
    points reflect steady-state behaviour and the call leaves no state
    behind; experiments that specifically study the cold path (Fig. 5)
    pass their own state values. The default ``"vector"`` backend keeps
    results columnar end-to-end — the totals are read straight off the
    batch, no per-point result object exists anywhere — and is
    bit-identical to the per-point backends; ``jobs``/``backend`` fan
    points out across a thread or process pool instead.
    """
    if directory is None:
        directory = DirectoryState.warm(model.topology)
    runner = SweepRunner(model.service, jobs=jobs, backend=backend)
    return runner.totals(grid, config=model.config, directory=directory)


def curves_by(
    values: dict[str, float], grid: SweepGrid, outer: str, inner: str
) -> dict[str, dict[str, float]]:
    """Regroup flat sweep values into one series per ``outer`` parameter.

    ``outer``/``inner`` name keys of each point's ``params``; the result
    maps ``str(outer_value)`` to ``{str(inner_value): GB/s}``.
    """
    series: dict[str, dict[str, float]] = {}
    for point in grid:
        outer_value = str(point.params[outer])
        inner_value = str(point.params[inner])
        series.setdefault(outer_value, {})[inner_value] = values[point.label]
    return series
