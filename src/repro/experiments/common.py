"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from repro.memsim import BandwidthModel
from repro.workloads.grids import SweepGrid


def model_or_default(model: BandwidthModel | None) -> BandwidthModel:
    return model if model is not None else BandwidthModel()


def evaluate_grid(model: BandwidthModel, grid: SweepGrid) -> dict[str, float]:
    """Evaluate every sweep point; returns {label: total GB/s}.

    The coherence directory is pre-warmed so that far-access points
    reflect steady-state behaviour; experiments that specifically study
    the cold path (Fig. 5) manage the directory themselves.
    """
    model.warm_directory()
    return {
        point.label: model.evaluate(list(point.streams)).total_gbps
        for point in grid
    }


def curves_by(
    values: dict[str, float], grid: SweepGrid, outer: str, inner: str
) -> dict[str, dict[str, float]]:
    """Regroup flat sweep values into one series per ``outer`` parameter.

    ``outer``/``inner`` name keys of each point's ``params``; the result
    maps ``str(outer_value)`` to ``{str(inner_value): GB/s}``.
    """
    series: dict[str, dict[str, float]] = {}
    for point in grid:
        outer_value = str(point.params[outer])
        inner_value = str(point.params[inner])
        series.setdefault(outer_value, {})[inner_value] = values[point.label]
    return series
