"""Figure 11: mixed read/write workload bandwidth.

One writer already shaves ~5 GB/s off a 30-thread reader pool; a
saturating reader pool pushes writers toward a third of their maximum;
the combined bandwidth never exceeds the uncontended read peak.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel
from repro.workloads.mixed import PAPER_READ_COUNTS, PAPER_WRITE_COUNTS


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(exp_id="fig11", title="Mixed workload performance")
    reads: dict[str, float] = {}
    writes: dict[str, float] = {}
    outcomes = {}
    for writers in PAPER_WRITE_COUNTS:
        for readers in PAPER_READ_COUNTS:
            outcome = model.mixed(write_threads=writers, read_threads=readers)
            label = f"{writers}/{readers}"
            reads[label] = outcome.read_gbps
            writes[label] = outcome.write_gbps
            outcomes[label] = outcome
    result.add_series("read", reads)
    result.add_series("write", writes)

    result.compare(
        "read bandwidth at 1 writer / 30 readers (§5.1: ~26 GB/s)",
        paperdata.MIXED_READ_30R_1W_GBPS,
        reads["1/30"],
    )
    result.compare(
        "write bandwidth at 4 writers / 1 reader (§5.1: ~12 GB/s)",
        paperdata.MIXED_WRITE_4W_1R_GBPS,
        writes["4/1"],
    )
    balanced = outcomes["6/18"]
    result.compare(
        "balanced read retention (§5.1: ~1/3)",
        paperdata.MIXED_BALANCED_RETENTION,
        balanced.read_retention,
        unit="frac",
    )
    result.compare(
        "balanced write retention (§5.1: ~1/3)",
        paperdata.MIXED_BALANCED_RETENTION,
        balanced.write_retention,
        unit="frac",
    )
    read_alone = model.sequential_read(18, 4096)
    worst_total = max(o.total_gbps for o in outcomes.values())
    result.compare(
        "max combined bandwidth <= uncontended read max",
        read_alone,
        worst_total,
    )
    result.notes.append(
        "paper's 30-thread uncontended baseline is 31 GB/s; the model "
        f"gives {balanced.read_alone_gbps:.1f} GB/s for 18 threads "
        "(see EXPERIMENTS.md for the known deviation)"
    )
    return result
