"""Figure 9: write bandwidth under the three pinning policies.

Same ordering as for reads but a gentler unpinned penalty: ~7 vs
~13 GB/s (2x, where reads lose 4x).
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, Op, PinningPolicy
from repro.workloads import pinning_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    grid = pinning_sweep(Op.WRITE)
    values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
    result = ExperimentResult(
        exp_id="fig9", title="Write bandwidth dependent on thread pinning"
    )
    for policy in (PinningPolicy.NONE, PinningPolicy.NUMA_REGION, PinningPolicy.CORES):
        curve = {
            str(point.params["threads"]): values[point.label]
            for point in grid
            if point.params["policy"] is policy
        }
        result.add_series(policy.value, curve)

    none_peak = max(result.series_values("none").values())
    cores_peak = max(result.series_values("cores").values())
    result.compare(
        "unpinned write peak (Fig. 9: ~7 GB/s)",
        paperdata.WRITE_UNPINNED_PEAK_GBPS,
        none_peak,
    )
    result.compare(
        "core-pinned write peak (Fig. 9: ~13 GB/s)",
        paperdata.WRITE_PINNED_PEAK_GBPS,
        cores_peak,
    )
    result.compare(
        "pinned/unpinned ratio (§4.3: ~2x)", 2.0, cores_peak / none_peak, unit="x"
    )
    return result
