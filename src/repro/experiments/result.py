"""Experiment result containers and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError


@dataclass(frozen=True)
class MetricComparison:
    """One paper-reported value next to the reproduction's."""

    metric: str
    paper: float
    measured: float
    unit: str = "GB/s"

    @property
    def ratio(self) -> float:
        """measured / paper (1.0 = exact match)."""
        if self.paper == 0:
            raise ExperimentError(f"metric {self.metric!r} has zero paper value")
        return self.measured / self.paper

    def render(self) -> str:
        return (
            f"{self.metric:<58} paper={self.paper:>8.2f} "
            f"ours={self.measured:>8.2f} {self.unit:<5} ({self.ratio:5.2f}x)"
        )


@dataclass
class ExperimentResult:
    """Output of one reproduced figure or table."""

    exp_id: str
    title: str
    #: series name -> {x label: value}; the rows/curves of the figure.
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Spot checks against values the paper states in its text.
    comparisons: list[MetricComparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    unit: str = "GB/s"

    def add_series(self, name: str, points: dict[str, float]) -> None:
        if name in self.series:
            raise ExperimentError(f"duplicate series {name!r} in {self.exp_id}")
        self.series[name] = points

    def compare(self, metric: str, paper: float, measured: float, unit: str | None = None) -> None:
        self.comparisons.append(
            MetricComparison(
                metric=metric, paper=paper, measured=measured, unit=unit or self.unit
            )
        )

    def series_values(self, name: str) -> dict[str, float]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"{self.exp_id} has no series {name!r}; "
                f"available: {sorted(self.series)}"
            ) from None

    @property
    def worst_ratio_error(self) -> float:
        """Largest |log-ratio| error across spot checks (0 = perfect)."""
        import math

        if not self.comparisons:
            return 0.0
        return max(abs(math.log(c.ratio)) for c in self.comparisons)

    def render(self) -> str:
        """ASCII rendering: the figure's series plus the comparisons."""
        lines = [f"=== {self.exp_id}: {self.title} ==="]
        for name, points in self.series.items():
            lines.append(f"-- {name} [{self.unit}]")
            labels = list(points)
            for start in range(0, len(labels), 8):
                chunk = labels[start : start + 8]
                lines.append("   " + " | ".join(f"{l:>10}" for l in chunk))
                lines.append(
                    "   " + " | ".join(f"{points[l]:>10.2f}" for l in chunk)
                )
        if self.comparisons:
            lines.append("-- paper vs reproduction")
            lines.extend("   " + c.render() for c in self.comparisons)
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)
