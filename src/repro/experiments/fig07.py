"""Figure 7: sequential write bandwidth vs. access size and thread count.

Grouped 4 KB access is the global maximum (12.6 GB/s); 256 B forms a
secondary peak for 18+ threads; high thread counts collapse to 5-6 GB/s
beyond it; 64 B grouped writes (2.6 GB/s) trail individual ones
(9.6 GB/s) by ~4x.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.common import curves_by, evaluate_grid, model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, Layout, Op
from repro.workloads import sequential_sweep


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(
        exp_id="fig7",
        title="Write bandwidth vs access size and thread count (grouped/individual)",
    )
    for layout, panel in ((Layout.GROUPED, "a-grouped"), (Layout.INDIVIDUAL, "b-individual")):
        grid = sequential_sweep(Op.WRITE, layout=layout)
        values = evaluate_grid(model, grid, jobs=jobs, backend=backend)
        for threads, curve in curves_by(values, grid, "threads", "access_size").items():
            result.add_series(f"{panel}/{threads}T", curve)

    grouped_4 = result.series_values("a-grouped/4T")
    grouped_36 = result.series_values("a-grouped/36T")
    individual_36 = result.series_values("b-individual/36T")
    result.compare(
        "global maximum, grouped 4 KB (§4.1: 12.6 GB/s)",
        paperdata.WRITE_PEAK_GBPS,
        max(max(s.values()) for n, s in result.series.items()),
    )
    result.compare(
        "grouped 64 B, 36 threads (§4.1: 2.6 GB/s)",
        paperdata.WRITE_GROUPED_64B_36T_GBPS,
        grouped_36["64"],
    )
    result.compare(
        "individual 64 B, 36 threads (§4.1: 9.6 GB/s)",
        paperdata.WRITE_INDIVIDUAL_64B_36T_GBPS,
        individual_36["64"],
    )
    result.compare(
        "256 B secondary peak, 36 threads (§4.2: ~10 GB/s)",
        paperdata.WRITE_256B_HIGH_THREADS_GBPS,
        individual_36["256"],
    )
    result.compare(
        "large-access plateau, 36 threads (§4.2: ~5-6 GB/s)",
        paperdata.WRITE_HIGH_THREADS_PLATEAU_GBPS,
        grouped_36["65536"],
    )
    result.notes.append(
        "counterintuitive law holds: higher thread count -> smaller "
        "optimal access size"
    )
    return result
