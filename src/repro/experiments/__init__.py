"""Reproductions of every figure and table in the paper's evaluation.

``run_experiment("fig7")`` regenerates Figure 7 from the model;
``run_all()`` regenerates everything. Each result carries the paper's
numeric spot values next to the reproduction's (see
:mod:`repro.experiments.paperdata` for provenance).
"""

from repro.experiments.result import ExperimentResult, MetricComparison

__all__ = [
    "ExperimentResult",
    "MetricComparison",
    "REGISTRY",
    "all_experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
]


def __getattr__(name: str):
    # Deferred to avoid a circular import: figure modules import
    # repro.experiments.paperdata at module load.
    if name in {"REGISTRY", "all_experiment_ids", "get_experiment", "run_all", "run_experiment"}:
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
