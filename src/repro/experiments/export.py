"""Export experiment results as JSON or CSV.

The rendered text tables are for humans; downstream tooling (plotting
notebooks, regression dashboards) consumes these machine-readable forms.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.result import ExperimentResult


def to_dict(result: ExperimentResult) -> dict:
    """Plain-data form of one experiment result."""
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "unit": result.unit,
        "series": result.series,
        "comparisons": [
            {
                "metric": c.metric,
                "paper": c.paper,
                "measured": c.measured,
                "unit": c.unit,
                "ratio": c.ratio,
            }
            for c in result.comparisons
        ],
        "notes": list(result.notes),
    }


def to_json(result: ExperimentResult, indent: int = 2) -> str:
    """JSON form of one experiment result."""
    return json.dumps(to_dict(result), indent=indent, sort_keys=True)


def series_to_csv(result: ExperimentResult) -> str:
    """All series as long-form CSV: ``series,x,value``."""
    if not result.series:
        raise ExperimentError(f"{result.exp_id} has no series to export")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", "x", "value"])
    for name, points in result.series.items():
        for x, value in points.items():
            writer.writerow([name, x, value])
    return buffer.getvalue()


def comparisons_to_csv(result: ExperimentResult) -> str:
    """The paper-vs-measured checks as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["metric", "paper", "measured", "unit", "ratio"])
    for c in result.comparisons:
        writer.writerow([c.metric, c.paper, c.measured, c.unit, c.ratio])
    return buffer.getvalue()


def write_bundle(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write ``<exp_id>.json`` / ``<exp_id>_series.csv`` /
    ``<exp_id>_comparisons.csv`` into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    json_path = directory / f"{result.exp_id}.json"
    json_path.write_text(to_json(result))
    paths.append(json_path)
    if result.series:
        series_path = directory / f"{result.exp_id}_series.csv"
        series_path.write_text(series_to_csv(result))
        paths.append(series_path)
    if result.comparisons:
        comparisons_path = directory / f"{result.exp_id}_comparisons.csv"
        comparisons_path.write_text(comparisons_to_csv(result))
        paths.append(comparisons_path)
    return paths
