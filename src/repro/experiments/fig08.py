"""Figure 8: the write "boomerang" heatmap (access size x thread count).

Bandwidth above 10 GB/s survives along three edges — small sizes at any
thread count, any size at 4-6 threads — and collapses when both axes
grow together.
"""

from __future__ import annotations

from repro.experiments.common import model_or_default
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel, Layout
from repro.units import MIB

SIZES = (64, 256, 1024, 4096, 16384, 65536, MIB, 32 * MIB)
THREADS = (1, 2, 4, 6, 8, 12, 18, 24, 30, 36)


def heatmap(model: BandwidthModel, layout: Layout) -> dict[str, dict[str, float]]:
    """Thread-count rows of the (threads x size) write bandwidth matrix."""
    return {
        str(t): {str(s): model.sequential_write(t, s, layout=layout) for s in SIZES}
        for t in THREADS
    }


def boomerang_cells(rows: dict[str, dict[str, float]], threshold: float = 10.0):
    """Cells above the paper's 10 GB/s contour."""
    return {
        (int(t), int(s))
        for t, row in rows.items()
        for s, value in row.items()
        if value >= threshold
    }


def run(
    model: BandwidthModel | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    model = model_or_default(model)
    result = ExperimentResult(
        exp_id="fig8", title="Write bandwidth heatmap: the boomerang"
    )
    for layout, panel in ((Layout.GROUPED, "a-grouped"), (Layout.INDIVIDUAL, "b-individual")):
        rows = heatmap(model, layout)
        for threads, row in rows.items():
            result.add_series(f"{panel}/{threads}T", row)

    rows = {
        name.split("/")[1].rstrip("T"): series
        for name, series in result.series.items()
        if name.startswith("b-individual/")
    }
    hot = boomerang_cells(rows)
    # The three boomerang claims from §4.2, as counts over the contour:
    result.compare(
        "4-6 thread rows stay hot out to 32 MB (cells >= 10 GB/s)",
        2 * len(SIZES) - 2,  # nearly all of the 4- and 6-thread rows
        float(sum(1 for t, s in hot if t in (4, 6))),
        unit="cells",
    )
    result.compare(
        "36-thread row is hot only below ~512 B",
        1.0,
        float(sum(1 for t, s in hot if t == 36)),
        unit="cells",
    )
    result.compare(
        "no hot cells with both axes large (t>=18, s>=4 KB)",
        0.0 + 1,  # offset by one to keep the ratio defined
        float(sum(1 for t, s in hot if t >= 18 and s >= 4096)) + 1,
        unit="cells",
    )
    return result
