"""Figure 14: Star Schema Benchmark on PMEM vs. DRAM.

Panel (a): Hyrise (PMEM-unaware, sf 50) — average slowdown 5.3x.
Panel (b): the handcrafted PMEM-aware implementation (sf 100) — average
slowdown 1.66x, with QF1 finishing in ~1.3 s (PMEM) vs ~0.5 s (DRAM).
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments.result import ExperimentResult
from repro.memsim import BandwidthModel
from repro.ssb.runner import SsbRunner, average_slowdown


def run(
    model: BandwidthModel | None = None,
    runner: SsbRunner | None = None,
    jobs: int = 1,
    backend: str = "vector",
) -> ExperimentResult:
    runner = runner if runner is not None else SsbRunner(model=model)
    result = ExperimentResult(
        exp_id="fig14", title="Star Schema Benchmark performance", unit="s"
    )

    hyrise = runner.figure14a()
    handcrafted = runner.figure14b()
    result.add_series("a-hyrise/pmem", {q: round(s, 3) for q, s in hyrise["pmem"].seconds.items()})
    result.add_series("a-hyrise/dram", {q: round(s, 3) for q, s in hyrise["dram"].seconds.items()})
    result.add_series("b-handcrafted/pmem", {q: round(s, 3) for q, s in handcrafted["pmem"].seconds.items()})
    result.add_series("b-handcrafted/dram", {q: round(s, 3) for q, s in handcrafted["dram"].seconds.items()})

    result.compare(
        "Hyrise average PMEM/DRAM slowdown (§6.1: 5.3x)",
        paperdata.HYRISE_AVG_SLOWDOWN,
        average_slowdown(hyrise["pmem"], hyrise["dram"]),
        unit="x",
    )
    result.compare(
        "handcrafted average slowdown (§6.2: 1.66x)",
        paperdata.HANDCRAFTED_AVG_SLOWDOWN,
        average_slowdown(handcrafted["pmem"], handcrafted["dram"]),
        unit="x",
    )
    result.compare(
        "QF1 per-query runtime on PMEM (§6.2: ~1.3 s)",
        paperdata.QF1_PMEM_SECONDS,
        handcrafted["pmem"].flight_seconds(1) / 3,
        unit="s",
    )
    result.compare(
        "QF1 per-query runtime on DRAM (§6.2: ~0.5 s)",
        paperdata.QF1_DRAM_SECONDS,
        handcrafted["dram"].flight_seconds(1) / 3,
        unit="s",
    )
    qf24_p = sum(handcrafted["pmem"].flight_seconds(f) for f in (2, 3, 4))
    qf24_d = sum(handcrafted["dram"].flight_seconds(f) for f in (2, 3, 4))
    result.compare(
        "QF2-4 average slowdown (§6.2: ~1.6x)",
        paperdata.QF2_4_SLOWDOWN,
        qf24_p / qf24_d,
        unit="x",
    )
    result.compare(
        "Q2.1 memory-bound fraction on PMEM (§6.2: >70%)",
        paperdata.MEMORY_BOUND_FRACTION,
        handcrafted["pmem"].breakdowns["Q2.1"].memory_bound_fraction,
        unit="frac",
    )
    result.notes.append(
        "unaware/aware slowdown ratio: "
        f"{average_slowdown(hyrise['pmem'], hyrise['dram']) / average_slowdown(handcrafted['pmem'], handcrafted['dram']):.1f}x "
        "(paper: 5.3/1.66 = 3.2x)"
    )
    return result
