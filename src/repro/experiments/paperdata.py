"""Reference values digitized from the paper's text and tables.

Only values the paper states *numerically* (in prose, axis annotations,
or Table 1) are recorded; curve shapes that the paper conveys only
graphically are asserted as relations in the test suite instead of as
fabricated numbers.
"""

from __future__ import annotations

# ----- §3 sequential reads -------------------------------------------------

#: Peak sequential read bandwidth, one socket (Fig. 3).
READ_PEAK_GBPS: float = 40.0
#: Grouped-read bandwidth range at 36 threads across access sizes (§3.1).
READ_GROUPED_36T_MIN_GBPS: float = 12.0
#: "8 threads achieves nearly as much ... (~15% difference)" (§3.2).
READ_8T_OF_PEAK: float = 0.85
#: Unpinned reads peak (Fig. 4).
READ_UNPINNED_PEAK_GBPS: float = 9.0
#: Pinned read peak with explicit core pinning (Fig. 4).
READ_PINNED_PEAK_GBPS: float = 41.0
#: Cold far read peak and its optimal thread count (Fig. 5).
READ_COLD_FAR_PEAK_GBPS: float = 8.0
READ_COLD_FAR_BEST_THREADS: int = 4
#: Warm far read bandwidth (Fig. 5, "2nd Far").
READ_WARM_FAR_GBPS: float = 33.0

# ----- §3.5 multi-socket reads (Fig. 6) -------------------------------------

READ_2NEAR_PMEM_GBPS: float = 80.0
READ_2FAR_PMEM_GBPS: float = 50.0
READ_1NEAR_DRAM_GBPS: float = 100.0
READ_2NEAR_DRAM_GBPS: float = 185.0
READ_1FAR_DRAM_GBPS: float = 33.0
READ_2FAR_DRAM_GBPS: float = 60.0
#: §3.5: VTune shows 90%+ average UPI utilization for "2 Far".
UPI_UTILIZATION_2FAR: float = 0.90

# ----- §4 sequential writes --------------------------------------------------

#: Global write maximum: grouped 4 KB (§4.1).
WRITE_PEAK_GBPS: float = 12.6
#: 64 B at 36 threads: grouped vs individual (§4.1).
WRITE_GROUPED_64B_36T_GBPS: float = 2.6
WRITE_INDIVIDUAL_64B_36T_GBPS: float = 9.6
#: The 256 B secondary peak for 18+ threads (§4.2).
WRITE_256B_HIGH_THREADS_GBPS: float = 10.0
#: Large accesses at high thread counts stabilize here (§4.2).
WRITE_HIGH_THREADS_PLATEAU_GBPS: float = 5.5
#: Unpinned writes peak (Fig. 9) and pinned peak.
WRITE_UNPINNED_PEAK_GBPS: float = 7.0
WRITE_PINNED_PEAK_GBPS: float = 13.0
#: Far writes peak at ~7 GB/s with 8 threads (Fig. 10).
WRITE_FAR_PEAK_GBPS: float = 7.0
WRITE_FAR_BEST_THREADS: int = 8
WRITE_2NEAR_GBPS: float = 25.0
WRITE_2FAR_GBPS: float = 13.0
WRITE_SHARED_TARGET_GBPS: float = 8.0
#: §4.4: up to 10x internal write amplification for far writes.
FAR_WRITE_AMPLIFICATION: float = 10.0

# ----- §5.1 mixed workloads (Fig. 11) ----------------------------------------

#: Uncontended read bandwidth with 30 threads in the mixed harness.
MIXED_READ_BASELINE_30T_GBPS: float = 31.0
#: Read bandwidth with 30 readers + 1 writer.
MIXED_READ_30R_1W_GBPS: float = 26.0
#: Write bandwidth with 4 writers + 1 reader (of a ~13 GB/s max).
MIXED_WRITE_4W_1R_GBPS: float = 12.0
#: Both sides drop to about a third at the recommended combination.
MIXED_BALANCED_RETENTION: float = 1.0 / 3.0

# ----- §5.2 random access (Figs. 12-13) --------------------------------------

#: Random read/write peak as a fraction of sequential (PMEM).
RANDOM_PEAK_FRACTION_PMEM: float = 2.0 / 3.0
#: DRAM reaches ~50% of sequential on the 2 GB region.
RANDOM_PEAK_FRACTION_DRAM_SMALL: float = 0.50
#: Large-region DRAM random reads reach ~90% of sequential.
RANDOM_LARGE_REGION_FRACTION_DRAM: float = 0.90
#: Large-region DRAM shows ~4x over PMEM at 512 B.
RANDOM_DRAM_OVER_PMEM_512B: float = 4.0

# ----- §6 SSB -----------------------------------------------------------------

#: Hyrise (sf 50): average slowdown and per-query extremes (§6.1).
HYRISE_AVG_SLOWDOWN: float = 5.3
HYRISE_MAX_SLOWDOWN: float = 7.7   # Q2.3
HYRISE_MIN_SLOWDOWN: float = 2.5   # Q3.1
#: Handcrafted (sf 100): average slowdown and extremes (§6.2).
HANDCRAFTED_AVG_SLOWDOWN: float = 1.66
HANDCRAFTED_MAX_SLOWDOWN: float = 3.0   # Q1.3
HANDCRAFTED_MIN_SLOWDOWN: float = 1.4   # Q3.3
#: QF1 per-query runtimes (§6.2).
QF1_PMEM_SECONDS: float = 1.3
QF1_DRAM_SECONDS: float = 0.5
#: Average QF2-4 slowdown (§6.2).
QF2_4_SLOWDOWN: float = 1.6

#: Table 1: Q2.1 optimization ladder, seconds.
TABLE1_PMEM: dict[str, float] = {
    "1 Thr.": 306.7, "18 Thr.": 25.1, "2-Socket": 12.3, "NUMA": 9.4, "Pinning": 8.6,
}
TABLE1_DRAM: dict[str, float] = {
    "1 Thr.": 221.2, "18 Thr.": 15.2, "2-Socket": 9.2, "NUMA": 5.2, "Pinning": 5.2,
}
#: Q2.1 on the NVMe SSD deployment (§6.2).
Q21_SSD_SECONDS: float = 22.8
#: "PMEM outperforms SSDs by over a factor of 2.6x".
SSD_OVER_PMEM: float = 2.6
#: §6.2: the benchmark is memory bound over 70% of the time.
MEMORY_BOUND_FRACTION: float = 0.70

# ----- §2.3 / §7 dax modes ----------------------------------------------------

#: devdax is consistently 5-10% faster than fsdax.
DEVDAX_ADVANTAGE_RANGE: tuple[float, float] = (0.05, 0.10)
#: A 2 MB page fault costs ~0.5 ms; pre-faulting 1 GB >= 0.25 s.
PAGE_FAULT_SECONDS_PER_GIB: float = 0.25

# ----- §7 price/performance ----------------------------------------------------

PMEM_DIMM_128GB_USD: float = 575.0
DRAM_DIMM_64GB_USD: float = 700.0
SYSTEM_PMEM_1_5TB_USD: float = 6900.0
SYSTEM_DRAM_1_5TB_USD: float = 16800.0
PRICE_RATIO_DRAM_OVER_PMEM: float = 2.4
