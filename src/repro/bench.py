"""Bench-trajectory harness: ``repro bench``.

Runs the repo's ``benchmarks/bench_*`` suite (or a named subset) under
pytest-benchmark and distils the result into one canonical
``BENCH_<timestamp>.json`` per invocation. Committing these files over
time turns the benchmark suite into a *performance trajectory*: each
optimisation PR lands with a snapshot, and a regression shows up as a
kink in the series rather than an anecdote.

The payload (schema :data:`SCHEMA`) deliberately keeps only what the
trajectory needs — per-bench wall-time statistics, the sweep-cache
counters, and the run configuration (backend, jobs, warmup, rounds) —
instead of pytest-benchmark's full machine dump, so snapshots diff
cleanly and stay a few KB.

``--smoke`` pins a small fast subset (:data:`SMOKE_BENCHES`) with one
round and no warmup; it exists so a tier-1 test can exercise the whole
emit-and-validate path in seconds.
"""

from __future__ import annotations

import datetime
import json
import os
import tempfile
from pathlib import Path

from repro.errors import BenchError

#: Canonical payload schema identifier.
SCHEMA = "repro.bench/1"

#: The ``--smoke`` subset: fast benches covering the sweep service, the
#: process-pool/EvalContext layer, the columnar result path, and the
#: per-family vector kernel grids this harness exists to track.
SMOKE_BENCHES = (
    "bench_sweep_service.py",
    "bench_procpool_sweep.py",
    "bench_cluster_sweep.py",
    "bench_columnar_results.py",
    "bench_serving.py",
    "bench_vector_families.py",
)

#: Fields every per-bench entry must carry, with their types.
_BENCH_FIELDS: dict[str, type] = {
    "name": str,
    "file": str,
    "mean_seconds": float,
    "min_seconds": float,
    "max_seconds": float,
    "stddev_seconds": float,
    "rounds": int,
}


def bench_dir() -> Path:
    """The repo's ``benchmarks/`` directory (source checkouts only)."""
    root = Path(__file__).resolve().parents[2]
    found = root / "benchmarks"
    if not found.is_dir():
        raise BenchError(
            f"benchmarks directory not found at {found}; "
            "'repro bench' requires a source checkout"
        )
    return found


def resolve_selection(
    names: list[str] | None, *, smoke: bool = False, directory: Path | None = None
) -> list[Path]:
    """Map bench names (or the smoke set) to ``bench_*.py`` files.

    A name matches a file when it equals the filename, the stem, or a
    substring of the stem — ``fig03``, ``bench_fig03_read_access_size``
    and ``bench_fig03_read_access_size.py`` all select the same file.
    """
    root = directory if directory is not None else bench_dir()
    available = sorted(root.glob("bench_*.py"))
    if smoke:
        names = list(SMOKE_BENCHES)
    if not names:
        return available
    selected: list[Path] = []
    for name in names:
        matches = [
            path
            for path in available
            if name in (path.name, path.stem) or name in path.stem
        ]
        if not matches:
            raise BenchError(
                f"no benchmark matches {name!r}; available: "
                + ", ".join(path.stem for path in available)
            )
        for match in matches:
            if match not in selected:
                selected.append(match)
    return selected


def _utc_timestamp() -> str:
    """Current UTC time as a filesystem-safe ``YYYYmmddTHHMMSSZ`` stamp."""
    return datetime.datetime.now(datetime.timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def _distill(
    raw: dict[str, object],
    *,
    jobs: int,
    backend: str,
    smoke: bool,
    warmup: bool,
    rounds: int,
    cache_stats: dict[str, int],
    created: str,
) -> dict[str, object]:
    """Reduce a pytest-benchmark JSON dump to the canonical payload."""
    benches: list[dict[str, object]] = []
    for entry in raw.get("benchmarks", []):
        stats = entry["stats"]
        fullname = str(entry.get("fullname", entry["name"]))
        file_part = fullname.split("::", 1)[0]
        benches.append(
            {
                "name": str(entry["name"]),
                "file": Path(file_part).name,
                "mean_seconds": float(stats["mean"]),
                "min_seconds": float(stats["min"]),
                "max_seconds": float(stats["max"]),
                "stddev_seconds": float(stats["stddev"]),
                "rounds": int(stats["rounds"]),
                "extra": entry.get("extra_info", {}),
            }
        )
    benches.sort(key=lambda bench: (bench["file"], bench["name"]))
    return {
        "schema": SCHEMA,
        "created": created,
        "config": {
            "jobs": int(jobs),
            "backend": str(backend),
            "smoke": bool(smoke),
            "warmup": bool(warmup),
            "rounds": int(rounds),
        },
        "cache_stats": cache_stats,
        "benchmarks": benches,
    }


def validate_payload(payload: dict[str, object]) -> None:
    """Raise :class:`BenchError` unless ``payload`` matches :data:`SCHEMA`."""

    def fail(reason: str) -> None:
        raise BenchError(f"invalid {SCHEMA} payload: {reason}")

    if not isinstance(payload, dict):
        fail("not a JSON object")
    if payload.get("schema") != SCHEMA:
        fail(f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(payload.get("created"), str):
        fail("'created' must be a timestamp string")
    config = payload.get("config")
    if not isinstance(config, dict):
        fail("'config' must be an object")
    for key, kind in (
        ("jobs", int), ("backend", str), ("smoke", bool),
        ("warmup", bool), ("rounds", int),
    ):
        if not isinstance(config.get(key), kind):
            fail(f"config[{key!r}] must be {kind.__name__}")
    stats = payload.get("cache_stats")
    if not isinstance(stats, dict):
        fail("'cache_stats' must be an object")
    for key in ("hits", "misses", "disk_hits"):
        if not isinstance(stats.get(key), int):
            fail(f"cache_stats[{key!r}] must be int")
    benches = payload.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail("'benchmarks' must be a non-empty list")
    for entry in benches:
        if not isinstance(entry, dict):
            fail("benchmark entries must be objects")
        for key, kind in _BENCH_FIELDS.items():
            value = entry.get(key)
            # bool is an int subclass; rounds must be a real int.
            if not isinstance(value, kind) or isinstance(value, bool):
                fail(f"benchmark[{key!r}] must be {kind.__name__}")
        if entry["rounds"] < 1:
            fail("benchmark rounds must be >= 1")
        if entry["min_seconds"] < 0:
            fail("benchmark timings must be non-negative")


def run_benchmarks(
    names: list[str] | None = None,
    *,
    smoke: bool = False,
    warmup: bool = True,
    rounds: int = 3,
    jobs: int = 1,
    backend: str = "thread",
    directory: Path | None = None,
) -> dict[str, object]:
    """Run the selected benches; return the canonical payload.

    ``warmup``/``rounds`` control pytest-benchmark's repetition
    (``rounds`` maps to its minimum round count). ``jobs``/``backend``
    are recorded in the payload and exported as ``REPRO_BENCH_JOBS`` /
    ``REPRO_BENCH_BACKEND`` so parameterised benches can honour them.
    The shared default service is swapped for a fresh one around the run
    so ``cache_stats`` reflects this run alone.
    """
    import pytest

    from repro.sweep import EvaluationService, default_service, set_default_service

    selection = resolve_selection(names, smoke=smoke, directory=directory)
    if rounds < 1:
        raise BenchError(f"rounds must be >= 1, got {rounds}")
    if smoke:
        warmup = False
        rounds = 1
    created = _utc_timestamp()
    previous = set_default_service(EvaluationService())
    previous_env = {
        key: os.environ.get(key)
        for key in ("REPRO_BENCH_JOBS", "REPRO_BENCH_BACKEND")
    }
    os.environ["REPRO_BENCH_JOBS"] = str(jobs)
    os.environ["REPRO_BENCH_BACKEND"] = backend
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            raw_path = Path(tmp) / "raw.json"
            argv = [
                *[str(path) for path in selection],
                "-q",
                "-p", "no:cacheprovider",
                "--override-ini", "addopts=",
                f"--benchmark-json={raw_path}",
                f"--benchmark-min-rounds={rounds}",
                f"--benchmark-warmup={'on' if warmup else 'off'}",
            ]
            code = pytest.main(argv)
            if code != 0:
                raise BenchError(
                    f"benchmark run failed (pytest exit code {int(code)})"
                )
            raw = json.loads(raw_path.read_text(encoding="utf-8"))
        service = default_service()
        cache_stats = {
            "hits": service.stats.hits,
            "misses": service.stats.misses,
            "disk_hits": service.stats.disk_hits,
        }
    finally:
        set_default_service(previous)
        for key, value in previous_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    payload = _distill(
        raw,
        jobs=jobs,
        backend=backend,
        smoke=smoke,
        warmup=warmup,
        rounds=rounds,
        cache_stats=cache_stats,
        created=created,
    )
    validate_payload(payload)
    return payload


def write_payload(payload: dict[str, object], output: str | None = None) -> Path:
    """Write ``payload`` as pretty JSON; returns the path written.

    ``output`` may be a file path, a directory (gets the canonical
    ``BENCH_<timestamp>.json`` name inside it), or ``None`` for the
    canonical name in the current directory.
    """
    created = str(payload["created"])
    default_name = f"BENCH_{created}.json"
    if output is None:
        path = Path(default_name)
    else:
        path = Path(output)
        if path.is_dir():
            path = path / default_name
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")
    return path
