"""Wire protocol for :mod:`repro.serve`: newline-delimited JSON frames.

One request per line, one response per line, UTF-8, no dependency
beyond the stdlib ``json`` module. The protocol string identifies the
frame schema; a server answers frames for exactly one protocol version.

Requests
--------

Every frame is a JSON object with ``"kind"`` and an optional caller
``"id"`` (echoed verbatim in the response so clients can pipeline).
Kinds:

``ping``
    Liveness probe; answered immediately with the protocol string.
``evaluate``
    One workload point (``streams``, optional ``warm_pairs`` /
    ``prefetcher`` / ``write_combining`` / ``deadline_seconds`` /
    ``counters``); eligible for gather-window coalescing.
``sweep``
    Many points in one frame (``points``: a list of stream lists);
    admitted as a unit and evaluated as one batch.
``advise``
    A :class:`~repro.core.advisor.WorkloadIntent` (``intent`` object);
    answered immediately from the placement advisor, no evaluation.

Responses
---------

``{"id": ..., "ok": true, "kind": ..., "result": ...}`` on success and
``{"id": ..., "ok": false, "error": {"code", "message", ...}}`` on
failure, where ``code`` is a :class:`~repro.errors.ServeError` code.
Result payloads round-trip every float through ``json`` exactly
(CPython serializes via ``repr``), so two responses are byte-identical
iff the underlying results are bit-identical — the coalescing parity
tests rely on this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError, ServeError, WorkloadError
from repro.core.advisor import AccessProfile, WorkloadIntent
from repro.memsim.address import DaxMode
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, MediaKind, Op, Pattern, StreamSpec

if TYPE_CHECKING:
    from repro.core.advisor import Recommendation
    from repro.memsim.evaluation import BandwidthResult
    from repro.memsim.kernels.columns import ResultColumns

__all__ = [
    "PROTOCOL",
    "Request",
    "decode_request",
    "decode_stream",
    "dump_line",
    "encode_point",
    "encode_recommendation",
    "encode_result",
    "encode_stream",
    "error_response",
    "ok_response",
]

#: Protocol identifier answered by ``ping`` and checked nowhere else —
#: the frame schema itself is the contract.
PROTOCOL = "repro.serve/1"

KINDS = ("ping", "evaluate", "sweep", "advise")

#: StreamSpec fields carried on the wire, with their enum type where the
#: JSON value is the enum's ``.value`` string.
_STREAM_ENUMS: dict[str, type] = {
    "op": Op,
    "media": MediaKind,
    "pattern": Pattern,
    "layout": Layout,
    "pinning": PinningPolicy,
    "dax_mode": DaxMode,
}
_STREAM_FIELDS = (
    "op",
    "threads",
    "access_size",
    "media",
    "pattern",
    "layout",
    "pinning",
    "issuing_socket",
    "target_socket",
    "region_bytes",
    "total_bytes",
    "dax_mode",
    "prefaulted",
)


@lru_cache(maxsize=4)
def _config_for(prefetcher: bool, write_combining: bool) -> MachineConfig:
    """The paper config with the two ablation toggles applied.

    Cached so every request with the same toggles shares one
    ``MachineConfig`` instance — identity sharing keeps cache-key
    hashing cheap and lets coalesced batches group by config object.
    """
    if prefetcher and write_combining:
        return paper_config()
    base = paper_config()
    return MachineConfig(
        topology=base.topology,
        calibration=base.calibration,
        prefetcher_enabled=prefetcher,
        write_combining_enabled=write_combining,
    )


@dataclass(frozen=True)
class Request:
    """A decoded, validated request frame.

    ``deadline_seconds`` is a *relative* budget (seconds from admission);
    the server converts it to an absolute deadline on its own clock.
    """

    kind: str
    id: object = None
    streams: tuple[StreamSpec, ...] = ()
    points: tuple[tuple[StreamSpec, ...], ...] = ()
    directory: DirectoryState = DirectoryState.cold()
    config: MachineConfig = None  # type: ignore[assignment]
    deadline_seconds: "float | None" = None
    include_counters: bool = False
    intent: "WorkloadIntent | None" = None

    def __post_init__(self) -> None:
        if self.config is None:
            object.__setattr__(self, "config", paper_config())


def _bad(message: str) -> ServeError:
    return ServeError("bad_request", message)


def decode_stream(obj: object) -> StreamSpec:
    """Decode one wire stream object into a :class:`StreamSpec`.

    Enums decode by their ``.value`` string; absent fields take the
    ``StreamSpec`` defaults. Raises :class:`ServeError` (code
    ``bad_request``) for unknown fields, bad enum values, or specs the
    workload validator rejects.
    """
    if not isinstance(obj, Mapping):
        raise _bad(f"stream must be an object, got {type(obj).__name__}")
    kwargs: dict[str, object] = {}
    for name, value in obj.items():
        if name not in _STREAM_FIELDS:
            raise _bad(f"unknown stream field {name!r}")
        enum_type = _STREAM_ENUMS.get(name)
        if enum_type is not None:
            try:
                value = enum_type(value)
            except ValueError:
                raise _bad(
                    f"bad {name!r} value {value!r}; expected one of "
                    f"{sorted(member.value for member in enum_type)}"
                ) from None
        kwargs[name] = value
    try:
        return StreamSpec(**kwargs)
    except (WorkloadError, TypeError) as exc:
        raise _bad(f"invalid stream: {exc}") from exc


def encode_stream(spec: StreamSpec) -> dict[str, object]:
    """The wire object for ``spec`` (every field explicit, enums by value)."""
    out: dict[str, object] = {}
    for name in _STREAM_FIELDS:
        value = getattr(spec, name)
        if name in _STREAM_ENUMS:
            value = value.value
        out[name] = value
    return out


def _decode_streams(obj: object, what: str) -> tuple[StreamSpec, ...]:
    if not isinstance(obj, list) or not obj:
        raise _bad(f"{what} must be a non-empty list of stream objects")
    return tuple(decode_stream(item) for item in obj)


def _decode_directory(obj: object) -> DirectoryState:
    if obj is None:
        return DirectoryState.cold()
    if not isinstance(obj, list):
        raise _bad("warm_pairs must be a list of [issuing, target] pairs")
    pairs = set()
    for item in obj:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not all(isinstance(n, int) for n in item)
        ):
            raise _bad(f"bad warm pair {item!r}; expected [issuing, target]")
        pairs.add((item[0], item[1]))
    return DirectoryState(frozenset(pairs))


def _decode_intent(obj: object) -> WorkloadIntent:
    if not isinstance(obj, Mapping):
        raise _bad("intent must be an object")
    kwargs = dict(obj)
    profile = kwargs.pop("profile", None)
    try:
        profile = AccessProfile(profile)
    except ValueError:
        raise _bad(
            f"bad profile {profile!r}; expected one of "
            f"{sorted(member.value for member in AccessProfile)}"
        ) from None
    try:
        return WorkloadIntent(profile=profile, **kwargs)
    except (ConfigurationError, TypeError) as exc:
        raise _bad(f"invalid intent: {exc}") from exc


def decode_request(payload: Mapping[str, object]) -> Request:
    """Validate one parsed frame into a :class:`Request`.

    Raises :class:`ServeError` with code ``bad_request`` for anything
    the server cannot evaluate; the message names the offending field.
    """
    if not isinstance(payload, Mapping):
        raise _bad(f"frame must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in KINDS:
        raise _bad(f"unknown kind {kind!r}; expected one of {list(KINDS)}")
    request_id = payload.get("id")

    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise _bad("deadline_seconds must be a positive number")
        deadline = float(deadline)

    include_counters = payload.get("counters", False)
    if not isinstance(include_counters, bool):
        raise _bad("counters must be a boolean")

    config = _config_for(
        bool(payload.get("prefetcher", True)),
        bool(payload.get("write_combining", True)),
    )
    directory = _decode_directory(payload.get("warm_pairs"))

    if kind == "ping":
        return Request(kind="ping", id=request_id)
    if kind == "advise":
        return Request(
            kind="advise", id=request_id, intent=_decode_intent(payload.get("intent"))
        )
    if kind == "evaluate":
        streams = _decode_streams(payload.get("streams"), "streams")
        return Request(
            kind="evaluate",
            id=request_id,
            streams=streams,
            directory=directory,
            config=config,
            deadline_seconds=deadline,
            include_counters=include_counters,
        )
    points_obj = payload.get("points")
    if not isinstance(points_obj, list) or not points_obj:
        raise _bad("points must be a non-empty list of stream lists")
    points = tuple(
        _decode_streams(point, f"points[{i}]") for i, point in enumerate(points_obj)
    )
    return Request(
        kind="sweep",
        id=request_id,
        points=points,
        directory=directory,
        config=config,
        deadline_seconds=deadline,
        include_counters=include_counters,
    )


# ----------------------------------------------------------------------
# result encoding
# ----------------------------------------------------------------------


def encode_result(
    result: "BandwidthResult", *, include_counters: bool = False
) -> dict[str, object]:
    """The wire payload for one evaluation result.

    Floats pass through untouched (``json`` emits ``repr``), so equal
    payload bytes ⇔ bit-identical results. ``warm_pairs`` reports the
    full ``directory_after`` so callers can thread state into their next
    request.
    """
    out: dict[str, object] = {
        "total_gbps": result.total_gbps,
        "streams": [
            {"gbps": s.gbps, "solo_gbps": s.solo_gbps, "notes": list(s.notes)}
            for s in result.streams
        ],
        "warm_pairs": sorted(
            list(pair) for pair in (result.directory_after or DirectoryState.cold()).warm_pairs
        ),
    }
    if include_counters:
        counters = result.counters
        from repro.memsim.kernels.columns import COUNTER_COLUMNS

        payload = {name: getattr(counters, name) for name in COUNTER_COLUMNS}
        payload["notes"] = list(counters.notes)
        out["counters"] = payload
    return out


def encode_point(
    columns: "ResultColumns", row: int, *, include_counters: bool = False
) -> dict[str, object]:
    """Columnar twin of :func:`encode_result` for batch row ``row``.

    Reads the column arrays directly — no per-point ``BandwidthResult``
    is materialized — yet produces the byte-identical payload
    ``encode_result(columns.view(row))`` would (same floats, same
    ordering), which is what lets the server slice coalesced batches
    straight onto the wire.
    """
    lo, hi = columns.offsets[row], columns.offsets[row + 1]
    directory = columns.directory_after[row] or DirectoryState.cold()
    out: dict[str, object] = {
        "total_gbps": columns.point_total_gbps(row),
        "streams": [
            {
                "gbps": columns.gbps[j],
                "solo_gbps": columns.solo_gbps[j],
                "notes": list(columns.stream_notes[j]),
            }
            for j in range(lo, hi)
        ],
        "warm_pairs": sorted(list(pair) for pair in directory.warm_pairs),
    }
    if include_counters:
        payload: dict[str, object] = dict(columns.point_counters(row))
        payload["notes"] = list(columns.counter_notes[row])
        out["counters"] = payload
    return out


def encode_recommendation(rec: "Recommendation") -> dict[str, object]:
    """The wire payload for an advisor recommendation."""
    return {
        "read_threads": rec.read_threads,
        "write_threads": rec.write_threads,
        "read_access_size": rec.read_access_size,
        "write_access_size": rec.write_access_size,
        "layout": rec.layout.value,
        "pinning": rec.pinning.value,
        "dax_mode": rec.dax_mode.value,
        "stripe_across_sockets": rec.stripe_across_sockets,
        "replicate_small_tables": rec.replicate_small_tables,
        "serialize_read_write_phases": rec.serialize_read_write_phases,
        "expected_read_gbps": rec.expected_read_gbps,
        "expected_write_gbps": rec.expected_write_gbps,
        "practices": list(rec.practices),
        "rationale": list(rec.rationale),
    }


# ----------------------------------------------------------------------
# response framing
# ----------------------------------------------------------------------


def ok_response(request_id: object, kind: str, result: object) -> dict[str, object]:
    """A success response frame for request ``request_id``."""
    return {"id": request_id, "ok": True, "kind": kind, "result": result}


def error_response(request_id: object, exc: Exception) -> dict[str, object]:
    """A failure response frame.

    :class:`ServeError` keeps its code and retry hint; anything else is
    reported as an ``evaluation`` failure with the exception text (never
    a traceback — the wire is for answers, logs are for debugging).
    """
    if isinstance(exc, ServeError):
        error: dict[str, object] = {"code": exc.code, "message": str(exc)}
        if exc.retry_after_seconds is not None:
            error["retry_after_seconds"] = exc.retry_after_seconds
    else:
        error = {"code": "evaluation", "message": str(exc)}
    return {"id": request_id, "ok": False, "error": error}


def dump_line(obj: Mapping[str, object]) -> bytes:
    """Serialize one frame: compact JSON, UTF-8, trailing newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
