"""Minimal asyncio client for the :mod:`repro.serve` wire protocol.

:class:`ServeClient` speaks the newline-delimited JSON protocol over
TCP and supports pipelining: requests are tagged with generated ids and
responses are matched back by id, so callers may have many requests in
flight on one connection. :func:`request_once` is the one-shot helper
the ``repro request`` CLI uses.
"""

from __future__ import annotations

import asyncio
import json
from typing import Mapping

from repro.errors import ServeError
from repro.serve import protocol

__all__ = ["ServeClient", "request_once"]


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.server.BandwidthServer`.

    Single event loop, any number of concurrent :meth:`request` calls.
    Responses arriving out of order are parked by id until their caller
    reads them.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._read_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        self._parked: dict[object, dict] = {}
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, *, max_frame_bytes: int | None = None
    ) -> "ServeClient":
        """Open a connection to a listening server.

        ``max_frame_bytes`` bounds response frames (the stream's
        ``limit``); it defaults to the server's own default so a
        legitimate full batch response always fits.
        """
        if max_frame_bytes is None:
            from repro.serve.server import ServeConfig

            max_frame_bytes = ServeConfig.max_frame_bytes
        reader, writer = await asyncio.open_connection(
            host, port, limit=max_frame_bytes
        )
        return cls(reader, writer)

    async def request(self, payload: Mapping[str, object]) -> dict:
        """Send one frame and return its response frame.

        A missing ``id`` is filled in with a connection-unique integer.
        Raises :class:`ServeError` (code ``protocol``) if the server
        closes the connection before answering.
        """
        frame = dict(payload)
        if frame.get("id") is None:
            self._next_id += 1
            frame["id"] = self._next_id
        request_id = frame["id"]
        async with self._write_lock:
            self._writer.write(protocol.dump_line(frame))
            await self._writer.drain()
        while True:
            parked = self._parked.pop(request_id, None)
            if parked is not None:
                return parked
            async with self._read_lock:
                # Someone else may have parked our answer while we
                # waited for the lock.
                parked = self._parked.pop(request_id, None)
                if parked is not None:
                    return parked
                line = await self._reader.readline()
            if not line:
                raise ServeError("protocol", "connection closed before response")
            response = json.loads(line)
            if response.get("id") == request_id:
                return response
            self._parked[response.get("id")] = response

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # simlint: ignore[silent-except] -- already closing; the peer's RST is the expected outcome
            pass


async def request_once(host: str, port: int, payload: Mapping[str, object]) -> dict:
    """Connect, send one request, return its response, disconnect."""
    client = await ServeClient.connect(host, port)
    try:
        return await client.request(payload)
    finally:
        await client.close()
