"""The asyncio bandwidth server: gather-window coalescing + admission.

:class:`BandwidthServer` is the front door ROADMAP item 1 asks for: a
long-lived process that turns many small evaluation requests into few
large structure-of-arrays kernel calls. The mechanism is a **gather
window**: the first admitted ``evaluate`` request starts a timer; every
request arriving before it fires joins the same pending batch; when the
window closes the batch goes through
:meth:`~repro.sweep.service.EvaluationService.evaluate_grid_columns`
as *one* columnar call and each answer is sliced back out of the
:class:`~repro.memsim.kernels.columns.ResultColumns` block.

Design rules the tests pin down:

* **Cache keys are untouched.** A coalesced request is answered from
  exactly the rows a serial ``evaluate()`` would produce; duplicates
  within a window are collapsed to one leader (the rest resolve through
  the service memo afterwards), so hit/miss accounting matches the
  serial run to the unit.
* **Time is injectable.** The clock and sleep used for windows, frame
  timeouts, and deadlines come from the constructor; the fault tests
  drive a fake clock and never really sleep.
* **Failures are answers.** Admission rejections, expired deadlines,
  poisoned points, and protocol violations all produce typed error
  frames (:class:`~repro.errors.ServeError` codes); a poisoned point in
  a batch fails only its own request — batch-mates are still answered.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Awaitable, Callable, Mapping

from repro import units
from repro.core.advisor import PlacementAdvisor
from repro.errors import GridPointError, ReproError, ServeError
from repro.obs import Recorder, default_recorder
from repro.serve import protocol
from repro.serve.protocol import Request
from repro.sweep.service import EvaluationService, default_service, request_key

if TYPE_CHECKING:
    from repro.memsim.config import DirectoryState, MachineConfig
    from repro.memsim.kernels.columns import ResultColumns
    from repro.memsim.spec import StreamSpec
    from repro.sweep.service import RequestKey

__all__ = ["BandwidthServer", "ServeConfig", "ServeStats"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`BandwidthServer`.

    The defaults suit an in-process or localhost deployment: a 2 ms
    gather window is long enough to coalesce a concurrent burst and
    short enough to be invisible next to a cold evaluation.
    """

    #: Seconds the first queued request waits for batch-mates.
    gather_window_seconds: float = 0.002
    #: Most points drained into one batch (larger bursts roll over).
    max_batch_points: int = 64
    #: Most requests waiting for a window; beyond this, shed.
    max_queue_depth: int = 256
    #: Seconds a connection may stall mid-frame before being dropped.
    frame_timeout_seconds: float = 30.0
    #: Largest accepted frame; longer lines are a protocol violation.
    max_frame_bytes: int = 64 * units.KIB
    #: ``retry_after_seconds`` hint on shed responses; defaults to two
    #: gather windows (one to drain, one to re-arrive).
    shed_retry_after_seconds: "float | None" = None

    def retry_after(self) -> float:
        """The shed retry hint in seconds (resolved default)."""
        if self.shed_retry_after_seconds is not None:
            return self.shed_retry_after_seconds
        return 2.0 * self.gather_window_seconds


@dataclass
class ServeStats:
    """In-process tallies mirroring the ``serve.*`` counter catalog.

    Counters are exact; latency percentiles come from a bounded ring of
    recent wall-clock samples (the obs histogram keeps only
    count/total/min/max, which cannot answer p99).
    """

    admitted: int = 0
    completed: int = 0
    shed: int = 0
    deadline_expired: int = 0
    errors: int = 0
    batches: int = 0
    coalesced_points: int = 0
    deduped: int = 0
    protocol_drops: int = 0
    max_queue_depth: int = 0
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of recent request latencies in seconds.

        Nearest-rank over the sample ring; 0.0 when no request has
        completed yet.
        """
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def describe(self) -> dict[str, object]:
        """A JSON-ready snapshot (the ``repro serve`` exit summary)."""
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "errors": self.errors,
            "batches": self.batches,
            "coalesced_points": self.coalesced_points,
            "deduped": self.deduped,
            "protocol_drops": self.protocol_drops,
            "max_queue_depth": self.max_queue_depth,
            "p50_latency_seconds": self.latency_percentile(0.50),
            "p99_latency_seconds": self.latency_percentile(0.99),
        }


@dataclass
class _Pending:
    """One admitted ``evaluate`` request waiting for its window."""

    request: Request
    future: "asyncio.Future[dict[str, object]]"
    admitted_seconds: float
    #: Absolute deadline on the server clock, or ``None``.
    deadline_seconds: "float | None"
    key: "RequestKey"


class BandwidthServer:
    """Accepts protocol frames and answers them; see the module docstring.

    The server is single-loop: every public coroutine must run on the
    same event loop. ``submit`` is the in-process entry point (the TCP
    listener is a thin framing layer over it) and *always* returns a
    response frame — errors included — so transports never see
    exceptions.
    """

    def __init__(
        self,
        service: "EvaluationService | None" = None,
        *,
        config: "ServeConfig | None" = None,
        recorder: "Recorder | None" = None,
        clock: "Callable[[], float] | None" = None,
        sleep: "Callable[[float], Awaitable[None]] | None" = None,
    ) -> None:
        self.service = service if service is not None else default_service()
        self.config = config if config is not None else ServeConfig()
        self._recorder = recorder
        self._clock = clock
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.stats = ServeStats()
        self._advisor = PlacementAdvisor()
        self._queue: deque[_Pending] = deque()
        self._batcher: "asyncio.Task[None] | None" = None
        self._tcp_server: "asyncio.base_events.Server | None" = None
        self._connection_tasks: set["asyncio.Task[None]"] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # clock / recorder plumbing
    # ------------------------------------------------------------------

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    @property
    def recorder(self) -> Recorder:
        rec = self._recorder
        return rec if rec is not None else default_recorder()

    # ------------------------------------------------------------------
    # in-process entry point
    # ------------------------------------------------------------------

    async def submit(self, payload: "Mapping[str, object] | bytes | str") -> dict[str, object]:
        """Answer one request frame (parsed object or raw line).

        Never raises for request-scoped failures: bad frames, shed
        requests, expired deadlines, and evaluation errors all come back
        as error responses carrying the request id when one could be
        extracted.
        """
        request_id: object = None
        try:
            if isinstance(payload, (bytes, str)):
                try:
                    payload = json.loads(payload)
                except ValueError as exc:
                    raise ServeError("bad_request", f"frame is not JSON: {exc}") from exc
            if isinstance(payload, Mapping):
                request_id = payload.get("id")
            request = protocol.decode_request(payload)
            request_id = request.id
            return await self._dispatch(request)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — every failure becomes a frame
            if not isinstance(exc, ServeError):
                self.stats.errors += 1
                rec = self.recorder
                if rec.enabled:
                    rec.incr("serve.errors_count")
            return protocol.error_response(request_id, exc)

    async def _dispatch(self, request: Request) -> dict[str, object]:
        rec = self.recorder
        if rec.enabled:
            rec.incr("serve.requests_count")
        if request.kind == "ping":
            return protocol.ok_response(request.id, "ping", {"protocol": protocol.PROTOCOL})
        if request.kind == "advise":
            recommendation = self._advisor.recommend(request.intent)
            return protocol.ok_response(
                request.id, "advise", protocol.encode_recommendation(recommendation)
            )
        if self._closing:
            raise ServeError("shutdown", "server is shutting down")
        if request.kind == "sweep":
            return await self._handle_sweep(request)
        return await self._handle_evaluate(request)

    # ------------------------------------------------------------------
    # sweep: admitted and evaluated as one unit
    # ------------------------------------------------------------------

    async def _handle_sweep(self, request: Request) -> dict[str, object]:
        cost = len(request.points)
        if len(self._queue) + cost > self.config.max_queue_depth:
            self._shed(cost)
            raise ServeError(
                "shed",
                f"queue full ({len(self._queue)}/{self.config.max_queue_depth}); "
                f"sweep of {cost} points rejected",
                retry_after_seconds=self.config.retry_after(),
            )
        start = self._now()
        self.stats.admitted += cost
        columns, failures = self._evaluate_points(
            request.config,
            list(request.points),
            request.directory,
            labels=[f"{request.id}[{i}]" for i in range(cost)],
        )
        if failures:
            index, original = failures[0]
            self.stats.errors += 1
            rec = self.recorder
            if rec.enabled:
                rec.incr("serve.errors_count")
            raise ServeError("evaluation", str(original))
        results = [
            protocol.encode_point(columns, i, include_counters=request.include_counters)
            for i in range(cost)
        ]
        self.stats.completed += cost
        self._observe_latency(self._now() - start)
        return protocol.ok_response(request.id, "sweep", {"points": results})

    # ------------------------------------------------------------------
    # evaluate: admission, gather window, batch slice
    # ------------------------------------------------------------------

    async def _handle_evaluate(self, request: Request) -> dict[str, object]:
        if len(self._queue) >= self.config.max_queue_depth:
            self._shed(1)
            raise ServeError(
                "shed",
                f"queue full ({len(self._queue)}/{self.config.max_queue_depth})",
                retry_after_seconds=self.config.retry_after(),
            )
        now = self._now()
        deadline = (
            now + request.deadline_seconds if request.deadline_seconds is not None else None
        )
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            admitted_seconds=now,
            deadline_seconds=deadline,
            key=request_key(request.config, request.streams, request.directory),
        )
        self._queue.append(pending)
        self.stats.admitted += 1
        depth = len(self._queue)
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, depth)
        rec = self.recorder
        if rec.enabled:
            rec.observe("serve.queue.depth_count", depth)
        self._ensure_batcher()
        response = await pending.future
        self._observe_latency(self._now() - pending.admitted_seconds)
        return response

    def _ensure_batcher(self) -> None:
        if self._batcher is None and not self._closing:
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())

    async def _batch_loop(self) -> None:
        """Drain the queue one gather window at a time.

        The task retires itself when the queue empties; the emptiness
        check and the ``self._batcher = None`` clear happen in the same
        synchronous step, so a request admitted concurrently either sees
        the live task or starts a fresh one — no lost wakeups.
        """
        while True:
            if not self._queue:
                self._batcher = None
                return
            await self._sleep(self.config.gather_window_seconds)
            self._run_batch()

    def _run_batch(self) -> None:
        """Answer up to ``max_batch_points`` queued requests in one pass."""
        rec = self.recorder
        batch: list[_Pending] = []
        while self._queue and len(batch) < self.config.max_batch_points:
            pending = self._queue.popleft()
            if pending.future.cancelled():
                continue
            if pending.deadline_seconds is not None and self._now() > pending.deadline_seconds:
                self.stats.deadline_expired += 1
                if rec.enabled:
                    rec.incr("serve.deadline.expired_count")
                pending.future.set_result(
                    protocol.error_response(
                        pending.request.id,
                        ServeError(
                            "deadline",
                            "deadline expired after "
                            f"{self._now() - pending.admitted_seconds:.6f}s in queue",
                        ),
                    )
                )
                continue
            batch.append(pending)
        if not batch:
            return

        # Collapse duplicates: one leader per request key. Followers are
        # answered through ``service.evaluate`` afterwards — by then the
        # leader's row is in the memo, so the follower is a hit, exactly
        # as it would have been had the requests arrived serially.
        leaders: dict["RequestKey", _Pending] = {}
        followers: list[_Pending] = []
        for pending in batch:
            if pending.key in leaders:
                followers.append(pending)
                self.stats.deduped += 1
                if rec.enabled:
                    rec.incr("serve.dedup.joined_count")
            else:
                leaders[pending.key] = pending

        # Group leaders by (config, directory): ``evaluate_grid_columns``
        # takes one config and one input state per call.
        groups: dict[tuple, list[_Pending]] = {}
        for pending in leaders.values():
            group_key = (id(pending.request.config), pending.request.directory)
            groups.setdefault(group_key, []).append(pending)

        for group in groups.values():
            self.stats.batches += 1
            if rec.enabled:
                rec.incr("serve.coalesce.batches_count")
                rec.observe("serve.coalesce.batch_size_count", len(group))
            if len(group) > 1:
                self.stats.coalesced_points += len(group)
            columns, failures = self._evaluate_points(
                group[0].request.config,
                [pending.request.streams for pending in group],
                group[0].request.directory,
                labels=[str(pending.request.id) for pending in group],
            )
            failed = dict(failures)
            for row, pending in enumerate(group):
                if pending.future.done():
                    continue
                original = failed.get(row)
                if original is not None:
                    self.stats.errors += 1
                    if rec.enabled:
                        rec.incr("serve.errors_count")
                    pending.future.set_result(
                        protocol.error_response(
                            pending.request.id, ServeError("evaluation", str(original))
                        )
                    )
                    continue
                self.stats.completed += 1
                pending.future.set_result(
                    protocol.ok_response(
                        pending.request.id,
                        "evaluate",
                        protocol.encode_point(
                            columns,
                            row,
                            include_counters=pending.request.include_counters,
                        ),
                    )
                )

        for pending in followers:
            if pending.future.done():
                continue
            request = pending.request
            try:
                result = self.service.evaluate(
                    request.config, request.streams, request.directory, recorder=rec
                )
            except ReproError as exc:
                self.stats.errors += 1
                if rec.enabled:
                    rec.incr("serve.errors_count")
                pending.future.set_result(
                    protocol.error_response(request.id, ServeError("evaluation", str(exc)))
                )
                continue
            self.stats.completed += 1
            pending.future.set_result(
                protocol.ok_response(
                    request.id,
                    "evaluate",
                    protocol.encode_result(
                        result, include_counters=request.include_counters
                    ),
                )
            )

    def _evaluate_points(
        self,
        config: "MachineConfig",
        points: list[tuple["StreamSpec", ...]],
        directory: "DirectoryState",
        *,
        labels: list[str],
    ) -> tuple["ResultColumns", list[tuple[int, Exception]]]:
        """Evaluate ``points`` as columnar batches, isolating poisoned rows.

        ``evaluate_grid_columns`` stops at the first failing point; this
        wrapper records the failure against that row only, keeps the
        partial batch, and resumes with the remaining points, so one bad
        request never takes down its batch-mates. Rows come back in
        ``points`` order; ``failures`` maps row index → original error.
        """
        from repro.memsim.kernels.columns import ResultColumns

        out = ResultColumns()
        failures: list[tuple[int, Exception]] = []
        base = 0
        remaining = points
        remaining_labels = labels
        while remaining:
            try:
                block = self.service.evaluate_grid_columns(
                    config,
                    remaining,
                    directory,
                    recorder=self.recorder,
                    labels=remaining_labels,
                    grid_name="serve.batch",
                )
            except GridPointError as exc:
                partial = exc.partial
                if partial is not None:
                    out.extend(partial)
                failures.append((base + exc.index, exc))
                skip = exc.index + 1
                # Placeholder row for the poisoned point keeps row
                # numbering aligned with the input order.
                out.append_result(_EMPTY_RESULT, directory_after=None)
                base += skip
                remaining = remaining[skip:]
                remaining_labels = remaining_labels[skip:]
                continue
            out.extend(block)
            break
        return out, failures

    # ------------------------------------------------------------------
    # shed / stats helpers
    # ------------------------------------------------------------------

    def _shed(self, count: int) -> None:
        self.stats.shed += count
        rec = self.recorder
        if rec.enabled:
            for _ in range(count):
                rec.incr("serve.shed_count")

    def _observe_latency(self, wall_seconds: float) -> None:
        self.stats.latencies.append(wall_seconds)
        rec = self.recorder
        if rec.enabled:
            rec.observe("serve.latency.wall_seconds", wall_seconds)

    # ------------------------------------------------------------------
    # TCP transport
    # ------------------------------------------------------------------

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start listening; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the tests and the CLI print
        the real one. The reader ``limit`` doubles as the frame-size
        bound: an overlong line raises inside ``readline`` and the
        connection is dropped as a protocol violation.
        """
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port, limit=self.config.max_frame_bytes
        )
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        write_lock = asyncio.Lock()
        in_flight: set["asyncio.Task[None]"] = set()
        try:
            while True:
                try:
                    line = await self._read_frame(reader)
                except ServeError as exc:
                    self.stats.protocol_drops += 1
                    if self.recorder.enabled:
                        self.recorder.incr("serve.protocol.drops_count")
                    await self._write_frame(
                        writer, write_lock, protocol.error_response(None, exc)
                    )
                    return
                if not line:
                    return
                respond = asyncio.get_running_loop().create_task(
                    self._respond(line, writer, write_lock)
                )
                in_flight.add(respond)
                respond.add_done_callback(in_flight.discard)
        except asyncio.CancelledError:
            # Server shutdown cancels connection tasks; finishing
            # normally here keeps asyncio's stream callback from
            # logging the cancellation as an error.
            return
        except (ConnectionError, OSError):
            self.stats.protocol_drops += 1
            if self.recorder.enabled:
                self.recorder.incr("serve.protocol.drops_count")
        finally:
            for respond in list(in_flight):
                respond.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # simlint: ignore[silent-except] -- already closing; the peer's RST is the expected outcome
                pass

    async def _read_frame(self, reader: asyncio.StreamReader) -> bytes:
        """One line off the socket, bounded in both time and size.

        Races ``readline`` against the frame timeout on the injected
        sleep so the slow-loris tests can fire it from a fake clock.
        Returns ``b""`` at EOF; raises ``ServeError("protocol", ...)``
        for a stalled or oversize frame.
        """
        loop = asyncio.get_running_loop()
        read = loop.create_task(_readline(reader))
        timer = loop.create_task(self._sleep(self.config.frame_timeout_seconds))
        try:
            done, _ = await asyncio.wait({read, timer}, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            read.cancel()
            timer.cancel()
            raise
        if read in done:
            timer.cancel()
            result = read.result()
            if isinstance(result, Exception):
                raise ServeError(
                    "protocol",
                    f"frame exceeds {self.config.max_frame_bytes} bytes",
                )
            return result
        read.cancel()
        raise ServeError(
            "protocol",
            f"no complete frame within {self.config.frame_timeout_seconds}s",
        )

    async def _respond(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self.submit(line)
        await self._write_frame(writer, write_lock, response)

    async def _write_frame(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Mapping[str, object],
    ) -> None:
        async with write_lock:
            try:
                writer.write(protocol.dump_line(response))
                await writer.drain()
            except (ConnectionError, OSError):
                # The client vanished mid-answer; the response dies with
                # the connection, nothing else is affected.
                self.stats.protocol_drops += 1
                if self.recorder.enabled:
                    self.recorder.incr("serve.protocol.drops_count")

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop accepting work and fail whatever is still queued.

        Idempotent. Queued ``evaluate`` futures are answered with a
        ``shutdown`` error rather than left hanging.
        """
        self._closing = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        batcher = self._batcher
        self._batcher = None
        if batcher is not None:
            batcher.cancel()
            try:
                await batcher
            except asyncio.CancelledError:  # simlint: ignore[silent-except] -- the cancellation is the point; the task holds no result
                pass
        while self._queue:
            pending = self._queue.popleft()
            if not pending.future.done():
                pending.future.set_result(
                    protocol.error_response(
                        pending.request.id,
                        ServeError("shutdown", "server closed before evaluation"),
                    )
                )


async def _readline(reader: asyncio.StreamReader) -> "bytes | Exception":
    """``readline`` that reports the over-limit ValueError as a value.

    ``asyncio.wait`` logs exceptions from unobserved tasks; returning
    the error keeps the race in :meth:`BandwidthServer._read_frame`
    quiet and lets it map the overrun to a protocol error.
    """
    try:
        return await reader.readline()
    except ValueError as exc:
        return exc


def _make_empty_result():
    from repro.memsim.evaluation import BandwidthResult

    return BandwidthResult(streams=(), directory_after=None)


#: Placeholder row appended for poisoned points so batch row numbering
#: stays aligned with input order (the row is never encoded — its
#: request is answered with the error instead).
_EMPTY_RESULT = _make_empty_result()
