"""``repro.serve``: the asyncio front door over the evaluation service.

The serving layer (ROADMAP item 1) turns many small concurrent
requests into few large columnar kernel calls:

* :mod:`repro.serve.protocol` — newline-delimited JSON frames and the
  byte-exact result encodings;
* :mod:`repro.serve.server` — :class:`BandwidthServer`: gather-window
  request coalescing, in-flight dedup against the memoized
  :class:`~repro.sweep.service.EvaluationService`, admission control
  with load shedding, and a TCP transport;
* :mod:`repro.serve.client` — a pipelining TCP client and the one-shot
  :func:`request_once` helper.

See README "Serving" and DESIGN.md for the coalescing design and why
cache keys are unchanged by batching.
"""

from repro.serve.client import ServeClient, request_once
from repro.serve.protocol import PROTOCOL, Request, decode_request, encode_result
from repro.serve.server import BandwidthServer, ServeConfig, ServeStats

__all__ = [
    "PROTOCOL",
    "BandwidthServer",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeStats",
    "decode_request",
    "encode_result",
    "request_once",
]
