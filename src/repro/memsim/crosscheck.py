"""Cross-validation harness: analytic model vs. discrete-event replay.

The analytic model (:class:`~repro.memsim.bandwidth.BandwidthModel`) is
calibrated to the paper's curves; the discrete-event engine
(:mod:`repro.memsim.engine`) replays traces through the same component
models with no bandwidth formulas of its own. Where both agree, the
curve shape is a *consequence of the mechanisms*; where they diverge,
the divergence is a documented model limitation. This harness runs the
anchor configurations on both and reports agreement, so the validation
that lives in the test suite is also available to library users (and to
anyone re-calibrating for a different device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memsim.bandwidth import BandwidthModel
from repro.memsim.context import eval_context
from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.spec import Layout, Op, Pattern
from repro.units import MIB


@dataclass(frozen=True)
class AnchorConfig:
    """One configuration checked on both fidelity levels."""

    label: str
    op: Op
    threads: int
    access_size: int
    layout: Layout = Layout.INDIVIDUAL
    pattern: Pattern = Pattern.SEQUENTIAL
    #: Relative tolerance for this anchor; wider where the replay is
    #: known to be coarse (documented in EXPERIMENTS.md).
    tolerance: float = 0.45


#: The calibrated anchors both levels must agree on.
DEFAULT_ANCHORS: tuple[AnchorConfig, ...] = (
    AnchorConfig("read 1T 4KB", Op.READ, 1, 4096),
    AnchorConfig("read 8T 4KB", Op.READ, 8, 4096),
    AnchorConfig("read 18T 4KB", Op.READ, 18, 4096),
    AnchorConfig("read 18T 64B individual", Op.READ, 18, 64),
    AnchorConfig("read 36T 4KB grouped", Op.READ, 36, 4096, layout=Layout.GROUPED),
    AnchorConfig(
        "read 36T 64B grouped", Op.READ, 36, 64, layout=Layout.GROUPED,
        tolerance=0.6,
    ),
    AnchorConfig("write 1T 4KB", Op.WRITE, 1, 4096),
    AnchorConfig("write 4T 4KB", Op.WRITE, 4, 4096),
    AnchorConfig("write 6T 4KB", Op.WRITE, 6, 4096),
    AnchorConfig("write 18T 4KB", Op.WRITE, 18, 4096),
    AnchorConfig("write 36T 64B individual", Op.WRITE, 36, 64),
    AnchorConfig(
        "write 36T 64B grouped", Op.WRITE, 36, 64, layout=Layout.GROUPED,
        tolerance=0.6,
    ),
    AnchorConfig(
        "random read 36T 256B", Op.READ, 36, 256, pattern=Pattern.RANDOM,
    ),
    AnchorConfig(
        "random read 18T 64B", Op.READ, 18, 64, pattern=Pattern.RANDOM,
        tolerance=0.6,
    ),
)


@dataclass(frozen=True)
class AnchorOutcome:
    """Agreement of one anchor across the two fidelity levels."""

    anchor: AnchorConfig
    analytic_gbps: float
    engine_gbps: float

    @property
    def relative_error(self) -> float:
        if self.analytic_gbps <= 0:
            raise ConfigurationError("analytic bandwidth must be positive")
        return abs(self.engine_gbps - self.analytic_gbps) / self.analytic_gbps

    @property
    def agrees(self) -> bool:
        return self.relative_error <= self.anchor.tolerance


@dataclass
class CrossCheckReport:
    """All anchor outcomes plus summary judgements."""

    outcomes: list[AnchorOutcome] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return all(o.agrees for o in self.outcomes)

    @property
    def worst(self) -> AnchorOutcome:
        if not self.outcomes:
            raise ConfigurationError("empty cross-check report")
        return max(self.outcomes, key=lambda o: o.relative_error)

    def describe(self) -> str:
        lines = ["analytic model vs. discrete-event replay:"]
        for o in self.outcomes:
            mark = "ok " if o.agrees else "DIVERGES"
            lines.append(
                f"  [{mark}] {o.anchor.label:<28} "
                f"analytic={o.analytic_gbps:6.2f} GB/s "
                f"engine={o.engine_gbps:6.2f} GB/s "
                f"(err {o.relative_error * 100:4.1f}%, tol "
                f"{o.anchor.tolerance * 100:.0f}%)"
            )
        worst = self.worst
        lines.append(
            f"  worst: {worst.anchor.label} at "
            f"{worst.relative_error * 100:.1f}% relative error"
        )
        return "\n".join(lines)


def cross_check(
    anchors: tuple[AnchorConfig, ...] = DEFAULT_ANCHORS,
    model: BandwidthModel | None = None,
    volume_bytes: int = 8 * MIB,
) -> CrossCheckReport:
    """Run every anchor on both fidelity levels.

    ``volume_bytes`` bounds the replay length per anchor (steady state is
    reached quickly; the default keeps the whole sweep under seconds).
    """
    if not anchors:
        raise ConfigurationError("need at least one anchor")
    model = model if model is not None else BandwidthModel()
    report = CrossCheckReport()
    for anchor in anchors:
        if anchor.pattern is Pattern.RANDOM:
            if anchor.op is Op.READ:
                analytic = model.random_read(anchor.threads, anchor.access_size)
            else:
                analytic = model.random_write(anchor.threads, anchor.access_size)
        elif anchor.op is Op.READ:
            analytic = model.sequential_read(
                anchor.threads, anchor.access_size, layout=anchor.layout
            )
        else:
            analytic = model.sequential_write(
                anchor.threads, anchor.access_size, layout=anchor.layout
            )
        total = max(volume_bytes, anchor.threads * anchor.access_size * 16)
        engine = simulate(
            EngineConfig(
                op=anchor.op,
                threads=anchor.threads,
                access_size=anchor.access_size,
                layout=anchor.layout,
                pattern=anchor.pattern,
                total_bytes=total,
                region_bytes=256 * MIB if anchor.pattern is Pattern.RANDOM else None,
            ),
            context=eval_context(model.config),
        ).gbps
        report.outcomes.append(
            AnchorOutcome(anchor=anchor, analytic_gbps=analytic, engine_gbps=engine)
        )
    return report
