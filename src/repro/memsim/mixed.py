"""Mixed read/write interference model (paper §5.1).

When reads and writes hit the same PMEM DIMMs concurrently, both lose
bandwidth — and the loss is driven by the *presence* and demand of the
other side, not by the bandwidth it achieves. A single write thread
moving under 3 GB/s costs a 30-thread reader pool ~5 GB/s because write
requests occupy the iMC/media disproportionately long; conversely, a
saturating reader pool pushes writers to about a third of their maximum
while a single reader barely registers.

The calibrated law (see :class:`~repro.memsim.calibration.MixedCalibration`):

    read_factor  = 1 / (1 + a * write_demand)
    write_factor = 1 / (1 + c * read_demand ** e)

where demand is the bandwidth each side would achieve *alone*, normalised
by its device maximum and clamped to [0, 1]. The combined bandwidth never
exceeds the uncontended read maximum, matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.calibration import DeviceCalibration
from repro.memsim.topology import MediaKind


@dataclass(frozen=True)
class MixedOutcome:
    """Resolved bandwidths of a concurrent read and write stream pair."""

    read_gbps: float
    write_gbps: float
    read_alone_gbps: float
    write_alone_gbps: float

    @property
    def total_gbps(self) -> float:
        """Combined read+write bandwidth in decimal GB/s."""
        return self.read_gbps + self.write_gbps

    @property
    def read_retention(self) -> float:
        """Fraction of the uncontended read bandwidth retained."""
        if self.read_alone_gbps <= 0:
            return 1.0
        return self.read_gbps / self.read_alone_gbps

    @property
    def write_retention(self) -> float:
        """Fraction of the uncontended write bandwidth retained."""
        if self.write_alone_gbps <= 0:
            return 1.0
        return self.write_gbps / self.write_alone_gbps


@dataclass(frozen=True)
class MediaInterferenceParams:
    """Interference coefficients of one media kind, derived from config.

    A pure restatement of the branch :func:`media_params` takes — the
    stored values are exactly what :func:`interference_factors` would
    compute inline, so passing precomputed params (as the per-config
    :class:`~repro.memsim.context.EvalContext` does) changes no floats.
    """

    read_max_gbps: float
    write_max_gbps: float
    read_coeff: float
    write_coeff: float
    write_exponent: float


def media_params(cal: DeviceCalibration, media: MediaKind) -> MediaInterferenceParams:
    """The interference coefficients for ``media`` under ``cal``.

    DRAM shows the same qualitative interference but much weaker (§5.1:
    "the read/write imbalance is considerably smaller on DRAM"), modeled
    by scaling both coefficients down.
    """
    m = cal.mixed
    if media is MediaKind.PMEM:
        read_max = cal.pmem.seq_read_max
        write_max = cal.pmem.seq_write_max
        read_coeff, write_coeff = m.read_interference_coeff, m.write_interference_coeff
    elif media is MediaKind.DRAM:
        read_max = cal.dram.seq_read_max
        write_max = cal.dram.seq_write_max
        dram_softening = 0.35
        read_coeff = m.read_interference_coeff * dram_softening
        write_coeff = m.write_interference_coeff * dram_softening
    else:
        raise WorkloadError(f"mixed interference not modeled for media {media}")
    return MediaInterferenceParams(
        read_max_gbps=read_max,
        write_max_gbps=write_max,
        read_coeff=read_coeff,
        write_coeff=write_coeff,
        write_exponent=m.write_interference_exponent,
    )


def interference_factors(
    cal: DeviceCalibration,
    media: MediaKind,
    read_alone_gbps: float,
    write_alone_gbps: float,
    *,
    params: MediaInterferenceParams | None = None,
) -> tuple[float, float]:
    """Return ``(read_factor, write_factor)`` for one device group.

    ``params`` short-circuits the coefficient derivation with a
    precomputed :class:`MediaInterferenceParams` (it must come from
    :func:`media_params` on the same calibration — the evaluation context
    guarantees this); the factors are bit-identical either way.
    """
    if read_alone_gbps < 0 or write_alone_gbps < 0:
        raise WorkloadError("standalone bandwidths cannot be negative")
    p = params if params is not None else media_params(cal, media)
    write_demand = min(1.0, write_alone_gbps / p.write_max_gbps)
    read_demand = min(1.0, read_alone_gbps / p.read_max_gbps)
    read_factor = 1.0 / (1.0 + p.read_coeff * write_demand)
    write_factor = 1.0 / (
        1.0 + p.write_coeff * read_demand ** p.write_exponent
    )
    return read_factor, write_factor


def resolve(
    cal: DeviceCalibration,
    media: MediaKind,
    read_alone_gbps: float,
    write_alone_gbps: float,
    *,
    params: MediaInterferenceParams | None = None,
) -> MixedOutcome:
    """Resolve a concurrent read/write pair into achieved bandwidths.

    Enforces the device-capacity invariant: the read and write shares may
    not add up to more than one device's worth of time
    (``B_r / R_max + B_w / W_max <= 1``); if the interference factors
    alone leave the pair above capacity both sides are scaled down
    proportionally. ``params`` is the same precomputed-coefficient
    shortcut :func:`interference_factors` takes.
    """
    read_factor, write_factor = interference_factors(
        cal, media, read_alone_gbps, write_alone_gbps, params=params
    )
    read_gbps = read_alone_gbps * read_factor
    write_gbps = write_alone_gbps * write_factor

    if params is not None:
        read_max, write_max = params.read_max_gbps, params.write_max_gbps
    elif media is MediaKind.PMEM:
        read_max, write_max = cal.pmem.seq_read_max, cal.pmem.seq_write_max
    else:
        read_max, write_max = cal.dram.seq_read_max, cal.dram.seq_write_max
    utilization = read_gbps / read_max + write_gbps / write_max
    if utilization > 1.0:
        read_gbps /= utilization
        write_gbps /= utilization

    return MixedOutcome(
        read_gbps=read_gbps,
        write_gbps=write_gbps,
        read_alone_gbps=read_alone_gbps,
        write_alone_gbps=write_alone_gbps,
    )
