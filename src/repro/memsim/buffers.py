"""Optane-internal buffer models: the 256 B read buffer and the
write-combining (XP) buffer.

These two buffers explain most of the paper's write findings (§4.1-§4.2):

* The media works in 256 B lines while the CPU sends 64 B cache lines, so
  the DIMM controller keeps a small write-combining buffer that merges
  neighbouring 64 B stores into full 256 B media writes. A single
  sequential stream combines perfectly; many concurrent streams writing
  large blocks overflow the buffer, forcing partial-line flushes and
  read-modify-write cycles — the "scaling both threads and access size
  collapses bandwidth" boomerang of Figure 8.
* Grouped writes smaller than 256 B make *different threads* share one
  media line, which defeats combining almost entirely (2.6 vs 9.6 GB/s
  for 64 B grouped vs individual at 36 threads).
* On the read side, a 256 B buffer serves consecutive 64 B reads from one
  media read, so small sequential reads see no read amplification while
  small *random* reads pay the full 256/size factor (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.calibration import PmemCalibration
from repro.memsim.constants import OPTANE_LINE


def _check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class WriteCombiningModel:
    """Efficiency of the per-DIMM write-combining buffer.

    ``enabled=False`` models a hypothetical controller without combining
    (every 64 B store becomes a 256 B read-modify-write); it exists for
    the ablation benchmark, not as a real hardware mode.
    """

    pmem: PmemCalibration
    enabled: bool = True

    #: Access sizes at or below this combine safely regardless of thread
    #: count (paper §4.2: the 256 B secondary peak at 18+ threads, with
    #: performance decreasing "for access sizes larger than 256 Byte").
    pressure_size_threshold: int = 256

    #: Reference size of the pressure term's size component.
    pressure_size_scale: int = 1024

    def efficiency(self, threads: int, access_size: int) -> float:
        """Combining efficiency in (0, 1]: achieved / ideal media writes.

        The pressure term grows with the product of *excess* threads
        (beyond the 4-6 the device can absorb) and access size; either
        alone is tolerated, together they overflow the buffer. This
        reproduces Figure 8's boomerang:

        * <= ``wc_safe_threads`` threads: always 1.0 (4-6 threads hold the
          12.6 GB/s peak out to 32 MB accesses);
        * small accesses (<= 512 B): always 1.0 (the 256 B second peak);
        * e.g. 8 threads x 16 KB or 18 threads x 4 KB: well below 1,
          flooring at ``wc_floor`` (~5-6 GB/s of 13.2).
        """
        _check_positive("threads", threads)
        _check_positive("access size", access_size)
        if not self.enabled:
            # Without combining every store is a partial-line RMW.
            return 64 / OPTANE_LINE
        if threads <= self.pmem.wc_safe_threads:
            return 1.0
        if access_size <= self.pressure_size_threshold:
            return 1.0
        excess_threads = (threads - self.pmem.wc_safe_threads) / self.pmem.wc_safe_threads
        thread_term = excess_threads ** self.pmem.wc_thread_exponent
        size_term = (access_size / self.pressure_size_scale) ** self.pmem.wc_size_exponent
        pressure = thread_term * size_term
        return max(self.pmem.wc_floor, 1.0 / (1.0 + self.pmem.wc_pressure_coeff * pressure))

    def grouped_small_write_factor(self, access_size: int) -> float:
        """Penalty for grouped writes below the 256 B media line.

        Different threads own neighbouring sub-line chunks, so the buffer
        cannot assemble full lines from any single stream; most stores
        degrade to read-modify-writes. The floor reflects the partial
        cross-thread combining that still happens (64 B grouped achieves
        ~27% of the individual bandwidth, not 25% x DIMM effects).
        """
        _check_positive("access size", access_size)
        if access_size >= OPTANE_LINE:
            return 1.0
        return max(0.45, access_size / OPTANE_LINE)

    def write_amplification(self, threads: int, access_size: int, grouped: bool) -> float:
        """Estimated media-write bytes per application byte.

        Inverse of the combining efficiency, plus the sub-line RMW term
        for grouped writes (a partial line costs a 256 B read *and* a
        256 B write for ``access_size`` useful bytes).
        """
        eff = self.efficiency(threads, access_size)
        amplification = 1.0 / eff
        if grouped and access_size < OPTANE_LINE:
            amplification *= OPTANE_LINE / access_size
        return amplification


@dataclass(frozen=True)
class ReadBufferModel:
    """The 256 B read buffer in front of the 3D-XPoint media."""

    pmem: PmemCalibration

    def sequential_amplification(self, access_size: int) -> float:
        """Media-read bytes per application byte for sequential streams.

        Consecutive accesses are resolved from the buffered 256 B line
        (§3.1: "the Optane controller can immediately answer consecutive
        requests from the loaded 256 Byte cache line without causing read
        amplification"), so sequential reads of any size have factor 1.
        """
        _check_positive("access size", access_size)
        return 1.0

    def random_amplification(self, access_size: int) -> float:
        """Media-read bytes per application byte for random accesses.

        A random access below 256 B still loads a full media line; larger
        accesses are line-aligned in expectation and amplify negligibly.
        """
        _check_positive("access size", access_size)
        if access_size >= OPTANE_LINE:
            return 1.0
        return OPTANE_LINE / access_size
