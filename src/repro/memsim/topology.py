"""Hardware topology model of a multi-socket PMEM server.

Models the structure shown in the paper's Figure 1: sockets containing
NUMA nodes, physical cores with hyperthread siblings, integrated memory
controllers (iMCs) with three memory channels each, PMEM and DRAM DIMMs
per channel, and the UPI link between sockets.

The default instance, :func:`paper_server`, is the paper's evaluation
machine: 2 x Intel Xeon Gold 5220S (18 physical cores each, 2-way SMT,
two NUMA nodes per socket), 6 x 128 GB Optane DIMMs and 6 x 16 GB DDR4
DIMMs per socket, one UPI link. Any other geometry can be built with
:func:`build_topology`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.memsim import constants as C


class MediaKind(enum.Enum):
    """The kind of memory device an access targets."""

    PMEM = "pmem"
    DRAM = "dram"
    SSD = "ssd"


@dataclass(frozen=True)
class Dimm:
    """One memory module on a specific channel of a specific iMC."""

    dimm_id: int
    kind: MediaKind
    capacity: int
    socket_id: int
    imc_id: int
    channel_id: int


@dataclass(frozen=True)
class Core:
    """One logical core. Physical cores are the non-hyperthread cores."""

    core_id: int
    socket_id: int
    node_id: int
    is_hyperthread: bool
    sibling_id: int


@dataclass(frozen=True)
class Imc:
    """One integrated memory controller serving three channels."""

    imc_id: int
    socket_id: int
    node_id: int


@dataclass(frozen=True)
class NumaNode:
    """One NUMA node: a cluster of cores plus one iMC.

    The paper distinguishes NUMA *nodes* (9 cores + 1 iMC) from NUMA
    *regions* (a whole socket = two nodes); access inside a region is
    near, across regions is far (§2.3).
    """

    node_id: int
    socket_id: int
    imc_id: int
    core_ids: tuple[int, ...]


@dataclass(frozen=True)
class Socket:
    """One CPU package, i.e. one NUMA region."""

    socket_id: int
    node_ids: tuple[int, ...]
    imc_ids: tuple[int, ...]


@dataclass(frozen=True)
class UpiLink:
    """A point-to-point UPI link between two sockets."""

    socket_a: int
    socket_b: int

    def connects(self, socket_id: int) -> bool:
        return socket_id in (self.socket_a, self.socket_b)


@dataclass(frozen=True)
class SystemTopology:
    """Immutable description of the whole server.

    Construct via :func:`build_topology` or :func:`paper_server`; the
    constructor does not validate, :meth:`validate` does and is called by
    both factories.
    """

    sockets: tuple[Socket, ...]
    nodes: tuple[NumaNode, ...]
    imcs: tuple[Imc, ...]
    cores: tuple[Core, ...]
    dimms: tuple[Dimm, ...]
    upi_links: tuple[UpiLink, ...] = field(default_factory=tuple)

    # -- validation --------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raise :class:`TopologyError` if bad."""
        socket_ids = {s.socket_id for s in self.sockets}
        if len(socket_ids) != len(self.sockets):
            raise TopologyError("duplicate socket ids")
        node_ids = {n.node_id for n in self.nodes}
        if len(node_ids) != len(self.nodes):
            raise TopologyError("duplicate NUMA node ids")
        imc_ids = {m.imc_id for m in self.imcs}
        if len(imc_ids) != len(self.imcs):
            raise TopologyError("duplicate iMC ids")
        core_ids = {c.core_id for c in self.cores}
        if len(core_ids) != len(self.cores):
            raise TopologyError("duplicate core ids")

        for node in self.nodes:
            if node.socket_id not in socket_ids:
                raise TopologyError(f"node {node.node_id} on unknown socket")
            if node.imc_id not in imc_ids:
                raise TopologyError(f"node {node.node_id} references unknown iMC")
            for cid in node.core_ids:
                if cid not in core_ids:
                    raise TopologyError(f"node {node.node_id} references unknown core {cid}")
        for imc in self.imcs:
            if imc.socket_id not in socket_ids:
                raise TopologyError(f"iMC {imc.imc_id} on unknown socket")
        for core in self.cores:
            if core.node_id not in node_ids:
                raise TopologyError(f"core {core.core_id} on unknown node")
            if core.sibling_id not in core_ids:
                raise TopologyError(f"core {core.core_id} has unknown sibling")
            sibling = self.core(core.sibling_id)
            if sibling.sibling_id != core.core_id:
                raise TopologyError(f"core {core.core_id} sibling link is not symmetric")
            if sibling.is_hyperthread == core.is_hyperthread:
                raise TopologyError(f"core {core.core_id} and sibling are both (non-)HT")
        for dimm in self.dimms:
            if dimm.imc_id not in imc_ids:
                raise TopologyError(f"DIMM {dimm.dimm_id} on unknown iMC")
            imc = self.imc(dimm.imc_id)
            if imc.socket_id != dimm.socket_id:
                raise TopologyError(f"DIMM {dimm.dimm_id} socket/iMC mismatch")
            if not 0 <= dimm.channel_id < C.CHANNELS_PER_IMC:
                raise TopologyError(f"DIMM {dimm.dimm_id} on invalid channel")
            if dimm.capacity <= 0:
                raise TopologyError(f"DIMM {dimm.dimm_id} has non-positive capacity")
        for link in self.upi_links:
            if link.socket_a not in socket_ids or link.socket_b not in socket_ids:
                raise TopologyError("UPI link connects unknown socket")
            if link.socket_a == link.socket_b:
                raise TopologyError("UPI link must connect two distinct sockets")
        if len(self.sockets) > 1 and not self.upi_links:
            raise TopologyError("multi-socket system requires at least one UPI link")

    # -- lookups -----------------------------------------------------

    def socket(self, socket_id: int) -> Socket:
        for s in self.sockets:
            if s.socket_id == socket_id:
                return s
        raise TopologyError(f"no such socket: {socket_id}")

    def node(self, node_id: int) -> NumaNode:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise TopologyError(f"no such NUMA node: {node_id}")

    def imc(self, imc_id: int) -> Imc:
        for m in self.imcs:
            if m.imc_id == imc_id:
                return m
        raise TopologyError(f"no such iMC: {imc_id}")

    def core(self, core_id: int) -> Core:
        for c in self.cores:
            if c.core_id == core_id:
                return c
        raise TopologyError(f"no such core: {core_id}")

    # -- derived queries ---------------------------------------------

    def dimms_of(self, socket_id: int, kind: MediaKind) -> tuple[Dimm, ...]:
        """All DIMMs of ``kind`` attached to ``socket_id``."""
        return tuple(
            d for d in self.dimms if d.socket_id == socket_id and d.kind == kind
        )

    def interleave_ways(self, socket_id: int, kind: MediaKind) -> int:
        """Number of DIMMs data of ``kind`` is striped across on a socket."""
        return len(self.dimms_of(socket_id, kind))

    def physical_cores(self, socket_id: int) -> tuple[Core, ...]:
        return tuple(
            c
            for c in self.cores
            if c.socket_id == socket_id and not c.is_hyperthread
        )

    def logical_cores(self, socket_id: int) -> tuple[Core, ...]:
        return tuple(c for c in self.cores if c.socket_id == socket_id)

    def physical_core_count(self, socket_id: int) -> int:
        return len(self.physical_cores(socket_id))

    def far_socket(self, socket_id: int) -> Socket:
        """The remote socket (only defined for two-socket systems)."""
        others = [s for s in self.sockets if s.socket_id != socket_id]
        if len(others) != 1:
            raise TopologyError(
                "far_socket is only defined for two-socket topologies; "
                f"found {len(self.sockets)} sockets"
            )
        return others[0]

    def upi_between(self, socket_a: int, socket_b: int) -> UpiLink:
        for link in self.upi_links:
            if link.connects(socket_a) and link.connects(socket_b):
                return link
        raise TopologyError(f"no UPI link between sockets {socket_a} and {socket_b}")

    def capacity(self, kind: MediaKind) -> int:
        """Total installed capacity of ``kind`` across all sockets, bytes."""
        return sum(d.capacity for d in self.dimms if d.kind == kind)

    def socket_capacity(self, socket_id: int, kind: MediaKind) -> int:
        return sum(d.capacity for d in self.dimms_of(socket_id, kind))

    @property
    def socket_count(self) -> int:
        return len(self.sockets)

    def describe(self) -> str:
        """One-paragraph human-readable summary (used by examples)."""
        lines = [f"{self.socket_count}-socket system:"]
        for s in self.sockets:
            pmem = self.dimms_of(s.socket_id, MediaKind.PMEM)
            dram = self.dimms_of(s.socket_id, MediaKind.DRAM)
            cores = self.physical_core_count(s.socket_id)
            logical = len(self.logical_cores(s.socket_id))
            lines.append(
                f"  socket {s.socket_id}: {cores} physical / {logical} logical cores, "
                f"{len(pmem)} PMEM DIMMs ({sum(d.capacity for d in pmem) >> 30} GiB), "
                f"{len(dram)} DRAM DIMMs ({sum(d.capacity for d in dram) >> 30} GiB)"
            )
        return "\n".join(lines)


def build_topology(
    sockets: int = C.SOCKETS,
    physical_cores_per_socket: int = C.PHYSICAL_CORES_PER_SOCKET,
    numa_nodes_per_socket: int = C.NUMA_NODES_PER_SOCKET,
    imcs_per_socket: int = C.IMCS_PER_SOCKET,
    channels_per_imc: int = C.CHANNELS_PER_IMC,
    pmem_dimm_capacity: int = C.PMEM_DIMM_CAPACITY,
    dram_dimm_capacity: int = C.DRAM_DIMM_CAPACITY,
) -> SystemTopology:
    """Construct and validate a regular topology.

    Every iMC gets one PMEM and one DRAM DIMM per channel, matching the
    paper's fully populated configuration. ``numa_nodes_per_socket`` must
    equal ``imcs_per_socket`` (each node owns one iMC) and must divide the
    physical core count evenly.
    """
    if sockets < 1:
        raise TopologyError("need at least one socket")
    if numa_nodes_per_socket != imcs_per_socket:
        raise TopologyError("each NUMA node must own exactly one iMC")
    if physical_cores_per_socket % numa_nodes_per_socket != 0:
        raise TopologyError("cores must divide evenly across NUMA nodes")

    cores_per_node = physical_cores_per_socket // numa_nodes_per_socket
    socket_objs: list[Socket] = []
    nodes: list[NumaNode] = []
    imcs: list[Imc] = []
    cores: list[Core] = []
    dimms: list[Dimm] = []

    next_core = 0
    next_dimm = 0
    for sid in range(sockets):
        node_ids: list[int] = []
        imc_ids: list[int] = []
        for local_node in range(numa_nodes_per_socket):
            node_id = sid * numa_nodes_per_socket + local_node
            imc_id = node_id  # one iMC per node, shared numbering
            node_ids.append(node_id)
            imc_ids.append(imc_id)
            imcs.append(Imc(imc_id=imc_id, socket_id=sid, node_id=node_id))

            node_core_ids: list[int] = []
            for _ in range(cores_per_node):
                phys_id = next_core
                ht_id = next_core + 1
                next_core += 2
                cores.append(
                    Core(
                        core_id=phys_id,
                        socket_id=sid,
                        node_id=node_id,
                        is_hyperthread=False,
                        sibling_id=ht_id,
                    )
                )
                cores.append(
                    Core(
                        core_id=ht_id,
                        socket_id=sid,
                        node_id=node_id,
                        is_hyperthread=True,
                        sibling_id=phys_id,
                    )
                )
                node_core_ids.extend((phys_id, ht_id))
            nodes.append(
                NumaNode(
                    node_id=node_id,
                    socket_id=sid,
                    imc_id=imc_id,
                    core_ids=tuple(node_core_ids),
                )
            )
            for channel in range(channels_per_imc):
                dimms.append(
                    Dimm(
                        dimm_id=next_dimm,
                        kind=MediaKind.PMEM,
                        capacity=pmem_dimm_capacity,
                        socket_id=sid,
                        imc_id=imc_id,
                        channel_id=channel,
                    )
                )
                next_dimm += 1
                dimms.append(
                    Dimm(
                        dimm_id=next_dimm,
                        kind=MediaKind.DRAM,
                        capacity=dram_dimm_capacity,
                        socket_id=sid,
                        imc_id=imc_id,
                        channel_id=channel,
                    )
                )
                next_dimm += 1
        socket_objs.append(
            Socket(socket_id=sid, node_ids=tuple(node_ids), imc_ids=tuple(imc_ids))
        )

    links = tuple(
        UpiLink(socket_a=a, socket_b=b)
        for a in range(sockets)
        for b in range(a + 1, sockets)
    )
    topology = SystemTopology(
        sockets=tuple(socket_objs),
        nodes=tuple(nodes),
        imcs=tuple(imcs),
        cores=tuple(cores),
        dimms=dimms and tuple(dimms),
        upi_links=links,
    )
    topology.validate()
    return topology


def paper_server() -> SystemTopology:
    """The paper's dual-socket Xeon Gold 5220S evaluation server."""
    return build_topology()
