"""Memory-subsystem simulator: the reproduction's hardware substrate.

Public surface:

* :func:`~repro.memsim.topology.paper_server` /
  :func:`~repro.memsim.topology.build_topology` — hardware layout;
* :func:`~repro.memsim.calibration.paper_calibration` — fitted device
  profile;
* :class:`~repro.memsim.config.MachineConfig` /
  :class:`~repro.memsim.config.DirectoryState` — the immutable inputs of
  the pure evaluation core;
* :func:`~repro.memsim.evaluation.evaluate` — the analytic steady-state
  model behind every microbenchmark figure, as a pure function;
* :class:`~repro.memsim.bandwidth.BandwidthModel` — the deprecated
  mutable façade over it, kept for backward compatibility;
* :class:`~repro.memsim.spec.StreamSpec` and friends — workload
  descriptions;
* :mod:`repro.memsim.engine` — the discrete-event cross-check.
"""

from repro.memsim.address import DaxMode, InterleaveMap, MappedRegion
from repro.memsim.bandwidth import BandwidthModel, BandwidthResult, StreamResult
from repro.memsim.calibration import DeviceCalibration, paper_calibration
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.context import EvalContext, eval_context
from repro.memsim.evaluation import evaluate
from repro.memsim.counters import PerfCounters
from repro.memsim.memory_mode import MemoryModeConfig, MemoryModeModel
from repro.memsim.mixed import MixedOutcome
from repro.memsim.wear import WearEstimate, wear_from_counters
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec, read_stream, write_stream
from repro.memsim.topology import MediaKind, SystemTopology, build_topology, paper_server

__all__ = [
    "BandwidthModel",
    "BandwidthResult",
    "DaxMode",
    "DeviceCalibration",
    "DirectoryState",
    "EvalContext",
    "InterleaveMap",
    "MachineConfig",
    "Layout",
    "MappedRegion",
    "MediaKind",
    "MemoryModeConfig",
    "MemoryModeModel",
    "MixedOutcome",
    "Op",
    "Pattern",
    "PerfCounters",
    "PinningPolicy",
    "StreamResult",
    "StreamSpec",
    "SystemTopology",
    "WearEstimate",
    "build_topology",
    "eval_context",
    "evaluate",
    "paper_calibration",
    "paper_config",
    "paper_server",
    "read_stream",
    "wear_from_counters",
    "write_stream",
]
