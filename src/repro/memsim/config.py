"""Immutable machine configuration and explicit coherence-directory state.

The evaluation core (:mod:`repro.memsim.evaluation`) is a pure function
of three values:

* a :class:`MachineConfig` — topology, calibration, and the two model
  ablation toggles, frozen and hashable so it can key caches;
* the streams to evaluate;
* a :class:`DirectoryState` — the cross-socket coherence directory as an
  explicit immutable value (cold, warm, or any partial in-between)
  instead of hidden mutable state on the model object.

Both types are content-hashable, which is what makes the memoized sweep
service (:mod:`repro.sweep`) possible: two configurations that describe
the same machine share one cache entry regardless of how they were
constructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.memsim.calibration import DeviceCalibration, paper_calibration
from repro.memsim.topology import SystemTopology, paper_server


@dataclass(frozen=True)
class DirectoryState:
    """Immutable snapshot of the cross-socket coherence directory.

    The paper's directory warm-up is a per-(reader socket, home socket)
    effect (§3.4): the first multi-threaded far traversal crawls while
    mappings are reassigned, and any completed traversal — including a
    single-threaded priming pass — warms the pair. This type records the
    warm pairs as a value; "touching" a pair returns a *new* state, so an
    evaluation can never leave residue behind in its inputs.
    """

    warm_pairs: frozenset[tuple[int, int]] = frozenset()

    @classmethod
    def cold(cls) -> "DirectoryState":
        """The state before any far traversal (first runs pay remapping)."""
        return _COLD

    @classmethod
    def warm(cls, topology: SystemTopology) -> "DirectoryState":
        """Every socket pair pre-touched (models a priming pass, §3.4)."""
        return cls(frozenset(
            (a.socket_id, b.socket_id)
            for a in topology.sockets
            for b in topology.sockets
            if a.socket_id != b.socket_id
        ))

    def is_warm(self, reader_socket: int, home_socket: int) -> bool:
        """Whether a far read from ``reader_socket`` runs at warm speed."""
        if reader_socket == home_socket:
            return True
        return (reader_socket, home_socket) in self.warm_pairs

    def touch(self, reader_socket: int, home_socket: int) -> "DirectoryState":
        """State after a completed far traversal warmed the mapping."""
        if reader_socket == home_socket:
            return self
        if (reader_socket, home_socket) in self.warm_pairs:
            return self
        return DirectoryState(self.warm_pairs | {(reader_socket, home_socket)})

    def invalidate(self, home_socket: int) -> "DirectoryState":
        """State after dropping all warm mappings for one home socket."""
        kept = frozenset(p for p in self.warm_pairs if p[1] != home_socket)
        return self if kept == self.warm_pairs else DirectoryState(kept)

    def restrict(self, pairs: frozenset[tuple[int, int]]) -> "DirectoryState":
        """Projection onto ``pairs`` — the warmth an evaluation can observe.

        Used by the sweep service to normalize cache keys: an evaluation
        that performs no far reads produces identical results under any
        directory state, so all such calls share one cache entry.
        """
        kept = self.warm_pairs & pairs
        return self if kept == self.warm_pairs else DirectoryState(kept)


_COLD = DirectoryState()


@dataclass(frozen=True)
class MachineConfig:
    """Immutable, hashable description of one simulated server.

    Bundles everything :func:`repro.memsim.evaluation.evaluate` needs
    besides the workload itself: the hardware layout, the fitted device
    calibration, and the two what-if ablation toggles. The calibration is
    validated once at construction (not per evaluation), and the hash is
    computed once and cached — a topology holds hundreds of frozen
    component records, so hashing it per cache lookup would dominate.
    """

    topology: SystemTopology = field(default_factory=paper_server)
    calibration: DeviceCalibration = field(default_factory=paper_calibration)
    prefetcher_enabled: bool = True
    write_combining_enabled: bool = True

    def __post_init__(self) -> None:
        self.calibration.validate()
        object.__setattr__(self, "_cached_hash", hash((
            self.topology,
            self.calibration,
            self.prefetcher_enabled,
            self.write_combining_enabled,
        )))

    def __hash__(self) -> int:
        return self._cached_hash  # type: ignore[attr-defined]


@lru_cache(maxsize=1)
def paper_config() -> MachineConfig:
    """The shared paper-profile configuration (validated exactly once).

    Every default-constructed consumer (experiments, advisor, CLI) shares
    this instance, so their evaluations share cache entries too.
    """
    return MachineConfig()
