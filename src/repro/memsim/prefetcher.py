"""L2 hardware prefetcher model.

The paper traces three distinct read anomalies to the L2 streaming
prefetcher (§3.1, §3.2):

1. Grouped sequential reads of 1-2 KB dip well below neighbouring access
   sizes; disabling the prefetcher removes the dip.
2. With the prefetcher disabled, *low* thread counts (<8) lose bandwidth
   (fewer outstanding lines per core), while *high* thread counts gain
   (the prefetcher pollutes shared L2s when many streams are live).
3. Hyperthread pairs share an L2, so prefetcher pollution makes extra
   hyperthreads unhelpful for sequential reads — unless the prefetcher is
   off, in which case 36 threads reach the 40 GB/s peak again.

The model exposes each effect as a multiplicative bandwidth factor; the
paper's recommendation (do *not* disable the system-wide prefetcher) is
checked by an ablation benchmark rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.calibration import CpuCalibration
from repro.memsim.constants import INTERLEAVE_SIZE


@dataclass(frozen=True)
class PrefetcherModel:
    """Bandwidth factors contributed by the L2 hardware prefetcher."""

    cpu: CpuCalibration
    enabled: bool = True

    def grouped_sequential_factor(self, access_size: int) -> float:
        """Factor for grouped sequential reads at a given access size.

        The dip covers 1 KB and 2 KB accesses (paper Figure 3a). It is not
        PMEM-specific — the paper observes it on DRAM too — so callers
        apply it for both media. With the prefetcher disabled the curve is
        flat for accesses above 256 B.
        """
        if access_size <= 0:
            raise WorkloadError(f"access size must be positive, got {access_size}")
        if not self.enabled:
            return 1.0
        if 1024 <= access_size < INTERLEAVE_SIZE:
            return self.cpu.prefetch_dip_factor
        return 1.0

    def thread_scaling_factor(self, threads: int, physical_cores: int) -> float:
        """Factor for the interaction of prefetching with thread count.

        Enabled prefetcher: no penalty below the core count; beyond it,
        hyperthread pairs share an L2 that the prefetcher pollutes. The
        penalty is worst when the pairs are *imbalanced* (some cores run
        two threads, others one): Figure 4 shows 24 threads below the
        18-thread peak while 36 threads (fully balanced) recover it.

        Disabled prefetcher: low thread counts lose the prefetcher's
        memory-level parallelism; at and above the core count there is no
        pollution, so the factor is 1.
        """
        if threads < 1:
            raise WorkloadError(f"thread count must be >= 1, got {threads}")
        if physical_cores < 1:
            raise WorkloadError("physical core count must be >= 1")
        if not self.enabled:
            if threads < 8:
                return self.cpu.no_prefetch_low_thread_factor
            return 1.0
        if threads <= physical_cores:
            return 1.0
        shared_fraction = min(1.0, (threads - physical_cores) / physical_cores)
        imbalance = 4.0 * shared_fraction * (1.0 - shared_fraction)
        return 1.0 - self.cpu.ht_imbalance_penalty * imbalance

    def multi_stream_factor(self, independent_streams: int) -> float:
        """Factor when one core's prefetcher tracks several streams.

        §5.1 observes that even a second *read* stream costs bandwidth
        because the prefetcher fetches from two locations. Each additional
        independent stream beyond the first costs a small factor, floored
        so pathological stream counts do not drive bandwidth to zero.
        """
        if independent_streams < 1:
            raise WorkloadError("stream count must be >= 1")
        if not self.enabled:
            return 1.0
        return max(0.80, 1.0 - 0.035 * (independent_streams - 1))
