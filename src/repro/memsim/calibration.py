"""Calibrated device parameters for the memory-subsystem model.

Every quantity in this module is a *fitted* parameter: its value was
chosen once so that the mechanistic model in :mod:`repro.memsim.bandwidth`
reproduces the curves published in the paper. Each field documents the
paper datapoint that pins it. Experiment modules never contain bandwidth
constants of their own — if a figure looks wrong, this file and the
mechanisms are the only places to look.

The default profile, :func:`paper_calibration`, models the paper's
evaluation server (dual Xeon Gold 5220S, 6 x 128 GB Optane 100-series and
6 x 16 GB DDR4-2666 per socket). Alternative PMEM generations or DRAM
speeds can be modeled by constructing a different
:class:`DeviceCalibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import CalibrationError


@dataclass(frozen=True)
class PmemCalibration:
    """Fitted parameters of one socket's set of six Optane DIMMs."""

    #: Peak sequential read bandwidth of one socket's six DIMMs combined.
    #: Anchor: Fig. 3 peaks at ~40 GB/s.
    seq_read_max: float = 40.0

    #: Peak sequential write bandwidth of one socket (write-combining
    #: fully effective). Anchor: Fig. 7, global maximum 12.6 GB/s.
    seq_write_max: float = 13.2

    #: Per-thread fixed cost of issuing one read access, seconds. Small
    #: enough that individual-access read bandwidth is nearly flat in the
    #: access size (Fig. 3b "impacting the bandwidth only marginally").
    read_op_overhead: float = 8e-9

    #: Per-thread streaming rate for reads (AVX-512 ``vmovntdqa``), GB/s.
    #: Anchor: 8 threads reach ~85% of the 40 GB/s peak (Fig. 3, §3.2),
    #: 16-18 threads saturate it.
    read_stream_rate: float = 4.5

    #: Per-thread fixed cost of one write op including the trailing
    #: ``sfence``, seconds. Anchor: individual 64 B writes reach 9.6 GB/s
    #: with 36 threads (§4.1) => ~0.27 GB/s per thread.
    write_op_overhead: float = 220e-9

    #: Per-thread streaming rate for non-temporal writes, GB/s. Anchor:
    #: 4 threads at 4 KB reach the 12.6 GB/s peak (Fig. 7/8).
    write_stream_rate: float = 3.8

    #: Thread count at and below which the write-combining buffers keep up
    #: regardless of access size. Anchor: Fig. 8, 4-6 threads hold peak
    #: bandwidth out to 32 MB accesses while 8 threads degrade.
    wc_safe_threads: int = 6

    #: Strength of the write-combining pressure term (dimensionless).
    #: Together with ``wc_floor`` it shapes the "boomerang" of Fig. 8:
    #: bandwidth collapses only when *both* threads and access size grow.
    wc_pressure_coeff: float = 0.35

    #: Exponent applied to the access-size term of the WC pressure.
    wc_size_exponent: float = 0.8

    #: Exponent applied to the excess-thread term. Superlinear, so that
    #: 8 threads degrade only for large accesses while 18+ threads fall
    #: to the floor already at ~1 KB (Fig. 7a: the 256 B secondary peak,
    #: then "stabilizing at around 5-6 GB/s").
    wc_thread_exponent: float = 1.35

    #: Lower bound on write-combining efficiency. Anchor: large accesses
    #: with 18+ threads stabilize around 5-6 GB/s (§4.2) ~= 0.40 * 13.2.
    wc_floor: float = 0.40

    #: Fraction of the near-socket per-thread write rate attainable when
    #: writing through the UPI (blocking stores see the full cross-socket
    #: latency). Anchor: far writes need 6-8 threads to peak (Fig. 10).
    far_write_thread_factor: float = 0.35

    #: Peak far-socket write bandwidth (single writing socket). Anchor:
    #: Fig. 10, ~7 GB/s with 8 threads.
    far_write_max: float = 7.0

    #: Peak per-socket write bandwidth when both sockets write to their
    #: respective far PMEM. Anchor: Fig. 10, "2 Far" peaks at ~13 GB/s
    #: total => 6.5 GB/s per socket.
    far_write_contended_max: float = 6.5

    #: Total bandwidth cap when one socket writes near and the other
    #: writes the same (far) PMEM. Anchor: Fig. 10 (iii) peaks at ~8 GB/s.
    mixed_socket_write_max: float = 8.0

    #: Internal media write amplification observed for far writes at high
    #: thread counts (ntstore degrading to read-modify-write). Anchor:
    #: §4.4 reports up to 10x (~500 MB/s of payload driving ~5 GB/s).
    far_write_amplification_max: float = 10.0

    #: Cold (first-run) far-read bandwidth cap, before the cross-socket
    #: coherence directory has been populated. Anchor: Fig. 5, first far
    #: run peaks at ~8 GB/s with 4 threads.
    cold_far_read_max: float = 8.0

    #: Thread count at which the cold far-read cap peaks (Fig. 5).
    cold_far_read_best_threads: int = 4

    #: Per-extra-thread decay of the cold far-read cap beyond the optimum
    #: (remapping churn grows with concurrency).
    cold_far_read_decay: float = 0.025

    #: Warm far-read bandwidth cap through the UPI. Anchor: Fig. 5 second
    #: run ~33 GB/s.
    warm_far_read_max: float = 33.0

    #: Per-socket read cap when *both* sockets read their far PMEM and the
    #: two data directions plus queue pollution contend. Anchor: Fig. 6a
    #: "2 Far" flattens at ~50 GB/s total => 25 GB/s per socket.
    far_far_read_per_socket: float = 25.0

    #: Total read cap when one socket reads near while the other socket
    #: reads the same PMEM from far (coherence writes + RPQ pollution).
    #: Anchor: Fig. 6a (v) "yields a very low bandwidth".
    shared_target_read_max: float = 18.0

    #: Random-read media efficiency at >= 4 KB accesses, relative to the
    #: sequential peak. Anchor: §5.2, "only up to ~2/3 of the maximum".
    random_read_peak_fraction: float = 0.67

    #: Random-write media efficiency at large accesses, relative to the
    #: sequential peak. Anchor: §5.2, ~2/3 for PMEM.
    random_write_peak_fraction: float = 0.67

    #: Added latency per independent random read op, seconds. Shapes the
    #: thread scaling of random reads (hyperthreading keeps helping, §5.2).
    random_read_latency: float = 600e-9

    #: Per-thread streaming rate inside one random read op, GB/s.
    random_read_stream_rate: float = 3.5

    #: Bandwidth advantage of devdax over fsdax with cold pages. Anchor:
    #: §2.3, devdax is consistently 5-10% faster; we model the midpoint.
    devdax_advantage: float = 0.075

    #: Time to fault one 2 MB PMEM page under fsdax, seconds (§2.3).
    page_fault_cost: float = 0.5e-3


@dataclass(frozen=True)
class DramCalibration:
    """Fitted parameters of one socket's set of six DDR4 DIMMs."""

    #: Peak sequential read bandwidth of one socket. Anchor: Fig. 6b,
    #: single-socket near DRAM reads peak at ~100 GB/s.
    seq_read_max: float = 100.0

    #: Whole-system efficiency once both sockets stream reads (package
    #: power/snoop effects). Anchor: Fig. 6b, 2 Near = 185 GB/s, not 200.
    dual_socket_efficiency: float = 0.925

    #: Peak sequential write bandwidth of one socket. Inferred: §5.2 says
    #: random DRAM writes reach ~50% of the sequential maximum and Fig. 13b
    #: tops out around 40 GB/s on a 3-channel region => ~80 GB/s sequential
    #: across 6 channels.
    seq_write_max: float = 80.0

    #: Per-thread read streaming rate, GB/s (single-core DDR4 stream).
    read_stream_rate: float = 11.0

    #: Per-thread fixed read op cost, seconds.
    read_op_overhead: float = 8e-9

    #: Per-thread write streaming rate, GB/s.
    write_stream_rate: float = 7.5

    #: Per-thread fixed write op cost, seconds.
    write_op_overhead: float = 60e-9

    #: Warm far-read cap through the UPI (same link as PMEM). Anchor:
    #: Fig. 6b, 1 Far ~33 GB/s, 2 Far ~60 GB/s total.
    warm_far_read_max: float = 33.0

    #: Total read cap for the near + far shared-target configuration.
    #: Anchor: Fig. 6b (v) "nearly achieving the performance of only far
    #: access on both sockets" (~60 GB/s) => slightly below.
    shared_target_read_max: float = 57.0

    #: Per-socket read cap when both sockets read their far DRAM (UPI
    #: payload split across both directions plus snoop pressure). Anchor:
    #: Fig. 6b, "2 Far" peaks at ~60 GB/s total.
    far_far_read_per_socket: float = 30.0

    #: Fraction of sequential bandwidth reached by random access on a
    #: region large enough to engage all channels (§5.2: ~90%).
    random_large_region_fraction: float = 0.90

    #: Fraction reached on a small (single-NUMA-node, 3-channel) region
    #: (§5.2: ~50% because only half the channels serve requests).
    random_small_region_fraction: float = 0.50

    #: Region size below which a DRAM allocation lands on one NUMA node
    #: (first-touch policy fills local node first). The paper's 2 GB hash
    #: region exhibits this; its 90 GB run does not.
    small_region_threshold: int = 8 * 1024**3

    #: Random read latency per op, seconds (shapes thread scaling).
    random_read_latency: float = 140e-9


@dataclass(frozen=True)
class SsdCalibration:
    """NVMe SSD reference device (Intel DC P4610, paper §6.2 footnote)."""

    #: Sequential read bandwidth, GB/s (vendor number quoted in paper).
    seq_read_max: float = 3.20

    #: Sequential write bandwidth, GB/s.
    seq_write_max: float = 2.08

    #: 4 KB random read IOPS-equivalent bandwidth, GB/s (vendor ~640k IOPS).
    random_read_max: float = 2.55


@dataclass(frozen=True)
class InterconnectCalibration:
    """UPI link and cross-socket coherence parameters."""

    #: Raw UPI bandwidth per direction, GB/s. The paper quotes "~40 GB/s
    #: per direction" with ~25% metadata (=> ~30 GB/s payload) yet
    #: measures 33 GB/s warm far reads; we resolve the tension by setting
    #: the raw rate so that payload capacity matches the measured 33 GB/s.
    raw_per_direction: float = 44.3

    #: Fraction of raw UPI bandwidth consumed by metadata/snoop traffic
    #: (§3.5: "about 25% of this is required for metadata transfer").
    metadata_fraction: float = 0.25

    @property
    def data_per_direction(self) -> float:
        """Usable payload bandwidth per direction (~31 GB/s, §3.5)."""
        return self.raw_per_direction * (1.0 - self.metadata_fraction)


@dataclass(frozen=True)
class CpuCalibration:
    """Core-side effects: hyperthreading, prefetching, scheduling."""

    #: Strength of the L2-sharing penalty when a NUMA region runs more
    #: threads than physical cores. The penalty is worst when HT pairs are
    #: *imbalanced* (some cores share L2, some do not): Fig. 4 shows 24
    #: threads below the 18-thread peak while 36 threads recover it.
    ht_imbalance_penalty: float = 0.08

    #: Bandwidth factor for grouped reads of 1-2 KB with the L2 hardware
    #: prefetcher enabled. Anchor: Fig. 3a's dip ("performs poorly for 1
    #: and 2 KB access", §3.1); disabling the prefetcher removes it.
    prefetch_dip_factor: float = 0.62

    #: Read-bandwidth factor for low thread counts when the prefetcher is
    #: *disabled* (§3.2: "lower thread counts (<8) perform worse").
    no_prefetch_low_thread_factor: float = 0.75

    #: Relative scheduling overhead of NUMA-region pinning vs. explicit
    #: core pinning once threads exceed physical cores (Fig. 4/9: ~40 vs
    #: ~41 GB/s at 18+ threads).
    numa_pinning_overhead: float = 0.975

    #: Additional write-combining loss under NUMA-region pinning caused by
    #: intra-region node changes routing writes through different iMCs
    #: (§4.3).
    numa_pinning_write_overhead: float = 0.95

    #: Bandwidth factor for fully unpinned reads: the scheduler migrates
    #: threads across sockets, so accesses keep re-triggering the cold-far
    #: remapping path. Anchor: Fig. 4, "None" peaks at ~9 GB/s (~4x worse).
    unpinned_read_factor: float = 1.15  # applied to the cold-far envelope

    #: Bandwidth factor for fully unpinned writes. Anchor: Fig. 9, "None"
    #: peaks at ~7 GB/s (~2x worse than pinned).
    unpinned_write_factor: float = 0.55


@dataclass(frozen=True)
class MixedCalibration:
    """Interference coefficients for concurrent reads and writes (§5.1).

    Interference is driven by *demand* (what each side would consume if it
    ran alone, as a fraction of its device maximum), not by the achieved
    bandwidth: a single write thread hurts readers because write requests
    occupy the iMC disproportionately long, even though the writer itself
    moves little data.
    """

    #: Linear coefficient of write-demand interference on reads. Anchors:
    #: one writer drops 30 readers from ~31 to ~26 GB/s; saturating
    #: writers (4-6) leave readers ~35-45% of their maximum.
    read_interference_coeff: float = 1.8

    #: Coefficient of read-demand interference on writes. Anchors: one
    #: reader barely dents 4 writers (~12 of 12.6 GB/s); 18-30 readers
    #: push writers to ~33-42% of their maximum.
    write_interference_coeff: float = 1.86

    #: Exponent of the read-demand term; the steep rise between one reader
    #: and a saturating reader pool requires a superlinear response.
    write_interference_exponent: float = 1.62


@dataclass(frozen=True)
class DeviceCalibration:
    """Complete calibration profile for one modeled server."""

    pmem: PmemCalibration = field(default_factory=PmemCalibration)
    dram: DramCalibration = field(default_factory=DramCalibration)
    ssd: SsdCalibration = field(default_factory=SsdCalibration)
    upi: InterconnectCalibration = field(default_factory=InterconnectCalibration)
    cpu: CpuCalibration = field(default_factory=CpuCalibration)
    mixed: MixedCalibration = field(default_factory=MixedCalibration)

    def validate(self) -> None:
        """Raise :class:`CalibrationError` on physically impossible values.

        Checks that every bandwidth/rate/latency field is positive, that
        fractions lie in (0, 1], and that a handful of cross-field
        relations hold (PMEM slower than DRAM, writes slower than reads,
        far slower than near) — the orderings every experiment relies on.
        """
        for group in (self.pmem, self.dram, self.ssd, self.upi, self.cpu, self.mixed):
            for f in fields(group):
                value = getattr(group, f.name)
                if isinstance(value, (int, float)) and value <= 0:
                    raise CalibrationError(
                        f"{type(group).__name__}.{f.name} must be positive, got {value}"
                    )
        p, d = self.pmem, self.dram
        if p.seq_read_max >= d.seq_read_max:
            raise CalibrationError("PMEM sequential reads must be slower than DRAM")
        if p.seq_write_max >= p.seq_read_max:
            raise CalibrationError("PMEM writes must be slower than PMEM reads")
        if p.cold_far_read_max >= p.warm_far_read_max:
            raise CalibrationError("cold far reads must be slower than warm far reads")
        if p.warm_far_read_max >= p.seq_read_max:
            raise CalibrationError("far reads must be slower than near reads")
        if not 0 < self.upi.metadata_fraction < 1:
            raise CalibrationError("UPI metadata fraction must be in (0, 1)")
        for name in ("random_read_peak_fraction", "random_write_peak_fraction"):
            if not 0 < getattr(p, name) <= 1:
                raise CalibrationError(f"pmem.{name} must be in (0, 1]")
        if self.ssd.seq_read_max >= p.seq_read_max:
            raise CalibrationError("the SSD must be slower than PMEM")


def paper_calibration() -> DeviceCalibration:
    """Return the calibration matching the paper's evaluation server."""
    calibration = DeviceCalibration()
    calibration.validate()
    return calibration
