"""Workload-stream specifications consumed by the bandwidth models.

A :class:`StreamSpec` describes one homogeneous group of threads doing one
kind of memory access — the unit in which the paper's benchmarks are
parameterised (op, access size, thread count, grouped/individual layout,
pinning policy, near/far placement, media). Multi-socket and mixed
read/write experiments are lists of streams evaluated together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.memsim.address import DaxMode
from repro.memsim.constants import CACHE_LINE, DEFAULT_SWEEP_BYTES
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.topology import MediaKind


class Op(enum.Enum):
    """Direction of a memory access stream."""

    READ = "read"
    WRITE = "write"


class Pattern(enum.Enum):
    """Spatial pattern of the stream."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


class Layout(enum.Enum):
    """How threads divide a sequential region (paper §3.1).

    GROUPED: accesses interleave across threads so the group produces one
    global sequential stream (thread 1 reads bytes 0-255, thread 2 reads
    from 256, ...).

    INDIVIDUAL: each thread owns a disjoint contiguous region (thread 1
    reads GB 0-1, thread 2 reads GB 1-2, ...).
    """

    GROUPED = "grouped"
    INDIVIDUAL = "individual"


@dataclass(frozen=True)
class StreamSpec:
    """One homogeneous group of threads accessing one memory target."""

    op: Op
    threads: int
    access_size: int = 4096
    media: MediaKind = MediaKind.PMEM
    pattern: Pattern = Pattern.SEQUENTIAL
    layout: Layout = Layout.INDIVIDUAL
    pinning: PinningPolicy = PinningPolicy.CORES
    issuing_socket: int = 0
    target_socket: int = 0
    #: Size of the memory region the stream touches. Random-access
    #: bandwidth depends on it for DRAM (§5.2: a 2 GB region lives on one
    #: NUMA node and engages only half the channels).
    region_bytes: int = DEFAULT_SWEEP_BYTES
    #: Total volume moved; used for counter accounting and for amortising
    #: fsdax page-fault costs. Defaults to the paper's 70 GB sweeps.
    total_bytes: int = DEFAULT_SWEEP_BYTES
    dax_mode: DaxMode = DaxMode.DEVDAX
    prefaulted: bool = False

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"thread count must be >= 1, got {self.threads}")
        if self.access_size < CACHE_LINE:
            raise WorkloadError(
                f"access size must be >= one cache line ({CACHE_LINE} B), "
                f"got {self.access_size}"
            )
        if self.region_bytes <= 0:
            raise WorkloadError("region size must be positive")
        if self.total_bytes <= 0:
            raise WorkloadError("total volume must be positive")
        if self.issuing_socket < 0 or self.target_socket < 0:
            raise WorkloadError("socket ids must be non-negative")
        if self.media is MediaKind.SSD:
            raise WorkloadError(
                "StreamSpec models byte-addressable memory; use "
                "repro.memsim.ssd for block-device bandwidth"
            )

    @property
    def far(self) -> bool:
        """True when the stream crosses sockets (data over UPI)."""
        return self.issuing_socket != self.target_socket

    @property
    def is_read(self) -> bool:
        return self.op is Op.READ

    def with_(self, **changes: object) -> "StreamSpec":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return replace(self, **changes)


def read_stream(threads: int, **kwargs: object) -> StreamSpec:
    """Shorthand for a sequential read stream."""
    return StreamSpec(op=Op.READ, threads=threads, **kwargs)


def write_stream(threads: int, **kwargs: object) -> StreamSpec:
    """Shorthand for a sequential write stream."""
    return StreamSpec(op=Op.WRITE, threads=threads, **kwargs)
