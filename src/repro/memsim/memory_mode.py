"""Memory Mode: DRAM as an inaccessible "L4" cache in front of PMEM.

§2.1 describes Optane's second operating mode: *Memory Mode* exposes
PMEM as plain volatile main memory while the installed DRAM becomes a
direct-mapped cache the application cannot see or control. The paper
studies App Direct (all other modules here); this model covers the mode
the paper describes but does not benchmark, so that the library can
answer "what would Memory Mode have done?" for any workload.

Behaviour modeled:

* accesses that hit the DRAM cache run at DRAM speed; misses pay a DRAM
  tag check plus the PMEM access, and (for writes, or for reads evicting
  dirty lines) a writeback;
* the hit rate is a function of working-set size vs. DRAM capacity and
  of the access pattern — streaming scans larger than DRAM get no reuse
  at all, uniform random working sets hit with probability
  ``dram / working_set``;
* persistence is *not* provided: dirty lines live in DRAM (§2.1: "this
  mode does not guarantee persistency"), which
  :func:`MemoryModeModel.is_persistent` reports accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, WorkloadError
from repro.memsim.bandwidth import BandwidthModel
from repro.memsim.spec import Pattern
from repro.memsim.topology import MediaKind
from repro.units import GIB


@dataclass(frozen=True)
class MemoryModeConfig:
    """How much of PMEM/DRAM participates in Memory Mode on one socket."""

    dram_cache_bytes: int = 93 * GIB  # the paper's 6 x 16 GB per socket
    pmem_bytes: int = 768 * GIB       # 6 x 128 GB per socket

    def __post_init__(self) -> None:
        if self.dram_cache_bytes <= 0 or self.pmem_bytes <= 0:
            raise ConfigurationError("capacities must be positive")
        if self.dram_cache_bytes >= self.pmem_bytes:
            raise ConfigurationError(
                "Memory Mode needs PMEM larger than the DRAM cache"
            )


class MemoryModeModel:
    """Effective bandwidth of a Memory Mode socket for simple workloads."""

    def __init__(
        self,
        model: BandwidthModel | None = None,
        config: MemoryModeConfig | None = None,
    ) -> None:
        self.model = model if model is not None else BandwidthModel()
        self.config = config if config is not None else MemoryModeConfig()

    @staticmethod
    def is_persistent() -> bool:
        """§2.1: dirty lines in the DRAM cache are lost on power failure."""
        return False

    def hit_rate(self, working_set_bytes: int, pattern: Pattern) -> float:
        """Expected DRAM-cache hit rate for a working set.

        Sequential streaming of a set larger than the cache evicts every
        line before its reuse: the hit rate collapses to zero. Uniform
        random reuse hits with the capacity ratio.
        """
        if working_set_bytes <= 0:
            raise WorkloadError("working set must be positive")
        capacity = self.config.dram_cache_bytes
        if working_set_bytes <= capacity:
            return 1.0
        if pattern is Pattern.SEQUENTIAL:
            return 0.0
        return capacity / working_set_bytes

    def read_bandwidth(
        self,
        threads: int,
        access_size: int,
        working_set_bytes: int,
        pattern: Pattern = Pattern.SEQUENTIAL,
    ) -> float:
        """Effective read bandwidth under Memory Mode, GB/s.

        Harmonic blend of the DRAM-speed hits and PMEM-speed misses
        (bandwidth averages over *time*, not over accesses).
        """
        hit = self.hit_rate(working_set_bytes, pattern)
        if pattern is Pattern.SEQUENTIAL:
            dram = self.model.sequential_read(
                threads, access_size, media=MediaKind.DRAM
            )
            pmem = self.model.sequential_read(threads, access_size)
        else:
            dram = self.model.random_read(
                threads, access_size, media=MediaKind.DRAM,
                region_bytes=min(working_set_bytes, self.config.dram_cache_bytes),
            )
            pmem = self.model.random_read(threads, access_size)
        if hit >= 1.0:
            return dram
        # Misses additionally pay the cache-fill transfer into DRAM.
        miss_cost = 1.0 / pmem + 0.15 / dram
        return 1.0 / (hit / dram + (1.0 - hit) * miss_cost)

    def write_bandwidth(
        self,
        threads: int,
        access_size: int,
        working_set_bytes: int,
    ) -> float:
        """Effective write bandwidth under Memory Mode, GB/s.

        Writes always land in the DRAM cache; once the working set
        exceeds it, every write forces a dirty-line writeback to PMEM,
        so sustained large writes converge to PMEM's write speed.
        """
        dram = self.model.sequential_write(threads, access_size, media=MediaKind.DRAM)
        if working_set_bytes <= self.config.dram_cache_bytes:
            return dram
        pmem = self.model.sequential_write(threads, access_size)
        return 1.0 / (1.0 / dram + 1.0 / pmem)

    def compare_app_direct(
        self, threads: int, access_size: int, working_set_bytes: int
    ) -> dict[str, float]:
        """Memory Mode vs. App Direct for one sequential-read workload.

        Shows why the paper (and most research, §2.1) prefers App
        Direct for large OLAP: beyond the DRAM cache, Memory Mode's
        transparent caching yields PMEM speed *plus* cache-fill
        overhead, with no control and no persistence.
        """
        return {
            "memory_mode_gbps": self.read_bandwidth(
                threads, access_size, working_set_bytes
            ),
            "app_direct_gbps": self.model.sequential_read(threads, access_size),
            "dram_gbps": self.model.sequential_read(
                threads, access_size, media=MediaKind.DRAM
            ),
        }
