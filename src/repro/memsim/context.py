"""Per-configuration evaluation context: config-derived tables, built once.

Every call to :func:`repro.memsim.evaluation.evaluate` needs the same
config-derived facts — socket validity, physical core counts, interleave
ways and maps, mixed-interference coefficients, random-access rate
denominators, UPI payload ceilings — and none of them depend on the
streams or the directory state. Deriving them per call means linear
scans over the topology tuples and repeated float arithmetic on every
one of the tens of thousands of points a figure sweep evaluates.

:class:`EvalContext` hoists all of it: an immutable bundle derived once
per :class:`~repro.memsim.config.MachineConfig` and cached in a bounded
LRU (:func:`eval_context`). The tables store the *same values the same
float operations would produce inline*, in the same operation order, so
threading a context through the evaluator changes no numeric output —
the golden snapshots in ``tests/obs/goldens/`` hold byte-for-byte.

The context is a pure function of its config: it carries no mutable
state and is never part of a cache key (the config itself is the key).
simlint rule SIM105 ("context-derivable-constant") statically flags hot
paths that bypass it by recomputing topology tables per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from types import MappingProxyType
from typing import Mapping

from repro.errors import TopologyError
from repro.memsim import mixed, random_access
from repro.memsim.address import InterleaveMap
from repro.memsim.buffers import ReadBufferModel, WriteCombiningModel
from repro.memsim.config import MachineConfig
from repro.memsim.imc import ImcModel
from repro.memsim.prefetcher import PrefetcherModel
from repro.memsim.scheduler import SchedulerModel
from repro.memsim.topology import MediaKind
from repro.memsim.upi import UpiModel


@dataclass(frozen=True)
class Components:
    """The stateless component models derived from one configuration."""

    prefetcher: PrefetcherModel
    write_combining: WriteCombiningModel
    read_buffer: ReadBufferModel
    upi: UpiModel
    imc: ImcModel
    scheduler: SchedulerModel


@lru_cache(maxsize=64)
def components(config: MachineConfig) -> Components:
    """Component models for ``config``, built once per distinct config."""
    cal = config.calibration
    return Components(
        prefetcher=PrefetcherModel(cal.cpu, enabled=config.prefetcher_enabled),
        write_combining=WriteCombiningModel(
            cal.pmem, enabled=config.write_combining_enabled
        ),
        read_buffer=ReadBufferModel(cal.pmem),
        upi=UpiModel(cal.upi, cal.pmem),
        imc=ImcModel(),
        scheduler=SchedulerModel(cal.cpu),
    )


@dataclass(frozen=True, eq=False)
class EvalContext:
    """Immutable config-derived tables for one :class:`MachineConfig`.

    Instances compare by identity (two contexts for equal configs hold
    equal tables; :func:`eval_context` deduplicates them anyway). The
    mappings are read-only views — the context is shared across threads
    and across every evaluation of a sweep.
    """

    config: MachineConfig
    components: Components
    #: Valid socket ids, for O(1) stream validation.
    socket_ids: frozenset[int]
    #: ``socket_id -> physical core count`` (topology scan hoisted).
    physical_core_count: Mapping[int, int]
    #: ``(socket_id, media) -> DIMM ways`` for every socket and media kind.
    interleave_ways: Mapping[tuple[int, MediaKind], int]
    #: ``(socket_id, media) -> InterleaveMap``; ``None`` where no DIMMs of
    #: that kind exist (the evaluator raises the same WorkloadError inline
    #: code would).
    interleave_maps: Mapping[tuple[int, MediaKind], InterleaveMap | None]
    #: Mixed read/write interference coefficients per media kind.
    mixed_params: Mapping[MediaKind, mixed.MediaInterferenceParams]
    #: Random-access rate denominators and peak ceilings.
    random_tables: random_access.RandomAccessTables
    #: UPI payload capacity per direction in decimal GB/s.
    upi_data_cap: float
    #: Warm far-read ceilings per media in decimal GB/s.
    warm_far_read_cap_pmem: float
    warm_far_read_cap_dram: float

    def require_socket(self, socket_id: int) -> None:
        """Validate a socket id; same error the topology lookup raises."""
        if socket_id not in self.socket_ids:
            raise TopologyError(f"no such socket: {socket_id}")


def _build_context(config: MachineConfig) -> EvalContext:
    topology = config.topology
    cal = config.calibration
    parts = components(config)
    socket_ids = frozenset(s.socket_id for s in topology.sockets)
    physical = {
        sid: topology.physical_core_count(sid) for sid in sorted(socket_ids)
    }
    ways: dict[tuple[int, MediaKind], int] = {}
    maps: dict[tuple[int, MediaKind], InterleaveMap | None] = {}
    for sid in sorted(socket_ids):
        for media in MediaKind:
            w = topology.interleave_ways(sid, media)
            ways[(sid, media)] = w
            maps[(sid, media)] = InterleaveMap(ways=w) if w > 0 else None
    mixed_params = {
        media: mixed.media_params(cal, media)
        for media in (MediaKind.PMEM, MediaKind.DRAM)
    }
    upi = parts.upi
    return EvalContext(
        config=config,
        components=parts,
        socket_ids=socket_ids,
        physical_core_count=MappingProxyType(physical),
        interleave_ways=MappingProxyType(ways),
        interleave_maps=MappingProxyType(maps),
        mixed_params=MappingProxyType(mixed_params),
        random_tables=random_access.tables_for(cal),
        upi_data_cap=upi.data_cap_per_direction,
        warm_far_read_cap_pmem=upi.warm_far_read_cap(cal.pmem.warm_far_read_max),
        warm_far_read_cap_dram=upi.warm_far_read_cap(cal.dram.warm_far_read_max),
    )


@lru_cache(maxsize=16)
def eval_context(config: MachineConfig) -> EvalContext:
    """The :class:`EvalContext` for ``config`` (bounded per-config LRU).

    ``MachineConfig`` caches its own hash, so the lookup costs one dict
    probe in the steady state; the table build runs once per distinct
    config, not once per evaluation.
    """
    return _build_context(config)
