"""Pure steady-state evaluation core — the heart of the simulator.

:func:`evaluate` composes the component models (interleaving, buffers,
prefetcher, iMC, UPI, scheduler) into achieved bandwidth for one or more
concurrent :class:`~repro.memsim.spec.StreamSpec` groups. Every figure of
the paper's microbenchmark sections (Figs. 3-13) is a sweep over this
function; none of the figure modules contain bandwidth arithmetic of
their own.

The function is **pure**: its result depends only on the immutable
:class:`~repro.memsim.config.MachineConfig`, the stream tuple, and the
explicit :class:`~repro.memsim.config.DirectoryState` — it mutates none
of them. Directory warm-up is reported back as a *new* state on
:attr:`BandwidthResult.directory_after`, which callers thread into the
next evaluation (or discard). Purity is what lets the sweep service
(:mod:`repro.sweep`) memoize results and fan evaluations out across
threads with bit-identical outcomes.

The model computes, per stream:

1. an **issue-side** bandwidth — threads x per-thread op rate, shaped by
   hyperthread placement and pinning policy;
2. a **media-side** ceiling — the device maximum scaled by the DIMM
   parallelism the access pattern achieves, prefetcher effects,
   write-combining efficiency, and sub-line amplification;
3. **locality ceilings** — UPI capacity, cold-directory remapping, and
   cross-socket queue pollution for far streams;

and takes the minimum. Concurrent streams then interact through shared
resources (mixed read/write interference, shared-target pollution, UPI
direction capacity, DRAM package efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.memsim import mixed as mixed_model
from repro.memsim import random_access
from repro.memsim.address import DaxMode, InterleaveMap, MappedRegion, fsdax_bandwidth_factor
from repro.memsim.config import DirectoryState, MachineConfig
from repro.memsim.context import Components, EvalContext, components, eval_context
from repro.memsim.counters import PerfCounters
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind
from repro.units import GB

__all__ = [
    "BandwidthResult",
    "Components",
    "EvalContext",
    "StreamResult",
    "components",
    "eval_context",
    "evaluate",
    "observable_pairs",
]

if TYPE_CHECKING:
    from repro.obs import Recorder


@dataclass(frozen=True)
class StreamResult:
    """Achieved bandwidth of one stream within an evaluation."""

    spec: StreamSpec
    gbps: float
    solo_gbps: float
    notes: tuple[str, ...] = ()


class BandwidthResult:
    """Outcome of evaluating one or more concurrent streams.

    Stream results and directory states are immutable and freely shared
    between copies; the mutable :class:`PerfCounters` (callers may
    ``note()`` on it) is private to each result. A result handed out by
    :meth:`copy` materializes its private counters *lazily*, on first
    access — memo hits on large sweeps that never inspect counters skip
    the duplication entirely, and a caller annotating a hit's counters
    can never reach the stored entry.
    """

    __slots__ = ("streams", "directory_after", "_counters", "_counters_source")

    def __init__(
        self,
        streams: tuple[StreamResult, ...] = (),
        counters: PerfCounters | None = None,
        directory_after: DirectoryState | None = None,
    ) -> None:
        self.streams = streams
        self._counters = counters if counters is not None else PerfCounters()
        self._counters_source: PerfCounters | None = None
        #: Directory state after this evaluation's far traversals
        #: completed; ``None`` only for results built by code predating
        #: explicit state.
        self.directory_after = directory_after

    @property
    def counters(self) -> PerfCounters:
        """This result's private :class:`PerfCounters` (lazily copied)."""
        if self._counters is None:
            source = self._counters_source
            self._counters = replace(source, notes=list(source.notes))
        return self._counters

    @property
    def total_gbps(self) -> float:
        """Aggregate bandwidth of all streams in decimal GB/s."""
        return sum(s.gbps for s in self.streams)

    @property
    def read_gbps(self) -> float:
        """Aggregate bandwidth of the read streams in decimal GB/s."""
        return sum(s.gbps for s in self.streams if s.spec.is_read)

    @property
    def write_gbps(self) -> float:
        """Aggregate bandwidth of the write streams in decimal GB/s."""
        return sum(s.gbps for s in self.streams if not s.spec.is_read)

    def copy(self) -> "BandwidthResult":
        """Independent copy safe to hand out from a cache.

        The copy shares the immutable streams and directory state and
        defers duplicating the counters until someone reads them; the
        source counters are never exposed, so mutation cannot travel
        between the stored entry and any delivered copy.
        """
        dup = BandwidthResult.__new__(BandwidthResult)
        dup.streams = self.streams
        dup.directory_after = self.directory_after
        dup._counters = None
        # Chase at most one level: an unmaterialized copy's source *is*
        # the pristine original.
        dup._counters_source = (
            self._counters if self._counters is not None else self._counters_source
        )
        return dup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BandwidthResult):
            return NotImplemented
        return (
            self.streams == other.streams
            and self.counters == other.counters
            and self.directory_after == other.directory_after
        )

    def __repr__(self) -> str:
        return (
            f"BandwidthResult(streams={self.streams!r}, "
            f"counters={self.counters!r}, "
            f"directory_after={self.directory_after!r})"
        )


@dataclass
class _Solo:
    """Intermediate per-stream evaluation before cross-stream effects."""

    spec: StreamSpec
    gbps: float
    issue_gbps: float
    media_cap_gbps: float
    read_amplification: float = 1.0
    write_amplification: float = 1.0
    notes: list[str] = field(default_factory=list)


def evaluate(
    config: MachineConfig,
    streams: list[StreamSpec] | tuple[StreamSpec, ...],
    directory: DirectoryState | None = None,
    *,
    recorder: "Recorder | None" = None,
    context: EvalContext | None = None,
) -> BandwidthResult:
    """Evaluate concurrent streams, resolving shared-resource effects.

    ``directory`` defaults to :meth:`DirectoryState.cold`, so a first far
    read pays the remapping penalty exactly like the paper's first-run
    measurements; pass :meth:`DirectoryState.warm` (or a previous
    result's :attr:`~BandwidthResult.directory_after`) for steady state.

    ``recorder`` is a write-only observability sink
    (:mod:`repro.obs`); it never influences the result and is excluded
    from the sweep service's cache keys, so passing one preserves
    purity. ``None`` (the default) skips all emission.

    ``context`` supplies the config-derived tables
    (:class:`~repro.memsim.context.EvalContext`); ``None`` (the default)
    fetches them from the per-config LRU, so the parameter only matters
    to callers that want to skip even the cache probe. Passing a context
    built for a *different* config raises
    :class:`~repro.errors.ConfigurationError` — the tables would
    silently disagree with ``config`` otherwise.

    Interaction rules, applied in order:

    1. multiple sequential read streams from one socket share its
       prefetcher (small multi-stream penalty, §5.1);
    2. reads and writes on the same (target socket, media) interfere
       (:mod:`repro.memsim.mixed`);
    3. a target read/written from *both* sockets at once collapses to
       the shared-target ceiling (§3.5 / §4.5);
    4. both sockets reading their respective far PMEM pay queue
       pollution on top of the UPI split (Fig. 6a "2 Far");
    5. far payloads per UPI direction are scaled into link capacity;
    6. both sockets streaming near DRAM reads pay the package
       efficiency (Fig. 6b: 185, not 200 GB/s).
    """
    if not streams:
        raise WorkloadError("evaluate() needs at least one stream")
    state = directory if directory is not None else DirectoryState.cold()
    if context is None:
        ctx = eval_context(config)
    else:
        if context.config is not config and context.config != config:
            raise ConfigurationError(
                "evaluation context was built for a different MachineConfig"
            )
        ctx = context
    for spec in streams:
        ctx.require_socket(spec.issuing_socket)
        ctx.require_socket(spec.target_socket)
    ev = _Evaluator(ctx, state)
    solos = [ev._solo(spec) for spec in streams]

    ev._apply_multi_stream_prefetch(solos)
    ev._apply_mixed_interference(solos)
    ev._apply_shared_target(solos)
    ev._apply_far_far_pollution(solos)
    ev._apply_upi_capacity(solos)
    ev._apply_dram_package_efficiency(solos)

    counters = ev._collect_counters(solos)
    after = state
    for solo in solos:
        if solo.spec.far:
            after = after.touch(solo.spec.issuing_socket, solo.spec.target_socket)
    results = tuple(
        StreamResult(
            spec=s.spec,
            gbps=s.gbps,
            solo_gbps=min(s.issue_gbps, s.media_cap_gbps),
            notes=tuple(s.notes),
        )
        for s in solos
    )
    if recorder is not None and recorder.enabled:
        # Imported lazily: the emission branch is cold by definition, and
        # the lazy import keeps repro.obs entirely off the default path.
        from repro.obs import probes

        probes.emit_evaluation(
            recorder,
            config,
            [(s.spec, s.gbps, s.read_amplification, s.write_amplification) for s in solos],
            counters,
            state,
            after,
        )
    return BandwidthResult(streams=results, counters=counters, directory_after=after)


def observable_pairs(
    streams: tuple[StreamSpec, ...] | list[StreamSpec],
) -> frozenset[tuple[int, int]]:
    """The (issuing, target) socket pairs whose warmth ``streams`` can see.

    Only far *reads* consult the directory (far writes degrade to
    read-modify-write regardless, §4.4); restricting a directory state to
    these pairs therefore preserves the evaluation result exactly. The
    sweep service uses this to normalize cache keys.
    """
    return frozenset(
        (s.issuing_socket, s.target_socket)
        for s in streams
        if s.far and s.is_read
    )


class _Evaluator:
    """One evaluation pass: read-only views over config and directory.

    Instances live for a single :func:`evaluate` call; nothing written
    here outlives the call, which keeps the module-level entry point pure.
    """

    def __init__(self, context: EvalContext, directory: DirectoryState) -> None:
        self.ctx = context
        self.config = context.config
        self.calibration = context.config.calibration
        parts = context.components
        self.prefetcher = parts.prefetcher
        self.write_combining = parts.write_combining
        self.read_buffer = parts.read_buffer
        self.upi = parts.upi
        self.imc = parts.imc
        self.scheduler = parts.scheduler
        self.directory = directory

    # ------------------------------------------------------------------
    # per-thread issue rates
    # ------------------------------------------------------------------

    def _per_thread_rate(self, spec: StreamSpec) -> float:
        """Sequential per-thread issue bandwidth in GB/s."""
        cal = self.calibration
        if spec.media is MediaKind.PMEM:
            if spec.is_read:
                overhead, rate = cal.pmem.read_op_overhead, cal.pmem.read_stream_rate
            else:
                overhead, rate = cal.pmem.write_op_overhead, cal.pmem.write_stream_rate
        elif spec.media is MediaKind.DRAM:
            if spec.is_read:
                overhead, rate = cal.dram.read_op_overhead, cal.dram.read_stream_rate
            else:
                overhead, rate = cal.dram.write_op_overhead, cal.dram.write_stream_rate
        else:
            raise WorkloadError(f"unsupported media: {spec.media}")
        per_op_seconds = overhead + spec.access_size / (rate * GB)
        per_thread = spec.access_size / per_op_seconds / GB
        if spec.far and not spec.is_read:
            # Blocking stores see the full UPI round trip (§4.4).
            per_thread *= cal.pmem.far_write_thread_factor
        return per_thread

    def _issue_bandwidth(self, spec: StreamSpec) -> float:
        physical = self.ctx.physical_core_count[spec.issuing_socket]
        placement = self.scheduler.placement(spec.threads, physical)
        if spec.pattern is Pattern.RANDOM:
            # Random issue rates are latency-bound and computed in
            # random_access; threads (incl. hyperthreads) scale fully.
            raise SimulationError("random issue handled by random_access module")
        if spec.is_read:
            issue_threads = placement.effective_issue_threads
        else:
            # Store issue is not limited by the shared load machinery, so
            # hyperthreads contribute fully (anchor: 64 B individual
            # writes reach 9.6 GB/s with 36 threads, §4.1).
            issue_threads = float(spec.threads)
        return issue_threads * self._per_thread_rate(spec)

    # ------------------------------------------------------------------
    # media-side ceilings
    # ------------------------------------------------------------------

    def _interleave(self, spec: StreamSpec) -> InterleaveMap:
        interleave = self.ctx.interleave_maps[(spec.target_socket, spec.media)]
        if interleave is None:
            raise WorkloadError(
                f"no {spec.media.value} DIMMs on socket {spec.target_socket}"
            )
        return interleave

    def _sequential_read_media_cap(self, spec: StreamSpec) -> float:
        cal = self.calibration
        if spec.media is MediaKind.DRAM:
            cap = cal.dram.seq_read_max
            if spec.layout is Layout.GROUPED:
                cap *= self.prefetcher.grouped_sequential_factor(spec.access_size)
            return cap
        interleave = self._interleave(spec)
        per_dimm = cal.pmem.seq_read_max / interleave.ways
        if spec.layout is Layout.GROUPED:
            window = spec.threads * spec.access_size
            parallelism = interleave.window_parallelism(window)
            cap = per_dimm * parallelism
            cap *= self.prefetcher.grouped_sequential_factor(spec.access_size)
        else:
            # Individual streams spread across DIMMs; prefetch depth keeps
            # about two stripes in flight per stream (§3.1: access size is
            # "not as relevant" for individual reads).
            parallelism = min(interleave.ways, 2 * spec.threads)
            cap = per_dimm * parallelism
        return cap

    def _sequential_write_media_cap(self, spec: StreamSpec) -> tuple[float, float]:
        """Return ``(cap_gbps, write_amplification)`` for a write stream."""
        cal = self.calibration
        if spec.media is MediaKind.DRAM:
            return cal.dram.seq_write_max, 1.0
        interleave = self._interleave(spec)
        per_dimm = cal.pmem.seq_write_max / interleave.ways
        wc_eff = self.write_combining.efficiency(spec.threads, spec.access_size)
        grouped = spec.layout is Layout.GROUPED
        if grouped:
            # The posted-write queues smooth the thread-to-DIMM imbalance
            # slightly relative to reads, hence the +2 offset.
            window = spec.threads * spec.access_size
            parallelism = min(float(interleave.ways), 2.0 + window / interleave.granularity)
            small_factor = self.write_combining.grouped_small_write_factor(
                spec.access_size
            )
        else:
            parallelism = min(interleave.ways, 2 * spec.threads)
            small_factor = 1.0
        cap = per_dimm * parallelism * wc_eff * small_factor
        if spec.access_size < 1024:
            # Sub-kilobyte stores never quite reach the 4 KB peak even
            # with perfect combining (Fig. 7: the 256 B secondary peak
            # sits near 10, not 12.6 GB/s).
            cap *= (spec.access_size / 1024.0) ** 0.08
        elif spec.access_size > 4096:
            # Ops beyond the interleave granularity span several DIMMs
            # and interrupt each other's combining slightly; 4 KB stays
            # the global write maximum (Fig. 7: 12.6 GB/s at grouped 4 KB).
            cap *= (4096.0 / spec.access_size) ** 0.02
        amplification = self.write_combining.write_amplification(
            spec.threads, spec.access_size, grouped
        )
        return cap, amplification

    # ------------------------------------------------------------------
    # solo evaluation
    # ------------------------------------------------------------------

    def _solo(self, spec: StreamSpec) -> _Solo:
        if spec.pattern is Pattern.RANDOM:
            return self._solo_random(spec)
        return self._solo_sequential(spec)

    def _solo_sequential(self, spec: StreamSpec) -> _Solo:
        cal = self.calibration
        physical = self.ctx.physical_core_count[spec.issuing_socket]
        issue = self._issue_bandwidth(spec)
        notes: list[str] = []
        read_amp = 1.0
        write_amp = 1.0

        if spec.is_read:
            media_cap = self._sequential_read_media_cap(spec)
            read_amp = self.read_buffer.sequential_amplification(spec.access_size)
        else:
            media_cap, write_amp = self._sequential_write_media_cap(spec)

        # Hyperthread L2 pollution only affects the load side; the write
        # boomerang is fully owned by the write-combining model.
        if spec.is_read:
            thread_factor = self.prefetcher.thread_scaling_factor(spec.threads, physical)
        else:
            thread_factor = 1.0
        gbps = min(issue, media_cap)

        if spec.pinning is PinningPolicy.NONE:
            if spec.is_read:
                ramp = min(1.0, spec.threads / cal.pmem.cold_far_read_best_threads)
                envelope = self.scheduler.unpinned_read_envelope(
                    cal.pmem.cold_far_read_max * ramp
                )
                if spec.media is MediaKind.DRAM:
                    # DRAM NUMA penalties are weaker (§3.4 cites [41, 42]);
                    # unpinned DRAM reads halve instead of collapsing.
                    envelope = cal.dram.seq_read_max * 0.5
                gbps = min(gbps, envelope)
                notes.append("unpinned: scheduler migrations keep remapping cold")
            else:
                gbps *= self.scheduler.unpinned_write_factor()
                notes.append("unpinned: cross-socket placements halve write bandwidth")
        else:
            gbps *= self.scheduler.pinned_factor(
                spec.pinning, spec.threads, physical, write=not spec.is_read
            )

        gbps *= thread_factor

        if spec.far and spec.pinning is not PinningPolicy.NONE:
            gbps = self._apply_far_ceilings(spec, gbps, notes)
            if not spec.is_read:
                write_amp *= 1.0 + (cal.pmem.far_write_amplification_max - 1.0) * min(
                    1.0, spec.threads / 18.0
                )
                # §4.4 reports *up to* 10x internal amplification.
                write_amp = min(write_amp, cal.pmem.far_write_amplification_max)

        gbps = self._apply_dax(spec, gbps, notes)
        return _Solo(
            spec=spec,
            gbps=gbps,
            issue_gbps=issue,
            media_cap_gbps=media_cap,
            read_amplification=read_amp,
            write_amplification=write_amp,
            notes=notes,
        )

    def _apply_far_ceilings(
        self, spec: StreamSpec, gbps: float, notes: list[str]
    ) -> float:
        cal = self.calibration
        if spec.is_read:
            warm = self.directory.is_warm(spec.issuing_socket, spec.target_socket)
            if spec.media is MediaKind.DRAM:
                cap = self.ctx.warm_far_read_cap_dram
                notes.append("far DRAM read: UPI-bound")
            elif warm:
                cap = self.ctx.warm_far_read_cap_pmem
                notes.append("far PMEM read: directory warm")
            else:
                cap = self.upi.cold_far_read_cap(spec.threads)
                notes.append("far PMEM read: first run, directory cold")
            return min(gbps, cap)
        if spec.media is MediaKind.DRAM:
            return min(gbps, self.ctx.upi_data_cap)
        notes.append("far PMEM write: ntstore degrades to read-modify-write")
        return min(gbps, cal.pmem.far_write_max)

    def _solo_random(self, spec: StreamSpec) -> _Solo:
        cal = self.calibration
        wc_eff = 1.0
        if spec.media is MediaKind.PMEM and not spec.is_read:
            # Scattered stores put pressure on the combining buffer even
            # at small access sizes (Fig. 13a: >6 threads always hurt).
            wc_eff = self.write_combining.efficiency(
                spec.threads, max(spec.access_size, 2048)
            )
        gbps = random_access.random_bandwidth(
            cal,
            spec.media,
            spec.is_read,
            spec.threads,
            spec.access_size,
            spec.region_bytes,
            wc_efficiency=wc_eff,
            tables=self.ctx.random_tables,
        )
        notes: list[str] = []
        read_amp = 1.0
        write_amp = 1.0
        if spec.media is MediaKind.PMEM:
            if spec.is_read:
                read_amp = self.read_buffer.random_amplification(spec.access_size)
            else:
                write_amp = self.write_combining.write_amplification(
                    spec.threads, spec.access_size, grouped=False
                )
        if spec.pinning is PinningPolicy.NONE:
            gbps *= 0.6
            notes.append("unpinned random access")
        elif spec.pinning is PinningPolicy.NUMA_REGION:
            physical = self.ctx.physical_core_count[spec.issuing_socket]
            gbps *= self.scheduler.pinned_factor(
                spec.pinning, spec.threads, physical, write=not spec.is_read
            )
        if spec.far:
            cap = (
                self.ctx.warm_far_read_cap_pmem
                if spec.is_read
                else cal.pmem.far_write_max
            )
            gbps = min(gbps, cap)
            notes.append("far random access: UPI-bound")
        gbps = self._apply_dax(spec, gbps, notes)
        return _Solo(
            spec=spec,
            gbps=gbps,
            issue_gbps=gbps,
            media_cap_gbps=gbps,
            read_amplification=read_amp,
            write_amplification=write_amp,
            notes=notes,
        )

    def _apply_dax(self, spec: StreamSpec, gbps: float, notes: list[str]) -> float:
        """Apply fsdax steady-state and page-fault costs (§2.3)."""
        if spec.media is not MediaKind.PMEM or spec.dax_mode is DaxMode.DEVDAX:
            return gbps
        cal = self.calibration
        if not spec.prefaulted:
            # The steady-state factor is the *amortised* cost of fsdax
            # page faults over the paper's 70 GB sweeps; explicit fault
            # counts and seconds are reported via the counters so callers
            # (and the daxmode experiment) can reason about cold starts.
            gbps *= fsdax_bandwidth_factor(cal.pmem.devdax_advantage)
            region = MappedRegion(
                size=spec.region_bytes, dax_mode=spec.dax_mode, prefaulted=False
            )
            notes.append(
                f"fsdax: {region.pages} first-touch page faults "
                f"(~{region.fault_cost(cal.pmem.page_fault_cost):.3f}s if cold)"
            )
        return gbps

    # ------------------------------------------------------------------
    # cross-stream effects
    # ------------------------------------------------------------------

    def _apply_multi_stream_prefetch(self, solos: list[_Solo]) -> None:
        by_socket: dict[int, list[_Solo]] = {}
        for solo in solos:
            if solo.spec.is_read and solo.spec.pattern is Pattern.SEQUENTIAL:
                by_socket.setdefault(solo.spec.issuing_socket, []).append(solo)
        for group in by_socket.values():
            if len(group) > 1:
                factor = self.prefetcher.multi_stream_factor(len(group))
                for solo in group:
                    solo.gbps *= factor
                    solo.notes.append("prefetcher tracks multiple streams")

    def _apply_mixed_interference(self, solos: list[_Solo]) -> None:
        groups: dict[tuple[int, MediaKind], list[_Solo]] = {}
        for solo in solos:
            key = (solo.spec.target_socket, solo.spec.media)
            groups.setdefault(key, []).append(solo)
        for (_, media), group in groups.items():
            reads = [s for s in group if s.spec.is_read]
            writes = [s for s in group if not s.spec.is_read]
            if not reads or not writes:
                continue
            read_total = sum(s.gbps for s in reads)
            write_total = sum(s.gbps for s in writes)
            outcome = mixed_model.resolve(
                self.calibration,
                media,
                read_total,
                write_total,
                params=self.ctx.mixed_params.get(media),
            )
            read_scale = outcome.read_gbps / read_total if read_total > 0 else 1.0
            write_scale = outcome.write_gbps / write_total if write_total > 0 else 1.0
            for solo in reads:
                solo.gbps *= read_scale
                solo.notes.append("mixed read/write interference")
            for solo in writes:
                solo.gbps *= write_scale
                solo.notes.append("mixed read/write interference")

    def _apply_shared_target(self, solos: list[_Solo]) -> None:
        cal = self.calibration
        groups: dict[tuple[int, MediaKind, Op], list[_Solo]] = {}
        for solo in solos:
            key = (solo.spec.target_socket, solo.spec.media, solo.spec.op)
            groups.setdefault(key, []).append(solo)
        for (_, media, op), group in groups.items():
            issuers = {s.spec.issuing_socket for s in group}
            if len(issuers) < 2:
                continue
            if op is Op.READ:
                cap = (
                    cal.pmem.shared_target_read_max
                    if media is MediaKind.PMEM
                    else cal.dram.shared_target_read_max
                )
                note = "near+far readers on one target: coherence writes + RPQ pollution"
            else:
                if media is not MediaKind.PMEM:
                    continue
                cap = cal.pmem.mixed_socket_write_max
                note = "near+far writers on one target PMEM"
            total = sum(s.gbps for s in group)
            if total > cap:
                scale = cap / total
                for solo in group:
                    solo.gbps *= scale
                    solo.notes.append(note)

    def _apply_far_far_pollution(self, solos: list[_Solo]) -> None:
        far_reads = [s for s in solos if s.spec.far and s.spec.is_read]
        directions = {(s.spec.issuing_socket, s.spec.target_socket) for s in far_reads}
        if len(directions) < 2:
            return
        for solo in far_reads:
            cap = (
                self.calibration.pmem.far_far_read_per_socket
                if solo.spec.media is MediaKind.PMEM
                else self.calibration.dram.far_far_read_per_socket
            )
            if solo.gbps > cap:
                solo.gbps = cap
                solo.notes.append("both sockets read far: mutual queue pollution")

    def _apply_upi_capacity(self, solos: list[_Solo]) -> None:
        cap = self.ctx.upi_data_cap
        by_direction: dict[tuple[int, int], list[_Solo]] = {}
        for solo in solos:
            if not solo.spec.far:
                continue
            # Read data flows home -> issuer; write data issuer -> home.
            if solo.spec.is_read:
                direction = (solo.spec.target_socket, solo.spec.issuing_socket)
            else:
                direction = (solo.spec.issuing_socket, solo.spec.target_socket)
            by_direction.setdefault(direction, []).append(solo)
        for group in by_direction.values():
            total = sum(s.gbps for s in group)
            if total > cap:
                scale = cap / total
                for solo in group:
                    solo.gbps *= scale
                    solo.notes.append("UPI direction saturated")

    def _apply_dram_package_efficiency(self, solos: list[_Solo]) -> None:
        near_dram_reads = [
            s
            for s in solos
            if s.spec.media is MediaKind.DRAM and s.spec.is_read and not s.spec.far
        ]
        sockets = {s.spec.issuing_socket for s in near_dram_reads}
        if len(sockets) > 1:
            eff = self.calibration.dram.dual_socket_efficiency
            for solo in near_dram_reads:
                solo.gbps *= eff
                solo.notes.append("dual-socket DRAM package efficiency")

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    def _collect_counters(self, solos: list[_Solo]) -> PerfCounters:
        counters = PerfCounters()
        cal = self.calibration
        upi_payload: dict[tuple[int, int], float] = {}
        for solo in solos:
            spec = solo.spec
            volume = float(spec.total_bytes)
            if spec.is_read:
                counters.app_bytes_read += volume
                counters.media_bytes_read += volume * solo.read_amplification
            else:
                counters.app_bytes_written += volume
                counters.media_bytes_written += volume * solo.write_amplification
                if spec.media is MediaKind.PMEM and solo.write_amplification > 1.0:
                    # RMW amplification also reads the media line first.
                    counters.media_bytes_read += volume * (
                        solo.write_amplification - 1.0
                    )
            if spec.far:
                counters.upi_bytes += volume
                direction = (
                    (spec.target_socket, spec.issuing_socket)
                    if spec.is_read
                    else (spec.issuing_socket, spec.target_socket)
                )
                upi_payload[direction] = upi_payload.get(direction, 0.0) + solo.gbps
            if spec.media is MediaKind.PMEM and spec.dax_mode is DaxMode.FSDAX and not spec.prefaulted:
                region = MappedRegion(size=spec.region_bytes, dax_mode=spec.dax_mode)
                counters.page_faults += region.pages
                counters.page_fault_seconds += region.fault_cost(
                    cal.pmem.page_fault_cost
                )
            occupancy = self.imc.occupancy(
                solo.issue_gbps,
                max(solo.media_cap_gbps, 1e-9),  # simlint: ignore[unit-literal] -- epsilon guard, not a unit
            )
            if spec.is_read:
                counters.rpq_occupancy = max(counters.rpq_occupancy, occupancy)
            else:
                counters.wpq_occupancy = max(counters.wpq_occupancy, occupancy)
            counters.notes.extend(solo.notes)
        if upi_payload:
            # A direction carries its own payload's metadata plus request
            # traffic for payload flowing the opposite way, which is why
            # the paper's VTune run shows 90%+ utilization in the "2 Far"
            # read scenario even though each direction moves ~25 GB/s.
            reverse_request_fraction = 0.28
            utilizations = []
            for direction, payload in upi_payload.items():
                reverse = upi_payload.get((direction[1], direction[0]), 0.0)
                utilizations.append(
                    self.upi.utilization(payload)
                    + reverse * reverse_request_fraction / self.calibration.upi.raw_per_direction
                )
            counters.upi_utilization = min(1.0, max(utilizations))
        return counters
