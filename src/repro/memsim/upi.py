"""UPI cross-socket interconnect and coherence-directory model.

Far memory access (reading or writing PMEM/DRAM attached to the other
socket) flows through the Ultra Path Interconnect. Three separable effects
matter for bandwidth (§3.4, §3.5, §4.4):

1. **Capacity**: ~40 GB/s raw per direction, of which ~25% is metadata,
   leaving ~31 GB/s of payload per direction. Far DRAM reads are pinned to
   this ceiling; far PMEM reads sit just below their near bandwidth
   anyway, so the same ceiling binds.
2. **Directory warm-up**: the cross-socket coherency protocol keeps
   address-space mappings per NUMA region. The *first* multi-threaded far
   traversal of a region constantly reassigns mappings and crawls at
   ~8 GB/s (best at ~4 threads, worse with more); once warm — or after a
   single-threaded priming pass — the same traversal reaches ~33 GB/s.
3. **Queue pollution**: far requests are inserted into the target iMC's
   queues with UPI latency, interleaving with local request streams and
   breaking Optane's 256 B locality. This is why two sockets reading
   *each other's* PMEM flatten at ~50 GB/s total and why near + far
   readers on the *same* PMEM collapse far below either alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError, WorkloadError
from repro.memsim.calibration import InterconnectCalibration, PmemCalibration


@dataclass
class CoherenceDirectory:
    """Tracks which (reader socket -> home socket) mappings are warm.

    The paper verifies that the warm-up is a NUMA-region effect, not a
    per-core one: priming far memory with a single thread eliminates the
    multi-threaded first-run penalty (§3.4). Accordingly the directory
    records warmth per socket pair, and *any* access — including a
    single-threaded priming read — warms the pair.
    """

    _warm: set[tuple[int, int]] = field(default_factory=set)

    @property
    def warm_pairs(self) -> frozenset[tuple[int, int]]:
        """Immutable snapshot of the warm (reader, home) pairs.

        Used by the :class:`~repro.memsim.bandwidth.BandwidthModel`
        façade to convert this mutable directory into an explicit
        :class:`~repro.memsim.config.DirectoryState` value for the pure
        evaluation core.
        """
        return frozenset(self._warm)

    def is_warm(self, reader_socket: int, home_socket: int) -> bool:
        if reader_socket == home_socket:
            return True
        return (reader_socket, home_socket) in self._warm

    def touch(self, reader_socket: int, home_socket: int) -> None:
        """Record a completed far traversal, warming the mapping."""
        if reader_socket != home_socket:
            self._warm.add((reader_socket, home_socket))

    def invalidate(self, home_socket: int) -> None:
        """Drop all warm mappings for a home socket.

        Models the remapping churn caused when ownership of an address
        range keeps switching between sockets (§3.4: "if access to the
        same memory regions is constantly switching between sockets,
        constant remapping is required").
        """
        self._warm = {
            pair for pair in self._warm if pair[1] != home_socket
        }


@dataclass(frozen=True)
class UpiModel:
    """Bandwidth ceilings contributed by the UPI link."""

    upi: InterconnectCalibration
    pmem: PmemCalibration

    @property
    def data_cap_per_direction(self) -> float:
        """Payload GB/s available per direction after metadata overhead."""
        return self.upi.data_per_direction

    def cold_far_read_cap(self, threads: int) -> float:
        """Bandwidth ceiling for a first-run far read (directory cold).

        Peaks at ~8 GB/s around 4 threads and *decays* with additional
        threads because every thread's accesses trigger concurrent mapping
        reassignments (Fig. 5: the optimal far thread count shifts from 18
        to 4).
        """
        if threads < 1:
            raise WorkloadError(f"thread count must be >= 1, got {threads}")
        best = self.pmem.cold_far_read_best_threads
        ramp = min(1.0, threads / best)
        decay = 1.0 + self.pmem.cold_far_read_decay * max(0, threads - best)
        return self.pmem.cold_far_read_max * ramp / decay

    def warm_far_read_cap(self, media_far_cap: float) -> float:
        """Ceiling for a warm far read of a device with ``media_far_cap``.

        The binding constraint is whichever is lower: the device's own
        far-read ceiling or the UPI payload capacity. In practice both
        PMEM and DRAM land at ~33 GB/s (Fig. 5 second run, Fig. 6b 1 Far).
        """
        if media_far_cap <= 0:
            raise SimulationError("media far cap must be positive")
        return min(media_far_cap, self.data_cap_per_direction * 1.07)

    def utilization(self, payload_gbps: float) -> float:
        """Fraction of one UPI direction consumed, metadata included.

        §3.5 reports 90%+ average utilization (including metadata) while
        both sockets read far memory; tests assert the model reproduces
        that reading.
        """
        if payload_gbps < 0:
            raise SimulationError("payload bandwidth cannot be negative")
        raw_needed = payload_gbps / (1.0 - self.upi.metadata_fraction)
        return min(1.0, raw_needed / self.upi.raw_per_direction)
