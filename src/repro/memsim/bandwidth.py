"""Backward-compatible façade over the pure evaluation core.

.. deprecated::
    :class:`BandwidthModel` predates the pure-core refactor and is kept
    as a thin delegating façade. New code should use
    :class:`~repro.memsim.config.MachineConfig` with
    :func:`repro.memsim.evaluation.evaluate` (or, for sweeps, the cached
    :class:`~repro.sweep.SweepRunner`) and thread
    :class:`~repro.memsim.config.DirectoryState` values explicitly.

The actual model — issue rates, media ceilings, locality effects, and
cross-stream interactions — lives in :mod:`repro.memsim.evaluation` as a
pure function of ``(MachineConfig, streams, DirectoryState)``. This
module re-exports the result types and wraps the function in the old
mutable-object interface: the façade owns a :class:`CoherenceDirectory`
whose contents are converted to an explicit
:class:`~repro.memsim.config.DirectoryState` for each call, and warmed
in place from the result afterwards. All evaluations are routed through
the process-wide :class:`~repro.sweep.EvaluationService`, so façade
users share the memo cache with service-native callers.
"""

from __future__ import annotations

import math

from repro.errors import WorkloadError
from repro.memsim import mixed as mixed_model
from repro.memsim.address import DaxMode
from repro.memsim.buffers import ReadBufferModel, WriteCombiningModel
from repro.memsim.calibration import DeviceCalibration
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.evaluation import BandwidthResult, StreamResult, components
from repro.memsim.imc import ImcModel
from repro.memsim.prefetcher import PrefetcherModel
from repro.memsim.scheduler import PinningPolicy, SchedulerModel
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind, SystemTopology
from repro.memsim.upi import CoherenceDirectory, UpiModel
from repro.units import GIB

__all__ = [
    "BandwidthModel",
    "BandwidthResult",
    "StreamResult",
    "effective_threads",
    "is_finite_bandwidth",
    "ssd_scan_bandwidth",
]


class BandwidthModel:
    """Steady-state bandwidth calculator for a configured server.

    .. deprecated::
        Thin façade kept for backward compatibility; prefer the pure
        ``evaluate(MachineConfig, streams, DirectoryState)`` API (see the
        module docstring). The façade adds nothing but mutable directory
        bookkeeping on top of it.

    Parameters
    ----------
    topology:
        Hardware layout; defaults to the paper's dual-socket server.
    calibration:
        Fitted device parameters; defaults to the paper profile.
    prefetcher_enabled:
        Model the L2 hardware prefetcher (default). Disabling it
        reproduces the paper's prefetcher ablation (§3.1-§3.2).
    write_combining_enabled:
        Model Optane's write-combining buffer (default). Disabling it is
        a pure what-if ablation.
    config:
        An already-built :class:`MachineConfig`; mutually exclusive with
        the individual parameters above.
    service:
        Evaluation service to route calls through; defaults to the
        process-wide shared service (and its shared memo cache).

    The façade holds one piece of mutable state: the cross-socket
    :class:`CoherenceDirectory`. Far reads are slow until their
    (reader, home) pair has been touched, exactly like the paper's
    first-run measurements; :meth:`reset_directory` restores the cold
    state and :meth:`warm_directory` pre-touches every pair.
    """

    def __init__(
        self,
        topology: SystemTopology | None = None,
        calibration: DeviceCalibration | None = None,
        *,
        prefetcher_enabled: bool = True,
        write_combining_enabled: bool = True,
        config: MachineConfig | None = None,
        service: object | None = None,
    ) -> None:
        if config is not None:
            if topology is not None or calibration is not None:
                raise WorkloadError(
                    "pass either config= or topology/calibration, not both"
                )
            self.config = config
        elif (
            topology is None
            and calibration is None
            and prefetcher_enabled
            and write_combining_enabled
        ):
            # The common default case shares the cached paper config (and
            # thereby its one-time calibration validation and cache keys).
            self.config = paper_config()
        else:
            kwargs: dict[str, object] = {
                "prefetcher_enabled": prefetcher_enabled,
                "write_combining_enabled": write_combining_enabled,
            }
            if topology is not None:
                kwargs["topology"] = topology
            if calibration is not None:
                kwargs["calibration"] = calibration
            self.config = MachineConfig(**kwargs)  # type: ignore[arg-type]
        self._service = service
        self.directory = CoherenceDirectory()

    # ------------------------------------------------------------------
    # delegated configuration views
    # ------------------------------------------------------------------

    @property
    def topology(self) -> SystemTopology:
        return self.config.topology

    @property
    def calibration(self) -> DeviceCalibration:
        return self.config.calibration

    @property
    def prefetcher(self) -> PrefetcherModel:
        return components(self.config).prefetcher

    @property
    def write_combining(self) -> WriteCombiningModel:
        return components(self.config).write_combining

    @property
    def read_buffer(self) -> ReadBufferModel:
        return components(self.config).read_buffer

    @property
    def upi(self) -> UpiModel:
        return components(self.config).upi

    @property
    def imc(self) -> ImcModel:
        return components(self.config).imc

    @property
    def scheduler(self) -> SchedulerModel:
        return components(self.config).scheduler

    @property
    def service(self):
        """The evaluation service this façade routes through."""
        if self._service is not None:
            return self._service
        from repro.sweep.service import default_service

        return default_service()

    # ------------------------------------------------------------------
    # directory state
    # ------------------------------------------------------------------

    def reset_directory(self) -> None:
        """Forget all cross-socket mappings (next far reads run cold)."""
        self.directory = CoherenceDirectory()

    def warm_directory(self) -> None:
        """Pre-touch every socket pair (models a priming pass, §3.4)."""
        for a in self.topology.sockets:
            for b in self.topology.sockets:
                self.directory.touch(a.socket_id, b.socket_id)

    def directory_state(self) -> DirectoryState:
        """The mutable directory's contents as an immutable state value."""
        return DirectoryState(self.directory.warm_pairs)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, streams: list[StreamSpec] | tuple[StreamSpec, ...]) -> BandwidthResult:
        """Evaluate concurrent streams, resolving shared-resource effects.

        Delegates to the pure core via the evaluation service (see
        :func:`repro.memsim.evaluation.evaluate` for the interaction
        rules), then replays the resulting directory warm-up onto this
        façade's mutable :class:`CoherenceDirectory` so repeated far
        reads behave exactly as before the refactor.
        """
        result = self.service.evaluate(
            self.config, tuple(streams), self.directory_state()
        )
        if result.directory_after is not None:
            for reader, home in sorted(result.directory_after.warm_pairs):
                self.directory.touch(reader, home)
        return result

    # ------------------------------------------------------------------
    # convenience entry points (used by figures, examples, and the SSB
    # cost model)
    # ------------------------------------------------------------------

    def sequential_read(
        self,
        threads: int,
        access_size: int = 4096,
        *,
        layout: Layout = Layout.INDIVIDUAL,
        media: MediaKind = MediaKind.PMEM,
        pinning: PinningPolicy = PinningPolicy.CORES,
        far: bool = False,
        warm: bool = True,
        dax_mode: DaxMode = DaxMode.DEVDAX,
        prefaulted: bool = False,
    ) -> float:
        """Bandwidth of one sequential read stream, GB/s.

        ``warm=True`` pre-touches the coherence directory so a far read
        runs at warm speed; ``warm=False`` leaves the directory state as
        it is — a first far read then runs cold and a repeat of the same
        call runs warm, exactly like the paper's "Far" vs "2nd Far"
        measurements (§3.4). Use :meth:`reset_directory` to force the
        cold state again.
        """
        target = 1 if far else 0
        if far and warm:
            self.directory.touch(0, target)
        spec = StreamSpec(
            op=Op.READ,
            threads=threads,
            access_size=access_size,
            media=media,
            layout=layout,
            pinning=pinning,
            issuing_socket=0,
            target_socket=target,
            dax_mode=dax_mode,
            prefaulted=prefaulted,
        )
        return self.evaluate([spec]).total_gbps

    def sequential_write(
        self,
        threads: int,
        access_size: int = 4096,
        *,
        layout: Layout = Layout.INDIVIDUAL,
        media: MediaKind = MediaKind.PMEM,
        pinning: PinningPolicy = PinningPolicy.CORES,
        far: bool = False,
        dax_mode: DaxMode = DaxMode.DEVDAX,
        prefaulted: bool = False,
    ) -> float:
        """Bandwidth of one sequential write stream, GB/s."""
        spec = StreamSpec(
            op=Op.WRITE,
            threads=threads,
            access_size=access_size,
            media=media,
            layout=layout,
            pinning=pinning,
            issuing_socket=0,
            target_socket=1 if far else 0,
            dax_mode=dax_mode,
            prefaulted=prefaulted,
        )
        return self.evaluate([spec]).total_gbps

    def random_read(
        self,
        threads: int,
        access_size: int,
        *,
        media: MediaKind = MediaKind.PMEM,
        region_bytes: int = 2 * GIB,
    ) -> float:
        """Random read bandwidth on a region of ``region_bytes``, GB/s."""
        spec = StreamSpec(
            op=Op.READ,
            threads=threads,
            access_size=access_size,
            media=media,
            pattern=Pattern.RANDOM,
            region_bytes=region_bytes,
        )
        return self.evaluate([spec]).total_gbps

    def random_write(
        self,
        threads: int,
        access_size: int,
        *,
        media: MediaKind = MediaKind.PMEM,
        region_bytes: int = 2 * GIB,
    ) -> float:
        """Random write bandwidth on a region of ``region_bytes``, GB/s."""
        spec = StreamSpec(
            op=Op.WRITE,
            threads=threads,
            access_size=access_size,
            media=media,
            pattern=Pattern.RANDOM,
            region_bytes=region_bytes,
        )
        return self.evaluate([spec]).total_gbps

    def mixed(
        self,
        write_threads: int,
        read_threads: int,
        access_size: int = 4096,
        *,
        media: MediaKind = MediaKind.PMEM,
    ) -> mixed_model.MixedOutcome:
        """Concurrent read and write streams on one socket's DIMMs (§5.1).

        Matches the paper's mixed benchmark: individual 4 KB accesses to
        disjoint data on the *same* DIMMs, threads pinned to the NUMA
        region.
        """
        write = StreamSpec(
            op=Op.WRITE,
            threads=write_threads,
            access_size=access_size,
            media=media,
            pinning=PinningPolicy.NUMA_REGION,
        )
        read = StreamSpec(
            op=Op.READ,
            threads=read_threads,
            access_size=access_size,
            media=media,
            pinning=PinningPolicy.NUMA_REGION,
        )
        result = self.evaluate([write, read])
        read_alone = self.evaluate([read]).total_gbps
        write_alone = self.evaluate([write]).total_gbps
        return mixed_model.MixedOutcome(
            read_gbps=result.read_gbps,
            write_gbps=result.write_gbps,
            read_alone_gbps=read_alone,
            write_alone_gbps=write_alone,
        )


def effective_threads(threads: int, physical_cores: int) -> float:
    """Public helper mirroring the scheduler's hyperthread yield."""
    if threads < 1 or physical_cores < 1:
        raise WorkloadError("threads and cores must be >= 1")
    extra = max(0, threads - physical_cores)
    return min(threads, physical_cores) + 0.25 * extra


def ssd_scan_bandwidth(cal: DeviceCalibration) -> float:
    """Sequential scan bandwidth of the reference NVMe SSD, GB/s."""
    return cal.ssd.seq_read_max


def is_finite_bandwidth(value: float) -> bool:
    """Guard used by tests: a GB/s bandwidth must be finite and non-negative."""
    return math.isfinite(value) and value >= 0.0
