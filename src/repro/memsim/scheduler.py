"""OS-scheduler model for the three thread-pinning policies.

The paper evaluates three ways of assigning benchmark threads to cores
(§3.3, §4.3):

* ``CORES`` — each thread pinned to one explicit core, physical cores
  filled before hyperthread siblings. Best bandwidth; no scheduler
  involvement.
* ``NUMA_REGION`` — threads pinned to the socket's core set (numactl);
  the scheduler still multiplexes threads onto cores, which costs a
  little once threads exceed physical cores, and intra-region node
  changes route writes through different iMCs, hurting write combining.
* ``NONE`` — the scheduler may place threads on either socket. Threads
  keep landing on (and migrating across) the far socket, so reads behave
  like perpetually-cold far reads (~9 GB/s peak, 4x worse) and writes
  halve (~7 GB/s peak, 2x worse).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.calibration import CpuCalibration


class PinningPolicy(enum.Enum):
    """Thread-to-core assignment strategy (paper §3.3)."""

    NONE = "none"
    NUMA_REGION = "numa_region"
    CORES = "cores"


#: Issue contribution of a hyperthread sibling. A second thread on a core
#: shares its load/store machinery and adds only a quarter of an extra
#: issue stream (§3.2). Shared with the batched kernels
#: (:mod:`repro.memsim.kernels.analytic`), which vectorize
#: :attr:`ThreadPlacement.effective_issue_threads` with this constant.
HT_YIELD: float = 0.25


@dataclass(frozen=True)
class ThreadPlacement:
    """Resolved placement of a thread group on one socket."""

    threads: int
    physical_cores: int

    @property
    def hyperthreaded(self) -> int:
        """Threads that must share a physical core with a sibling."""
        return max(0, self.threads - self.physical_cores)

    @property
    def effective_issue_threads(self) -> float:
        """Thread count usable for bandwidth *issue* purposes.

        Hyperthread siblings share the core's load/store machinery, so a
        second thread on a core contributes only a small fraction of an
        extra issue stream for bandwidth-bound sequential work (§3.2:
        "adding hyperthreads does not improve the bandwidth").
        """
        return min(self.threads, self.physical_cores) + self.hyperthreaded * HT_YIELD


@dataclass(frozen=True)
class SchedulerModel:
    """Bandwidth factors determined by the pinning policy."""

    cpu: CpuCalibration

    def placement(self, threads: int, physical_cores: int) -> ThreadPlacement:
        if threads < 1:
            raise WorkloadError(f"thread count must be >= 1, got {threads}")
        if physical_cores < 1:
            raise WorkloadError("physical core count must be >= 1")
        return ThreadPlacement(threads=threads, physical_cores=physical_cores)

    def pinned_factor(
        self, policy: PinningPolicy, threads: int, physical_cores: int, write: bool
    ) -> float:
        """Multiplicative factor for the two *pinned* policies.

        ``CORES`` is the 1.0 reference. ``NUMA_REGION`` matches it exactly
        up to the physical core count (the scheduler has a free core per
        thread, Fig. 4) and pays a small multiplexing overhead beyond,
        plus — for writes — the iMC-crossing write-combining loss (§4.3).
        ``NONE`` is handled by the caller via :meth:`unpinned_mode`
        because its behaviour is not a simple factor (reads fall onto the
        cold-far path).
        """
        if policy is PinningPolicy.CORES:
            return 1.0
        if policy is not PinningPolicy.NUMA_REGION:
            raise WorkloadError(
                "pinned_factor handles CORES and NUMA_REGION; "
                "use unpinned_mode for PinningPolicy.NONE"
            )
        factor = 1.0
        if threads > physical_cores:
            factor *= self.cpu.numa_pinning_overhead
        if write:
            factor *= self.cpu.numa_pinning_write_overhead
        return factor

    def unpinned_read_envelope(self, cold_far_cap_gbps: float) -> float:
        """Read-bandwidth ceiling when threads are not pinned at all.

        Migration across sockets keeps re-triggering the coherence
        remapping that also limits cold far reads; the unpinned ceiling
        tracks that envelope, slightly above it because a fraction of
        accesses still happen to land near (Fig. 4: ~9 GB/s vs the ~8 GB/s
        cold-far peak).
        """
        if cold_far_cap_gbps <= 0:
            raise WorkloadError("cold far cap must be positive")
        return cold_far_cap_gbps * self.cpu.unpinned_read_factor

    def unpinned_write_factor(self) -> float:
        """Write-bandwidth factor when threads are not pinned (Fig. 9)."""
        return self.cpu.unpinned_write_factor
