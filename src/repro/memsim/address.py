"""Address-space and DIMM-interleaving arithmetic.

Implements the striping behaviour of the paper's Figure 2: data on one
socket's PMEM is interleaved across its six DIMMs in 4 KB steps, so an
access of more than ``(ways - 1) * 4 KB + 1`` bytes is guaranteed to touch
every DIMM, and the set of DIMMs engaged by a group of threads reading a
contiguous window is a pure function of the window size.

Also models the devdax/fsdax distinction of §2.3: fsdax mappings pay a
page-fault (plus page-zeroing) cost on first touch, devdax does not.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsim.constants import INTERLEAVE_SIZE, PMEM_PAGE_SIZE


class DaxMode(enum.Enum):
    """How App Direct PMEM is exposed to the application (§2.1, §2.3)."""

    DEVDAX = "devdax"
    FSDAX = "fsdax"


@dataclass(frozen=True)
class InterleaveMap:
    """Round-robin striping of a linear address space across DIMMs."""

    ways: int
    granularity: int = INTERLEAVE_SIZE

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigurationError(f"interleave ways must be >= 1, got {self.ways}")
        if self.granularity < 1:
            raise ConfigurationError(
                f"interleave granularity must be >= 1, got {self.granularity}"
            )

    def dimm_of(self, address: int) -> int:
        """The DIMM index (0-based, per socket) holding ``address``."""
        if address < 0:
            raise ConfigurationError(f"address must be non-negative, got {address}")
        return (address // self.granularity) % self.ways

    def dimms_touched(self, address: int, size: int) -> frozenset[int]:
        """The set of DIMM indices an access ``[address, address+size)`` hits."""
        if size <= 0:
            raise ConfigurationError(f"access size must be positive, got {size}")
        first_stripe = address // self.granularity
        last_stripe = (address + size - 1) // self.granularity
        n_stripes = last_stripe - first_stripe + 1
        if n_stripes >= self.ways:
            return frozenset(range(self.ways))
        return frozenset((first_stripe + i) % self.ways for i in range(n_stripes))

    def span_dimm_count(self, size: int) -> int:
        """Worst-case-free DIMM count for an *aligned* access of ``size``.

        An access aligned to the interleave granularity touches exactly
        ``ceil(size / granularity)`` stripes (capped at ``ways``); this is
        the "aligned 4 KB writes target exactly one DIMM" property of §4.1.
        """
        if size <= 0:
            raise ConfigurationError(f"access size must be positive, got {size}")
        return min(self.ways, math.ceil(size / self.granularity))

    def window_parallelism(self, window_bytes: float) -> float:
        """Effective DIMM parallelism of a moving contiguous window.

        A group of threads collectively reading one sequential stream has,
        at any instant, an active window of roughly ``threads *
        access_size`` bytes. As the window slides it straddles stripe
        boundaries, so on average it engages one more stripe than its size
        alone covers. This fractional quantity drives the grouped-access
        bandwidth of Figures 3 and 7: a 64 B x 36 thread window (2.3 KB)
        keeps under two DIMMs busy, while a 4 KB x 6+ thread window
        engages all six.
        """
        if window_bytes <= 0:
            raise ConfigurationError("window must be positive")
        return min(float(self.ways), 1.0 + window_bytes / self.granularity)


@dataclass(frozen=True)
class MappedRegion:
    """A PMEM mapping with a dax mode and a fault state (§2.3).

    ``prefaulted`` models running the experiment after all pages were
    touched once; the paper shows devdax and fsdax then perform
    identically.
    """

    size: int
    dax_mode: DaxMode = DaxMode.DEVDAX
    prefaulted: bool = False
    page_size: int = PMEM_PAGE_SIZE

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"region size must be positive, got {self.size}")
        if self.page_size <= 0:
            raise ConfigurationError("page size must be positive")

    @property
    def pages(self) -> int:
        """Number of (huge) pages backing the region."""
        return math.ceil(self.size / self.page_size)

    def fault_cost(self, per_fault_seconds: float) -> float:
        """Total first-touch page-fault cost for a cold traversal, seconds.

        devdax has no page cache and no zeroing, so the cost is zero; a
        prefaulted fsdax region also costs nothing (§2.3's verification
        experiment). Otherwise every page faults once: at the paper's
        0.5 ms per 2 MB page, faulting 1 GB costs at least 0.25 s.
        """
        if self.dax_mode is DaxMode.DEVDAX or self.prefaulted:
            return 0.0
        return self.pages * per_fault_seconds


def fsdax_bandwidth_factor(devdax_advantage: float) -> float:
    """Dimensionless factor scaling devdax GB/s bandwidths down to fsdax.

    §2.3: devdax consistently achieves 5-10% higher bandwidth; with the
    calibrated midpoint ``devdax_advantage`` of 7.5% the fsdax factor is
    ``1 / 1.075``.
    """
    if devdax_advantage < 0:
        raise ConfigurationError("devdax advantage cannot be negative")
    return 1.0 / (1.0 + devdax_advantage)
