"""Performance counters: the simulator's stand-in for Intel VTune.

The paper verifies several of its explanations with VTune (UPI utilization
above 90% in the "2 Far" read scenario, up to 10x internal write
amplification for far writes, >70% memory-bound time in SSB joins). The
model cannot be *checked* against real counters, so instead it *emits*
them: every bandwidth evaluation fills a :class:`PerfCounters` snapshot
that tests and experiments assert against the paper's observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Aggregated hardware-event counters for one evaluation.

    Byte counters distinguish *application* traffic (what the benchmark
    asked for) from *media* traffic (what the devices internally moved);
    their ratio is the read/write amplification the paper discusses in
    §4.1 and §4.4.
    """

    #: Bytes the application requested to read.
    app_bytes_read: float = 0.0
    #: Bytes the application requested to write.
    app_bytes_written: float = 0.0
    #: Bytes the media actually read (includes 256 B-granularity and
    #: read-modify-write amplification).
    media_bytes_read: float = 0.0
    #: Bytes the media actually wrote.
    media_bytes_written: float = 0.0
    #: Payload bytes that crossed the UPI link.
    upi_bytes: float = 0.0
    #: Peak utilization of the most-loaded UPI direction, 0..1, including
    #: the metadata share (§3.5 reports 90%+ for the 2-Far read case).
    upi_utilization: float = 0.0
    #: First-touch page faults taken (fsdax only).
    page_faults: int = 0
    #: Seconds spent in page-fault handling.
    page_fault_seconds: float = 0.0
    #: Mean occupancy fraction of the read pending queues, 0..1.
    rpq_occupancy: float = 0.0
    #: Mean occupancy fraction of the write pending queues, 0..1.
    wpq_occupancy: float = 0.0
    #: Free-form notes about model decisions (cold path taken, caps hit).
    notes: list[str] = field(default_factory=list)

    @property
    def read_amplification(self) -> float:
        """Media-read bytes per application-read byte (1.0 = none)."""
        if self.app_bytes_read <= 0:
            return 1.0
        return self.media_bytes_read / self.app_bytes_read

    @property
    def write_amplification(self) -> float:
        """Media-write bytes per application-written byte (1.0 = none)."""
        if self.app_bytes_written <= 0:
            return 1.0
        return self.media_bytes_written / self.app_bytes_written

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Return a new snapshot combining two evaluations.

        Byte counters add; utilization/occupancy take the maximum (they
        are peak readings, and concurrent evaluations share the links).
        """
        merged = PerfCounters(
            app_bytes_read=self.app_bytes_read + other.app_bytes_read,
            app_bytes_written=self.app_bytes_written + other.app_bytes_written,
            media_bytes_read=self.media_bytes_read + other.media_bytes_read,
            media_bytes_written=self.media_bytes_written + other.media_bytes_written,
            upi_bytes=self.upi_bytes + other.upi_bytes,
            upi_utilization=max(self.upi_utilization, other.upi_utilization),
            page_faults=self.page_faults + other.page_faults,
            page_fault_seconds=self.page_fault_seconds + other.page_fault_seconds,
            rpq_occupancy=max(self.rpq_occupancy, other.rpq_occupancy),
            wpq_occupancy=max(self.wpq_occupancy, other.wpq_occupancy),
        )
        merged.notes = [*self.notes, *other.notes]
        return merged

    def note(self, message: str) -> None:
        """Record a model decision for later inspection."""
        self.notes.append(message)
