"""PMEM endurance accounting (§2.1: "Like SSDs, PMEM wears out").

Optane media sustains a bounded number of writes per cell. Intel rates
the 128 GB module at 292 PB of media writes over its 5-year warranty
(~365 complete drive writes per day). This module converts a workload's
*application* write rate — amplified by the write-combining and far-
write effects the simulator tracks — into media wear and an expected
lifetime, so the write-amplification counters become actionable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsim.counters import PerfCounters
from repro.units import GB

#: Rated media-write endurance of one 128 GB Optane DIMM over its
#: 5-year warranty (Intel datasheet: 292 PB written).
DIMM_ENDURANCE_BYTES: float = 292e15

#: Seconds in the 5-year warranty window.
WARRANTY_SECONDS: float = 5 * 365 * 24 * 3600


@dataclass(frozen=True)
class WearEstimate:
    """Wear of one socket's DIMM set under a sustained write workload."""

    app_write_gbps: float
    write_amplification: float
    dimms: int = 6

    def __post_init__(self) -> None:
        if self.app_write_gbps < 0:
            raise ConfigurationError("write rate cannot be negative")
        if self.write_amplification < 1.0:
            raise ConfigurationError("amplification cannot be below 1.0")
        if self.dimms < 1:
            raise ConfigurationError("need at least one DIMM")

    @property
    def media_write_gbps(self) -> float:
        """What the media actually absorbs in decimal GB/s, after amplification."""
        return self.app_write_gbps * self.write_amplification

    @property
    def media_bytes_per_year(self) -> float:
        return self.media_write_gbps * GB * 365 * 24 * 3600

    @property
    def lifetime_years(self) -> float:
        """Years until the DIMM set reaches its rated endurance.

        Interleaving spreads writes evenly, so the set's endurance is
        the per-DIMM rating times the DIMM count.
        """
        if self.media_write_gbps == 0:
            return float("inf")
        total_endurance = DIMM_ENDURANCE_BYTES * self.dimms
        return total_endurance / self.media_bytes_per_year

    @property
    def within_warranty(self) -> bool:
        """True when sustained operation outlives the 5-year warranty."""
        return self.lifetime_years >= WARRANTY_SECONDS / (365 * 24 * 3600)

    def describe(self) -> str:
        return (
            f"{self.app_write_gbps:.1f} GB/s app writes x "
            f"{self.write_amplification:.1f} amplification = "
            f"{self.media_write_gbps:.1f} GB/s media -> "
            f"{self.lifetime_years:.0f} years of endurance "
            f"({'within' if self.within_warranty else 'EXCEEDS'} warranty wear rate)"
        )


def wear_from_counters(
    counters: PerfCounters, elapsed_seconds: float, dimms: int = 6
) -> WearEstimate:
    """Build a wear estimate from a simulation's counters.

    Uses the counters' own amplification, i.e. the exact media traffic
    the simulated workload caused (grouped sub-line writes, buffer
    thrash, far-write read-modify-writes all included).
    """
    if elapsed_seconds <= 0:
        raise ConfigurationError("elapsed time must be positive")
    app_gbps = counters.app_bytes_written / elapsed_seconds / GB
    return WearEstimate(
        app_write_gbps=app_gbps,
        write_amplification=counters.write_amplification,
        dimms=dimms,
    )
