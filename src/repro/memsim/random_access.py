"""Random-access bandwidth models (paper §5.2).

Random access differs from sequential access in three calibrated ways:

* **No prefetching / full latency per op**: each access pays a device
  round trip, so per-thread throughput is latency-bound and *more threads
  keep helping* — including hyperthreads, unlike sequential reads.
* **Media efficiency**: even fully threaded, random access tops out below
  the sequential peak (~2/3 for PMEM at >= 4 KB, ~50% around 256-512 B);
  PMEM accesses below 256 B additionally pay 256/size amplification.
* **DRAM region-size effect**: a small allocation (the paper's 2 GB hash
  region) is placed on a single NUMA node and served by half the
  channels; a large region engages all channels and reaches ~90% of
  sequential bandwidth. PMEM is always interleaved across all DIMMs at
  4 KB granularity, so its random bandwidth is region-size independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.memsim.calibration import DeviceCalibration
from repro.memsim.constants import OPTANE_LINE
from repro.memsim.topology import MediaKind
from repro.units import GB, NS


def _check(spec_threads: int, access_size: int) -> None:
    if spec_threads < 1:
        raise WorkloadError("thread count must be >= 1")
    if access_size <= 0:
        raise WorkloadError("access size must be positive")


#: Extra target-line fetch latency a random store pays before retiring.
_RANDOM_WRITE_EXTRA: float = 300 * NS


@dataclass(frozen=True)
class RandomAccessTables:
    """Config-derived constants of the random-access model.

    Each field stores exactly the value the corresponding inline
    expression produces, computed in the same operation order, so
    passing precomputed tables (as the per-config
    :class:`~repro.memsim.context.EvalContext` does) is bit-identical to
    deriving them per call. Peaks are decimal GB/s; stream rates are
    bytes/second; the write overhead is seconds.
    """

    pmem_read_peak_gbps: float        # seq_read_max * random_read_peak_fraction
    pmem_write_peak_gbps: float       # seq_write_max * random_write_peak_fraction
    pmem_read_stream_bps: float       # random_read_stream_rate * GB
    pmem_write_stream_bps: float      # write_stream_rate * GB
    pmem_write_overhead_seconds: float  # write_op_overhead + random line fetch
    dram_read_small_peak_gbps: float  # seq_read_max * random_small_region_fraction
    dram_read_large_peak_gbps: float
    dram_write_small_peak_gbps: float
    dram_write_large_peak_gbps: float
    dram_read_stream_bps: float       # read_stream_rate * GB
    dram_write_stream_bps: float      # write_stream_rate * GB


def tables_for(cal: DeviceCalibration) -> RandomAccessTables:
    """Derive the :class:`RandomAccessTables` for one calibration."""
    p = cal.pmem
    d = cal.dram
    return RandomAccessTables(
        pmem_read_peak_gbps=p.seq_read_max * p.random_read_peak_fraction,
        pmem_write_peak_gbps=p.seq_write_max * p.random_write_peak_fraction,
        pmem_read_stream_bps=p.random_read_stream_rate * GB,
        pmem_write_stream_bps=p.write_stream_rate * GB,
        pmem_write_overhead_seconds=p.write_op_overhead + _RANDOM_WRITE_EXTRA,
        dram_read_small_peak_gbps=d.seq_read_max * d.random_small_region_fraction,
        dram_read_large_peak_gbps=d.seq_read_max * d.random_large_region_fraction,
        dram_write_small_peak_gbps=d.seq_write_max * d.random_small_region_fraction,
        dram_write_large_peak_gbps=d.seq_write_max * d.random_large_region_fraction,
        dram_read_stream_bps=d.read_stream_rate * GB,
        dram_write_stream_bps=d.write_stream_rate * GB,
    )


def pmem_random_read_ramp(access_size: int) -> float:
    """Access-size ramp of the random PMEM read ceiling (pure ``**``).

    Factored out so the batched kernels can memoize it per unique access
    size with the exact scalar operations — ``np.power`` is not
    bit-identical to CPython's ``**``.
    """
    effective = max(access_size, OPTANE_LINE)
    return min(1.0, (effective / 4096.0) ** 0.10)


def pmem_random_write_ramp(access_size: int) -> float:
    """Access-size ramp of the random PMEM write ceiling (pure ``**``)."""
    effective = max(access_size, OPTANE_LINE)
    return min(1.0, (effective / 4096.0) ** 0.15)


def dram_random_read_ramp(access_size: int) -> float:
    """Access-size ramp of the random DRAM read ceiling (pure ``**``)."""
    return min(1.0, (access_size / 4096.0) ** 0.22)


def dram_random_write_ramp(access_size: int) -> float:
    """Access-size ramp of the random DRAM write ceiling (pure ``**``)."""
    return min(1.0, (access_size / 2048.0) ** 0.15)


def pmem_random_read_media_cap(
    cal: DeviceCalibration,
    access_size: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Device-side ceiling for random PMEM reads at ``access_size``, GB/s.

    Ramp anchored at ~50% of sequential for 256 B and ~2/3 at >= 4 KB;
    sub-line accesses pay the 256 B read amplification on top.
    """
    t = tables if tables is not None else tables_for(cal)
    ramp = pmem_random_read_ramp(access_size)
    cap = t.pmem_read_peak_gbps * ramp
    if access_size < OPTANE_LINE:
        cap *= access_size / OPTANE_LINE
    return cap


def pmem_random_read_issue(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Issue-side random read bandwidth of ``threads`` threads, GB/s.

    Latency-bound: every op pays the random read latency, so bandwidth
    scales with the thread count well past the physical core count (§5.2:
    "hyperthreading improves the PMEM bandwidth, unlike sequential
    reads").
    """
    _check(threads, access_size)
    t = tables if tables is not None else tables_for(cal)
    per_op_seconds = cal.pmem.random_read_latency + access_size / t.pmem_read_stream_bps
    return threads * access_size / per_op_seconds / GB


def pmem_random_read(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Random PMEM read bandwidth, GB/s."""
    _check(threads, access_size)
    return min(
        pmem_random_read_issue(cal, threads, access_size, tables=tables),
        pmem_random_read_media_cap(cal, access_size, tables=tables),
    )


def pmem_random_write_media_cap(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    wc_efficiency: float,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Device-side ceiling for random PMEM writes, GB/s.

    Random writes inherit the sequential write-combining pressure (passed
    in as ``wc_efficiency``, computed by the caller's
    :class:`~repro.memsim.buffers.WriteCombiningModel`) plus a random
    ramp: spatially scattered stores defeat combining below ~4 KB.
    """
    _check(threads, access_size)
    if not 0 < wc_efficiency <= 1:
        raise WorkloadError("write-combining efficiency must be in (0, 1]")
    t = tables if tables is not None else tables_for(cal)
    ramp = pmem_random_write_ramp(access_size)
    cap = t.pmem_write_peak_gbps * ramp * wc_efficiency
    if access_size < OPTANE_LINE:
        cap *= access_size / OPTANE_LINE
    return cap


def pmem_random_write_issue(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Issue-side random write bandwidth, GB/s.

    Each op pays the write overhead (including the sfence) plus an extra
    random target-line fetch latency before the store can retire.
    """
    _check(threads, access_size)
    t = tables if tables is not None else tables_for(cal)
    per_op = t.pmem_write_overhead_seconds + access_size / t.pmem_write_stream_bps
    return threads * access_size / per_op / GB


def dram_channel_fraction(cal: DeviceCalibration, region_bytes: int) -> float:
    """Fraction of a socket's DRAM channels serving a region.

    First-touch allocation puts a small region on one NUMA node — half
    the channels (§5.2); a region above the threshold spreads across all
    of them.
    """
    if region_bytes <= 0:
        raise WorkloadError("region size must be positive")
    if region_bytes <= cal.dram.small_region_threshold:
        return 0.5
    return 1.0


def dram_random_read(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    region_bytes: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Random DRAM read bandwidth, GB/s (region-size dependent)."""
    _check(threads, access_size)
    t = tables if tables is not None else tables_for(cal)
    channels = dram_channel_fraction(cal, region_bytes)
    size_ramp = dram_random_read_ramp(access_size)
    # The small-region peak already encodes the channel loss.
    peak = (
        t.dram_read_small_peak_gbps
        if channels < 1.0
        else t.dram_read_large_peak_gbps
    )
    cap = peak * size_ramp
    per_op = cal.dram.random_read_latency + access_size / t.dram_read_stream_bps
    issue = threads * access_size / per_op / GB
    return min(issue, cap)


def dram_random_write(
    cal: DeviceCalibration,
    threads: int,
    access_size: int,
    region_bytes: int,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Random DRAM write bandwidth, GB/s.

    DRAM random writes keep scaling with threads and are insensitive to
    access size beyond the ramp (§5.2: "the access size has little impact
    on the DRAM bandwidth and more threads achieve higher bandwidths").
    """
    _check(threads, access_size)
    t = tables if tables is not None else tables_for(cal)
    channels = dram_channel_fraction(cal, region_bytes)
    size_ramp = dram_random_write_ramp(access_size)
    peak = (
        t.dram_write_small_peak_gbps
        if channels < 1.0
        else t.dram_write_large_peak_gbps
    )
    cap = peak * size_ramp
    per_op = cal.dram.random_read_latency + access_size / t.dram_write_stream_bps
    issue = threads * access_size / per_op / GB
    return min(issue, cap)


def random_bandwidth(
    cal: DeviceCalibration,
    media: MediaKind,
    op_is_read: bool,
    threads: int,
    access_size: int,
    region_bytes: int,
    wc_efficiency: float = 1.0,
    *,
    tables: RandomAccessTables | None = None,
) -> float:
    """Random-access bandwidth in decimal GB/s (dispatch helper)."""
    if media is MediaKind.PMEM:
        if op_is_read:
            return pmem_random_read(cal, threads, access_size, tables=tables)
        return min(
            pmem_random_write_issue(cal, threads, access_size, tables=tables),
            pmem_random_write_media_cap(
                cal, threads, access_size, wc_efficiency, tables=tables
            ),
        )
    if media is MediaKind.DRAM:
        if op_is_read:
            return dram_random_read(
                cal, threads, access_size, region_bytes, tables=tables
            )
        return dram_random_write(
            cal, threads, access_size, region_bytes, tables=tables
        )
    raise WorkloadError(f"random access not modeled for media {media}")
