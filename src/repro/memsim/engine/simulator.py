"""Discrete-event simulator: the mechanism-level cross-check.

Where :class:`~repro.memsim.bandwidth.BandwidthModel` computes steady-state
bandwidth analytically from pattern statistics, this engine *replays* an
actual access trace op by op through the same component models:

* ops are split across DIMMs by the 4 KB interleave map;
* each DIMM is a server with a busy-until time and a service rate derived
  from the calibrated per-DIMM bandwidth;
* write service is stretched by the write-combining efficiency evaluated
  at the DIMM's *currently observed* stream concurrency (emergent, not
  prescribed);
* readers run ahead of completion up to a per-thread memory-level-
  parallelism budget (line-fill buffers plus prefetch depth); writers
  block on their trailing ``sfence``.

The engine exists to show that the paper's curve shapes are consequences
of these mechanisms: tests assert that the engine and the analytic model
agree on orderings and, within a tolerance band, on magnitudes. It is
also deliberately slower — run it on tens of MB, not the paper's 70 GB.
"""

from __future__ import annotations

import heapq

import numpy as np
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.memsim.address import InterleaveMap
from repro.memsim.buffers import ReadBufferModel, WriteCombiningModel
from repro.memsim.calibration import DeviceCalibration, paper_calibration
from repro.memsim.constants import OPTANE_LINE
from repro.memsim.context import EvalContext
from repro.memsim.engine.trace import build_traces
from repro.memsim.spec import Layout, Op, Pattern
from repro.memsim.topology import MediaKind, SystemTopology, paper_server
from repro.units import GB, MIB, NS, TIB

if TYPE_CHECKING:
    from repro.obs import Recorder


@dataclass(frozen=True)
class EngineConfig:
    """Parameters of one engine run (single socket, homogeneous threads)."""

    op: Op
    threads: int
    access_size: int
    layout: Layout = Layout.INDIVIDUAL
    pattern: Pattern = Pattern.SEQUENTIAL
    media: MediaKind = MediaKind.PMEM
    total_bytes: int = 32 * MIB
    region_bytes: int | None = None
    #: Minimum outstanding-op budget per reading thread. The effective
    #: budget (:attr:`effective_read_mlp`) grows for sub-line accesses:
    #: a core's ~10 line-fill buffers hold ten 64 B misses but only two
    #: 4 KB streaming ops.
    read_mlp_ops: int = 2
    #: Spread of the fixed per-thread start phases, seconds. Real cores
    #: drift out of lockstep (pipeline stalls, interrupts); without the
    #: phase spread, grouped threads issue same-line requests back to
    #: back and the Optane read buffer hides the line sharing that hurts
    #: real hardware. Phases are constant offsets, so they decorrelate
    #: arrivals without changing any thread's issue rate.
    phase_spread: float = 500 * NS
    #: Mean of the tiny per-op drift that keeps threads from re-locking.
    issue_jitter: float = 4 * NS
    seed: int = 7

    @property
    def effective_read_mlp(self) -> int:
        return max(self.read_mlp_ops, 640 // self.access_size + 2)

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError("need at least one thread")
        if self.access_size < 64:
            raise WorkloadError("access size must be at least one cache line")
        if self.total_bytes < self.access_size * self.threads:
            raise WorkloadError("total volume too small for the thread count")
        if self.read_mlp_ops < 1:
            raise WorkloadError("read MLP must be >= 1")


@dataclass
class EngineResult:
    """Outcome of one engine run."""

    seconds: float
    bytes_moved: int
    per_dimm_bytes: list[int]
    media_bytes: float

    @property
    def gbps(self) -> float:
        """Achieved bandwidth in decimal GB/s over the measured interval."""
        if self.seconds <= 0:
            raise SimulationError("engine produced a zero-length run")
        return self.bytes_moved / self.seconds / GB

    @property
    def dimm_imbalance(self) -> float:
        """Max/mean ratio of per-DIMM traffic (1.0 = perfectly even)."""
        if not self.per_dimm_bytes or sum(self.per_dimm_bytes) == 0:
            return 1.0
        mean = sum(self.per_dimm_bytes) / len(self.per_dimm_bytes)
        return max(self.per_dimm_bytes) / mean

    @property
    def amplification(self) -> float:
        if self.bytes_moved == 0:
            return 1.0
        return self.media_bytes / self.bytes_moved


@dataclass
class _Dimm:
    """Server state of one DIMM during the replay."""

    free_at: float = 0.0
    bytes_served: int = 0
    media_bytes: float = 0.0
    #: Application bytes the read-side line buffer answered without any
    #: media traffic (the ``dropped`` leg of the per-DIMM accounting
    #: identity ``issued == queued + dropped``).
    buffer_bytes: int = 0
    #: Line-buffer hit/miss tallies (256 B media lines).
    buffer_hit_lines: int = 0
    buffer_miss_lines: int = 0
    #: Write fragments combined at full efficiency vs. those that paid
    #: combining pressure (partial-line flushes).
    wc_hit_ops: int = 0
    wc_miss_ops: int = 0
    #: Thread ids of recently serviced ops, for stream-concurrency sensing
    #: (drives the emergent write-combining pressure).
    recent_threads: deque[int] = field(default_factory=lambda: deque(maxlen=32))
    #: LRU of buffered 256 B media lines (the Optane read buffer). Shared
    #: sub-line requests that arrive while their line is still buffered
    #: are served without extra media traffic; spread-out arrivals cause
    #: repeated media reads — the grouped small-read penalty of §3.1.
    line_buffer: "OrderedDict[int, None]" = field(default_factory=OrderedDict)
    line_buffer_capacity: int = 16

    def concurrency(self) -> int:
        return max(1, len(set(self.recent_threads)))

    def media_read_bytes(self, address: int, size: int) -> float:
        """Media bytes needed to serve a read, via the line buffer."""
        first_line = address // OPTANE_LINE
        last_line = (address + size - 1) // OPTANE_LINE
        media = 0.0
        for line in range(first_line, last_line + 1):
            if line in self.line_buffer:
                self.line_buffer.move_to_end(line)
                self.buffer_hit_lines += 1
                continue
            media += OPTANE_LINE
            self.buffer_miss_lines += 1
            self.line_buffer[line] = None
            while len(self.line_buffer) > self.line_buffer_capacity:
                self.line_buffer.popitem(last=False)
        return media


class DiscreteEventEngine:
    """Replays access traces through the calibrated component models."""

    def __init__(
        self,
        topology: SystemTopology | None = None,
        calibration: DeviceCalibration | None = None,
        *,
        write_combining_enabled: bool = True,
        context: EvalContext | None = None,
    ) -> None:
        if context is not None:
            # An EvalContext fixes topology, calibration, and the
            # component models in one immutable bundle; mixing it with
            # piecemeal overrides would let the replay disagree with the
            # analytic model it cross-checks.
            if topology is not None or calibration is not None:
                raise ConfigurationError(
                    "pass either an EvalContext or explicit "
                    "topology/calibration, not both"
                )
            self.topology = context.config.topology
            self.calibration = context.config.calibration
            self.write_combining = context.components.write_combining
            self.read_buffer = context.components.read_buffer
            self._context = context
            return
        self.topology = topology if topology is not None else paper_server()
        self.calibration = calibration if calibration is not None else paper_calibration()
        self.write_combining = WriteCombiningModel(
            self.calibration.pmem, enabled=write_combining_enabled
        )
        self.read_buffer = ReadBufferModel(self.calibration.pmem)
        self._context = None

    # ------------------------------------------------------------------

    def _ways(self, media: MediaKind) -> int:
        """Interleave ways on socket 0 (the engine is single-socket)."""
        if self._context is not None:
            return self._context.interleave_ways[(0, media)]
        # No context supplied (ad-hoc topology/calibration): derive the
        # ways directly, once per run, not per op.
        return self.topology.interleave_ways(0, media)  # simlint: ignore[context-derivable-constant] -- contextless engine fallback

    def _rates(self, config: EngineConfig) -> tuple[float, float, float]:
        """Return (per-DIMM GB/s, per-op overhead s, stream GB/s)."""
        cal = self.calibration
        ways = self._ways(config.media)
        if config.media is MediaKind.PMEM:
            params = cal.pmem
        elif config.media is MediaKind.DRAM:
            params = cal.dram
        else:
            raise WorkloadError(f"engine does not model media {config.media}")
        if config.op is Op.READ:
            device = params.seq_read_max
            overhead = params.read_op_overhead
            stream = params.read_stream_rate
        else:
            device = params.seq_write_max
            overhead = params.write_op_overhead
            stream = params.write_stream_rate
        return device / ways, overhead, stream

    def _service_seconds(
        self,
        config: EngineConfig,
        dimm: _Dimm,
        address: int,
        bytes_on_dimm: int,
        per_dimm_rate: float,
    ) -> tuple[float, float]:
        """Service time and media bytes for one op fragment on one DIMM."""
        media_bytes = float(bytes_on_dimm)
        if config.media is MediaKind.PMEM:
            if config.op is Op.WRITE:
                # Write-combining efficiency at the *observed* per-DIMM
                # stream concurrency (the distinct threads recently served
                # here), so the boomerang emerges from the replay instead
                # of being prescribed.
                efficiency = self.write_combining.efficiency(
                    dimm.concurrency(), config.access_size
                )
                if config.layout is Layout.GROUPED and config.access_size < OPTANE_LINE:
                    efficiency *= self.write_combining.grouped_small_write_factor(
                        config.access_size
                    )
                media_bytes = bytes_on_dimm / efficiency
                if media_bytes <= float(bytes_on_dimm):
                    dimm.wc_hit_ops += 1
                else:
                    dimm.wc_miss_ops += 1
            else:
                media_bytes = dimm.media_read_bytes(address, bytes_on_dimm)
        # Buffer hits still move data over the channel, at a fraction of
        # the media cost.
        service_bytes = max(media_bytes, 0.15 * bytes_on_dimm)
        return service_bytes / (per_dimm_rate * GB), media_bytes

    # ------------------------------------------------------------------

    def run(
        self, config: EngineConfig, *, recorder: "Recorder | None" = None
    ) -> EngineResult:
        """Replay the configured trace; return achieved bandwidth.

        ``recorder`` is a write-only :mod:`repro.obs` sink; the replay's
        per-DIMM tallies (issued/queued/buffer-dropped bytes, line-buffer
        and write-combining hits) are emitted to it after the run.
        """
        ways = self._ways(config.media)
        interleave = InterleaveMap(ways=ways)
        per_dimm_rate, op_overhead, stream_rate = self._rates(config)
        traces = build_traces(
            threads=config.threads,
            access_size=config.access_size,
            total_bytes=config.total_bytes,
            layout=config.layout,
            pattern=config.pattern,
            region_bytes=config.region_bytes,
            seed=config.seed,
        )
        iterators = [iter(t) for t in traces]
        dimms = [_Dimm() for _ in range(ways)]
        issue_gap = op_overhead + config.access_size / (stream_rate * GB)
        if config.pattern is Pattern.RANDOM and config.op is Op.READ:
            issue_gap += self.calibration.pmem.random_read_latency

        # Per-thread outstanding op completion times (reads only). FIFO
        # by issue order: deques retire from the front in O(1) where a
        # list's pop(0) would shift the whole tail (O(n) per retirement,
        # O(n^2) over a run at high MLP budgets).
        outstanding: list[deque[float]] = [deque() for _ in range(config.threads)]
        jitter_rng = np.random.default_rng(config.seed)
        phases = jitter_rng.uniform(0.0, config.phase_spread, size=config.threads)
        heap: list[tuple[float, int, int]] = [
            (float(phases[tid]), tid, tid) for tid in range(config.threads)
        ]
        heapq.heapify(heap)
        counter = config.threads
        end_time = 0.0
        bytes_moved = 0
        media_total = 0.0
        ops = 0

        while heap:
            now, _, tid = heapq.heappop(heap)
            try:
                address, size = next(iterators[tid])
            except StopIteration:
                continue
            ops += 1

            if config.op is Op.READ:
                # In-order retirement: the pending list is FIFO by issue
                # order, and the thread stalls on the *oldest* incomplete
                # load once its MLP budget (line-fill buffers + prefetch
                # depth) is exhausted.
                pending = outstanding[tid]
                while pending and pending[0] <= now:
                    pending.popleft()
                if len(pending) >= config.effective_read_mlp:
                    now = pending[0]
                    while pending and pending[0] <= now:
                        pending.popleft()

            # Split the op across the stripes it covers.
            completion = now
            offset = address
            remaining = size
            while remaining > 0:
                stripe_end = (offset // interleave.granularity + 1) * interleave.granularity
                chunk = min(remaining, stripe_end - offset)
                d = interleave.dimm_of(offset)
                dimm = dimms[d]
                service, media_bytes = self._service_seconds(
                    config, dimm, offset, chunk, per_dimm_rate
                )
                if config.op is Op.READ and media_bytes <= 0.0:
                    # Read-buffer hit: served at channel speed, bypassing
                    # the media queue entirely.
                    dimm.buffer_bytes += chunk
                    fragment_done = now + 10 * NS
                else:
                    start = max(now, dimm.free_at)
                    dimm.free_at = start + service
                    fragment_done = dimm.free_at
                dimm.bytes_served += chunk
                dimm.media_bytes += media_bytes
                dimm.recent_threads.append(tid)
                completion = max(completion, fragment_done)
                media_total += media_bytes
                offset += chunk
                remaining -= chunk

            bytes_moved += size
            end_time = max(end_time, completion)

            if config.op is Op.WRITE:
                # sfence completes once the stores reach the WPQ (the ADR
                # power-fail domain), not the media. The thread therefore
                # pipelines until the queue's backlog allowance is used up.
                backlog_allowance = 32 * 64 / (per_dimm_rate * GB)
                acceptance = max(now, completion - backlog_allowance)
                next_issue = max(acceptance + op_overhead, now + issue_gap)
            else:
                outstanding[tid].append(completion)
                next_issue = now + issue_gap
            if config.issue_jitter > 0:
                next_issue += float(jitter_rng.exponential(config.issue_jitter))
            counter += 1
            heapq.heappush(heap, (next_issue, counter, tid))

        if bytes_moved == 0:
            raise SimulationError("trace produced no operations")
        if recorder is not None and recorder.enabled:
            from repro.obs import probes

            probes.emit_engine(
                recorder,
                [
                    (
                        d.bytes_served,
                        d.bytes_served - d.buffer_bytes,
                        d.buffer_bytes,
                        d.buffer_hit_lines,
                        d.buffer_miss_lines,
                        d.wc_hit_ops,
                        d.wc_miss_ops,
                    )
                    for d in dimms
                ],
                ops,
                bytes_moved,
                media_total,
            )
        return EngineResult(
            seconds=end_time,
            bytes_moved=bytes_moved,
            per_dimm_bytes=[d.bytes_served for d in dimms],
            media_bytes=media_total,
        )


def simulate(
    config: EngineConfig,
    recorder: "Recorder | None" = None,
    **engine_kwargs: object,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`DiscreteEventEngine`."""
    return DiscreteEventEngine(**engine_kwargs).run(config, recorder=recorder)


@dataclass(frozen=True)
class MixedEngineConfig:
    """Concurrent reader and writer thread groups on one socket (§5.1).

    Both groups use individual sequential access to disjoint regions on
    the *same* DIMMs, like the paper's mixed benchmark. The replay runs
    until the first group exhausts its trace; each group's bandwidth is
    its bytes completed over that shared interval.
    """

    read_threads: int
    write_threads: int
    access_size: int = 4096
    media: MediaKind = MediaKind.PMEM
    bytes_per_side: int = 16 * MIB
    read_mlp_ops: int = 2
    phase_spread: float = 500 * NS
    issue_jitter: float = 4 * NS
    seed: int = 7

    def __post_init__(self) -> None:
        if self.read_threads < 1 or self.write_threads < 1:
            raise WorkloadError("mixed runs need at least one thread per side")
        if self.access_size < 64:
            raise WorkloadError("access size must be at least one cache line")
        threads = self.read_threads + self.write_threads
        if self.bytes_per_side < self.access_size * threads:
            raise WorkloadError("volume too small for the thread count")

    @property
    def effective_read_mlp(self) -> int:
        return max(self.read_mlp_ops, 640 // self.access_size + 2)


@dataclass
class MixedEngineResult:
    """Outcome of a mixed replay."""

    seconds: float
    read_bytes: int
    write_bytes: int

    @property
    def read_gbps(self) -> float:
        """Read-side bandwidth in decimal GB/s over the measured interval."""
        if self.seconds <= 0:
            raise SimulationError("mixed run produced zero elapsed time")
        return self.read_bytes / self.seconds / GB

    @property
    def write_gbps(self) -> float:
        """Write-side bandwidth in decimal GB/s over the measured interval."""
        if self.seconds <= 0:
            raise SimulationError("mixed run produced zero elapsed time")
        return self.write_bytes / self.seconds / GB

    @property
    def total_gbps(self) -> float:
        """Combined read+write bandwidth in decimal GB/s."""
        return self.read_gbps + self.write_gbps


def simulate_mixed(
    config: MixedEngineConfig, **engine_kwargs: object
) -> MixedEngineResult:
    """Replay concurrent readers and writers through shared DIMM servers.

    Interference is emergent: write fragments occupy a DIMM roughly 3x
    longer per byte than read fragments (the calibrated per-DIMM rates),
    so read completions queue behind writes — the §5.1 imbalance — while
    many concurrent readers stretch writers' queue waits in return.
    """
    engine = DiscreteEventEngine(**engine_kwargs)
    ways = engine._ways(config.media)
    interleave = InterleaveMap(ways=ways)

    sides = {}
    for op, threads in ((Op.READ, config.read_threads), (Op.WRITE, config.write_threads)):
        sub = EngineConfig(
            op=op,
            threads=threads,
            access_size=config.access_size,
            media=config.media,
            total_bytes=config.bytes_per_side,
            read_mlp_ops=config.read_mlp_ops,
            phase_spread=config.phase_spread,
            issue_jitter=config.issue_jitter,
            seed=config.seed,
        )
        rate, overhead, stream = engine._rates(sub)
        traces = build_traces(
            threads=threads,
            access_size=config.access_size,
            total_bytes=config.bytes_per_side,
            layout=Layout.INDIVIDUAL,
            pattern=Pattern.SEQUENTIAL,
            seed=config.seed,
        )
        sides[op] = {
            "config": sub,
            "per_dimm_rate": rate,
            "op_overhead": overhead,
            "issue_gap": overhead + config.access_size / (stream * GB),
            "iterators": [iter(t) for t in traces],
        }

    dimms = [_Dimm() for _ in range(ways)]
    rng = np.random.default_rng(config.seed)
    total_threads = config.read_threads + config.write_threads
    phases = rng.uniform(0.0, config.phase_spread, size=total_threads)

    # Thread ids: readers first, writers after; writers' addresses are
    # offset so both sides stripe over the same DIMMs with disjoint data.
    write_offset = TIB
    outstanding: list[deque[float]] = [deque() for _ in range(config.read_threads)]
    heap: list[tuple[float, int, int]] = [
        (float(phases[tid]), tid, tid) for tid in range(total_threads)
    ]
    heapq.heapify(heap)
    counter = total_threads
    bytes_done = {Op.READ: 0, Op.WRITE: 0}
    clock = 0.0

    while heap:
        now, _, tid = heapq.heappop(heap)
        is_reader = tid < config.read_threads
        op = Op.READ if is_reader else Op.WRITE
        side = sides[op]
        local_tid = tid if is_reader else tid - config.read_threads
        try:
            address, size = next(side["iterators"][local_tid])
        except StopIteration:
            # First side to drain ends the measured interval.
            break
        if not is_reader:
            address += write_offset

        if is_reader:
            pending = outstanding[local_tid]
            while pending and pending[0] <= now:
                pending.popleft()
            if len(pending) >= config.effective_read_mlp:
                now = pending[0]
                while pending and pending[0] <= now:
                    pending.popleft()

        completion = now
        offset = address
        remaining = size
        while remaining > 0:
            stripe_end = (offset // interleave.granularity + 1) * interleave.granularity
            chunk = min(remaining, stripe_end - offset)
            dimm = dimms[interleave.dimm_of(offset)]
            service, media_bytes = engine._service_seconds(
                side["config"], dimm, offset, chunk, side["per_dimm_rate"]
            )
            if op is Op.READ and media_bytes <= 0.0:
                fragment_done = now + 10 * NS
            else:
                start = max(now, dimm.free_at)
                dimm.free_at = start + service
                fragment_done = dimm.free_at
            dimm.recent_threads.append(tid)
            completion = max(completion, fragment_done)
            offset += chunk
            remaining -= chunk

        bytes_done[op] += size
        clock = max(clock, completion)

        if op is Op.WRITE:
            allowance = 32 * 64 / (side["per_dimm_rate"] * GB)
            acceptance = max(now, completion - allowance)
            next_issue = max(acceptance + side["op_overhead"], now + side["issue_gap"])
        else:
            outstanding[local_tid].append(completion)
            next_issue = now + side["issue_gap"]
        if config.issue_jitter > 0:
            next_issue += float(rng.exponential(config.issue_jitter))
        counter += 1
        heapq.heappush(heap, (next_issue, counter, tid))

    if bytes_done[Op.READ] == 0 or bytes_done[Op.WRITE] == 0:
        raise SimulationError("mixed run ended before both sides moved data")
    return MixedEngineResult(
        seconds=clock,
        read_bytes=bytes_done[Op.READ],
        write_bytes=bytes_done[Op.WRITE],
    )
