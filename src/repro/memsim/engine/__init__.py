"""Discrete-event simulation engine (mechanism-level cross-check).

See :mod:`repro.memsim.engine.simulator` for the model description.
"""

from repro.memsim.engine.simulator import (
    DiscreteEventEngine,
    EngineConfig,
    EngineResult,
    MixedEngineConfig,
    MixedEngineResult,
    simulate,
    simulate_mixed,
)
from repro.memsim.engine.trace import ThreadTrace, build_traces

__all__ = [
    "DiscreteEventEngine",
    "EngineConfig",
    "EngineResult",
    "MixedEngineConfig",
    "MixedEngineResult",
    "ThreadTrace",
    "build_traces",
    "simulate",
    "simulate_mixed",
]
