"""Access-trace generation for the discrete-event engine.

Produces, per thread, the lazy sequence of ``(address, size)`` operations
that the paper's microbenchmarks issue:

* **grouped** sequential access interleaves ops across threads so the
  group forms one global sequential stream — thread ``i``'s ``k``-th op
  starts at ``(k * threads + i) * access_size``;
* **individual** sequential access gives each thread its own contiguous
  slice of the region;
* **random** access draws op offsets uniformly from the region with a
  deterministic per-thread RNG.

Addresses are socket-local physical offsets; the engine maps them to
DIMMs through :class:`~repro.memsim.address.InterleaveMap`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.memsim.spec import Layout, Pattern


@dataclass(frozen=True)
class ThreadTrace:
    """One thread's op stream: a lazily evaluated (address, size) source."""

    thread_id: int
    op_count: int
    access_size: int
    _addresses: "AddressSource"

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for k in range(self.op_count):
            yield self._addresses.address(k), self.access_size


class AddressSource:
    """Strategy object producing the k-th op address for one thread."""

    def address(self, k: int) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class GroupedSource(AddressSource):
    thread_id: int
    threads: int
    access_size: int

    def address(self, k: int) -> int:
        return (k * self.threads + self.thread_id) * self.access_size


@dataclass(frozen=True)
class IndividualSource(AddressSource):
    thread_id: int
    slice_bytes: int
    access_size: int

    def address(self, k: int) -> int:
        return self.thread_id * self.slice_bytes + k * self.access_size


class RandomSource(AddressSource):
    """Uniform random op offsets within a region, reproducible by seed."""

    def __init__(self, thread_id: int, region_bytes: int, access_size: int, seed: int):
        if region_bytes < access_size:
            raise WorkloadError("region smaller than one access")
        self._rng = np.random.default_rng((seed, thread_id))
        self._region = region_bytes
        self._size = access_size
        self._cache: list[int] = []

    def address(self, k: int) -> int:
        while len(self._cache) <= k:
            draw = int(self._rng.integers(0, self._region - self._size))
            self._cache.append(draw - draw % 64)  # cache-line aligned
        return self._cache[k]


def build_traces(
    threads: int,
    access_size: int,
    total_bytes: int,
    layout: Layout,
    pattern: Pattern,
    region_bytes: int | None = None,
    seed: int = 7,
) -> list[ThreadTrace]:
    """Build one trace per thread covering ``total_bytes`` overall.

    The volume is divided evenly; any remainder below one op per thread
    is dropped (the engine measures steady-state bandwidth, so the tail
    does not matter).
    """
    if threads < 1:
        raise WorkloadError("need at least one thread")
    if access_size < 1:
        raise WorkloadError("access size must be positive")
    ops_total = total_bytes // access_size
    ops_per_thread = ops_total // threads
    if ops_per_thread < 1:
        raise WorkloadError(
            f"total volume {total_bytes} too small for {threads} threads "
            f"of {access_size} B accesses"
        )
    traces = []
    for tid in range(threads):
        source: AddressSource
        if pattern is Pattern.RANDOM:
            source = RandomSource(
                tid, region_bytes or total_bytes, access_size, seed
            )
        elif layout is Layout.GROUPED:
            source = GroupedSource(tid, threads, access_size)
        else:
            slice_bytes = ops_per_thread * access_size
            source = IndividualSource(tid, slice_bytes, access_size)
        traces.append(
            ThreadTrace(
                thread_id=tid,
                op_count=ops_per_thread,
                access_size=access_size,
                _addresses=source,
            )
        )
    return traces
